"""Experiment drivers that regenerate the paper's tables and figures.

Experiment index (see DESIGN.md §4):

* T1 — :func:`repro.experiments.table1.run_table1` (paper Table I);
* F1 — :func:`repro.experiments.fig1.run_fig1` (paper Fig. 1);
* F2 — :func:`repro.experiments.fig2.run_fig2` (paper Fig. 2 workflow);
* A1–A3, C1 — :mod:`repro.experiments.ablations`;
* scenario × algorithm ablation matrix — :mod:`repro.experiments.ablation`.
"""

from repro.experiments.ablation import (
    AblationCell,
    AblationCheckError,
    AblationConfig,
    MatrixOutcome,
    build_report,
    cell_run_id,
    check_matrix,
    format_report,
    generate_cells,
    named_matrix,
    nightly_matrix,
    run_check,
    run_matrix,
)
from repro.experiments.ablations import (
    AlphaSweepResult,
    CommunicationResult,
    LinkageAblationResult,
    WeightAblationResult,
    run_alpha_sweep,
    run_communication_study,
    run_linkage_ablation,
    run_weight_ablation,
)
from repro.experiments.fig1 import Fig1Result, format_fig1, run_fig1
from repro.experiments.fig2 import Fig2Result, format_fig2, run_fig2
from repro.experiments.presets import (
    SCALES,
    ExperimentScale,
    algorithm_kwargs,
    get_scale,
)
from repro.experiments.table1 import (
    PAPER_TABLE1,
    Table1Cell,
    Table1Result,
    format_table1,
    run_table1,
)

__all__ = [
    "AblationCell",
    "AblationCheckError",
    "AblationConfig",
    "MatrixOutcome",
    "build_report",
    "cell_run_id",
    "check_matrix",
    "format_report",
    "generate_cells",
    "named_matrix",
    "nightly_matrix",
    "run_check",
    "run_matrix",
    "AlphaSweepResult",
    "CommunicationResult",
    "LinkageAblationResult",
    "WeightAblationResult",
    "run_alpha_sweep",
    "run_communication_study",
    "run_linkage_ablation",
    "run_weight_ablation",
    "Fig1Result",
    "format_fig1",
    "run_fig1",
    "Fig2Result",
    "format_fig2",
    "run_fig2",
    "SCALES",
    "ExperimentScale",
    "algorithm_kwargs",
    "get_scale",
    "PAPER_TABLE1",
    "Table1Cell",
    "Table1Result",
    "format_table1",
    "run_table1",
]
