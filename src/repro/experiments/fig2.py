"""Experiment F2 — the paper's Fig. 2 (the FedClust workflow).

Executes the six-step workflow end to end on a planted-group federation
and produces a machine-checkable trace:

①  server broadcasts the initial global model;
②  clients train locally;
③  clients upload partial (final-layer) weights;
④  server computes the proximity matrix;
⑤  server clusters the clients (one-shot) and trains per cluster;
⑥  a *newcomer* — a client held out of the initial federation — joins
   later and is assigned to an existing cluster in real time.

The trace records, for each step, what was transferred and what the
server decided, so the benchmark can assert the workflow's claims: the
clustering used exactly one round, only partial weights were uploaded,
the planted groups were recovered, and the newcomer landed in its
ground-truth cluster with a model that serves it better than the global
initialisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.metrics import adjusted_rand_index
from repro.core.fedclust import FedClust, FedClustConfig
from repro.data.federation import build_federation
from repro.experiments.presets import ExperimentScale, get_scale
from repro.fl.evaluation import evaluate_model
from repro.fl.simulation import FederatedEnv
from repro.utils.logging import get_logger

__all__ = ["WorkflowStep", "Fig2Result", "run_fig2", "format_fig2"]

_LOG = get_logger("experiments.fig2")


@dataclass
class WorkflowStep:
    """One numbered step of the Fig. 2 workflow."""

    number: int
    title: str
    detail: str


@dataclass
class Fig2Result:
    """Workflow trace plus the quantities the claims are checked on."""

    steps: list[WorkflowStep]
    cluster_labels: np.ndarray
    true_groups: np.ndarray
    ari: float
    newcomer_true_group: int
    newcomer_assigned_cluster: int
    newcomer_correct: bool
    newcomer_margin: float
    newcomer_acc_with_cluster: float
    newcomer_acc_with_init: float
    clustering_upload_params: int
    full_model_params: int
    final_accuracy: float

    @property
    def partial_upload_fraction(self) -> float:
        """Clustering-round upload relative to a full-model upload."""
        return self.clustering_upload_params / self.full_model_params


def run_fig2(
    dataset: str = "fmnist",
    scale: ExperimentScale | str | None = None,
    seed: int = 0,
    model_name: str = "lenet5",
) -> Fig2Result:
    """Run the full workflow with one held-out newcomer."""
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    total_clients = scale.n_clients + 1
    full_federation = build_federation(
        dataset,
        n_clients=total_clients,
        n_samples=scale.n_samples,
        seed=seed,
        partition="label_cluster",
    )
    assert full_federation.true_groups is not None
    # Hold out the last client as the newcomer.
    newcomer_id = total_clients - 1
    newcomer_data = full_federation.clients[newcomer_id]
    newcomer_group = int(full_federation.true_groups[newcomer_id])
    federation = full_federation.subset(list(range(scale.n_clients)))

    env = FederatedEnv(
        federation, model_name=model_name, train_cfg=scale.train, seed=seed
    )
    algorithm = FedClust(
        FedClustConfig(warmup_steps=20, warmup_lr=0.01, warm_start_final_layer=True)
    )
    steps: list[WorkflowStep] = []

    result = algorithm.run(env, n_rounds=scale.n_rounds, eval_every=scale.eval_every)
    fitted = result.extras["fitted"]
    m = federation.n_clients
    partial = len(
        np.concatenate([fitted.init_state[k].ravel() for k in fitted.selection_keys])
    )
    steps.append(
        WorkflowStep(1, "Broadcast global model", f"{env.n_params} params × {m} clients")
    )
    steps.append(
        WorkflowStep(
            2,
            "Local training",
            f"{algorithm.config.warmup_steps} SGD steps per client (one round)",
        )
    )
    steps.append(
        WorkflowStep(
            3,
            "Upload partial weights",
            f"final layer only: {partial} of {env.n_params} params "
            f"({100.0 * partial / env.n_params:.1f}%)",
        )
    )
    steps.append(
        WorkflowStep(
            4,
            "Proximity matrix",
            f"{m}×{m} Euclidean distances over final-layer weights",
        )
    )
    ari = adjusted_rand_index(federation.true_groups, result.cluster_labels)
    steps.append(
        WorkflowStep(
            5,
            "Hierarchical clustering",
            f"auto cut found {result.n_clusters} clusters, ARI vs planted "
            f"groups = {ari:.2f}; per-cluster FedAvg for "
            f"{scale.n_rounds - 1} rounds",
        )
    )

    # ⑥ the newcomer arrives.
    assignment, serving_state = algorithm.incorporate_newcomer(
        env, fitted, newcomer_data.train, newcomer_id=newcomer_id
    )
    # Which cluster do the newcomer's ground-truth peers live in?
    peers = np.flatnonzero(federation.true_groups == newcomer_group)
    peer_clusters = result.cluster_labels[peers]
    expected_cluster = int(np.bincount(peer_clusters).argmax())
    correct = assignment.cluster == expected_cluster

    batch = env.train_cfg.eval_batch_size
    env.scratch_model.load_state_dict(dict(serving_state))
    acc_cluster = evaluate_model(
        env.scratch_model, newcomer_data.test, batch_size=batch
    ).accuracy
    env.scratch_model.load_state_dict(fitted.init_state)
    acc_init = evaluate_model(
        env.scratch_model, newcomer_data.test, batch_size=batch
    ).accuracy
    steps.append(
        WorkflowStep(
            6,
            "Incorporate newcomer",
            f"assigned to cluster {assignment.cluster} (expected "
            f"{expected_cluster}, margin {assignment.margin:.2f}); "
            f"local-test accuracy {acc_cluster:.2f} with cluster model vs "
            f"{acc_init:.2f} with initial model",
        )
    )
    _LOG.info("fig2: %s", "; ".join(s.detail for s in steps))

    return Fig2Result(
        steps=steps,
        cluster_labels=result.cluster_labels,
        true_groups=federation.true_groups,
        ari=ari,
        newcomer_true_group=newcomer_group,
        newcomer_assigned_cluster=assignment.cluster,
        newcomer_correct=correct,
        newcomer_margin=assignment.margin,
        newcomer_acc_with_cluster=acc_cluster,
        newcomer_acc_with_init=acc_init,
        clustering_upload_params=partial * m,
        full_model_params=env.n_params * m,
        final_accuracy=result.final_accuracy,
    )


def format_fig2(result: Fig2Result) -> str:
    """Human-readable workflow trace."""
    lines = ["FedClust workflow (paper Fig. 2)"]
    marks = "①②③④⑤⑥"
    for step in result.steps:
        lines.append(f"{marks[step.number - 1]} {step.title}: {step.detail}")
    lines.append(
        f"summary: final accuracy {result.final_accuracy:.2f}, clustering "
        f"ARI {result.ari:.2f}, newcomer {'correct' if result.newcomer_correct else 'WRONG'}"
    )
    return "\n".join(lines)
