"""Ablation experiments (A1–A3) and the communication-cost study (C1).

These go beyond the extended abstract's artefacts to probe the design
choices DESIGN.md calls out:

* **A1 linkage** — does the HC linkage matter for cluster recovery?
* **A2 weight selection** — final layer vs whole model vs first conv
  layer as the clustering signature (the paper's "strategic selection"),
  including the per-client upload cost of each choice.
* **A3 heterogeneity sweep** — FedClust vs FedAvg across Dirichlet α
  (the paper's future-work axis).
* **C1 communication** — total and clustering-phase traffic per method,
  plus traffic needed to first reach a target accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.registry import make_algorithm
from repro.cluster.hierarchy import LINKAGE_METHODS
from repro.cluster.metrics import adjusted_rand_index, group_separability
from repro.core.clustering import ClusteringConfig, cluster_clients
from repro.core.fedclust import FedClust, FedClustConfig
from repro.core.proximity import proximity_matrix
from repro.algorithms.base import cohort_matrix
from repro.core.weights import packed_weight_matrix
from repro.data.federation import build_federation
from repro.experiments.presets import ExperimentScale, algorithm_kwargs, get_scale
from repro.fl.simulation import FederatedEnv
from repro.utils.logging import get_logger
from repro.utils.tables import Table

__all__ = [
    "LinkageAblationResult",
    "run_linkage_ablation",
    "WeightAblationResult",
    "run_weight_ablation",
    "AlphaSweepResult",
    "run_alpha_sweep",
    "CommunicationResult",
    "run_communication_study",
]

_LOG = get_logger("experiments.ablations")


# ----------------------------------------------------------------------
# A1 — linkage
# ----------------------------------------------------------------------
@dataclass
class LinkageAblationResult:
    """Cluster recovery per linkage method on a planted federation."""

    rows: list[dict] = field(default_factory=list)

    def format(self) -> str:
        table = Table(
            title="A1 — HC linkage ablation (planted 2-group federation)",
            columns=["Linkage", "k found", "ARI", "Separability"],
        )
        for row in self.rows:
            table.add_row(
                [
                    row["linkage"],
                    str(row["k"]),
                    f"{row['ari']:.2f}",
                    f"{row['separability']:.2f}",
                ]
            )
        return table.render()

    def ari_of(self, linkage_method: str) -> float:
        for row in self.rows:
            if row["linkage"] == linkage_method:
                return row["ari"]
        raise KeyError(linkage_method)


def run_linkage_ablation(
    dataset: str = "fmnist",
    scale: ExperimentScale | str | None = None,
    seed: int = 0,
) -> LinkageAblationResult:
    """One clustering round, re-cut with each linkage method."""
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    federation = build_federation(
        dataset,
        n_clients=scale.n_clients,
        n_samples=scale.n_samples,
        seed=seed,
        partition="label_cluster",
    )
    assert federation.true_groups is not None
    env = FederatedEnv(
        federation, model_name="lenet5", train_cfg=scale.train, seed=seed
    )
    # One warm-up pass; the uploaded weight matrix is shared by all linkages.
    fitted = FedClust(
        FedClustConfig(warmup_steps=20, warmup_lr=0.01)
    ).clustering_round(env)
    sep = group_separability(fitted.proximity.matrix, federation.true_groups)

    result = LinkageAblationResult()
    for method in LINKAGE_METHODS:
        clustering = cluster_clients(
            fitted.proximity.matrix, ClusteringConfig(linkage_method=method)
        )
        ari = adjusted_rand_index(federation.true_groups, clustering.labels)
        result.rows.append(
            {
                "linkage": method,
                "k": clustering.n_clusters,
                "ari": ari,
                "separability": sep,
            }
        )
        _LOG.info("A1 linkage=%s k=%d ari=%.2f", method, clustering.n_clusters, ari)
    return result


# ----------------------------------------------------------------------
# A2 — weight selection
# ----------------------------------------------------------------------
@dataclass
class WeightAblationResult:
    """Signature quality and upload cost per weight selection."""

    rows: list[dict] = field(default_factory=list)

    def format(self) -> str:
        table = Table(
            title="A2 — weight-selection ablation (what clients upload)",
            columns=["Selection", "Upload (params)", "Separability", "ARI", "k"],
        )
        for row in self.rows:
            table.add_row(
                [
                    row["selection"],
                    str(row["upload"]),
                    f"{row['separability']:.2f}",
                    f"{row['ari']:.2f}",
                    str(row["k"]),
                ]
            )
        return table.render()

    def row_of(self, selection: str) -> dict:
        for row in self.rows:
            if row["selection"] == selection:
                return row
        raise KeyError(selection)


def run_weight_ablation(
    dataset: str = "fmnist",
    selections: tuple[str, ...] = ("final_layer", "all", "index:1"),
    scale: ExperimentScale | str | None = None,
    seed: int = 0,
) -> WeightAblationResult:
    """Same warm-up, different uploaded weight subsets."""
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    federation = build_federation(
        dataset,
        n_clients=scale.n_clients,
        n_samples=scale.n_samples,
        seed=seed,
        partition="label_cluster",
    )
    assert federation.true_groups is not None
    env = FederatedEnv(
        federation, model_name="lenet5", train_cfg=scale.train, seed=seed
    )
    # Train once with the full state retained, then slice per selection.
    algo = FedClust(FedClustConfig(warmup_steps=20, warmup_lr=0.01))
    from repro.core.fedclust import resolve_selection_keys
    from repro.fl.parallel import UpdateTask

    init = env.init_state()
    warm_cfg = algo.config.warmup_train_cfg(env.train_cfg)
    original = env.train_cfg
    env.train_cfg = warm_cfg
    try:
        updates = env.run_updates(
            [UpdateTask(cid, init) for cid in range(federation.n_clients)], 1
        )
    finally:
        env.train_cfg = original
    updates.sort(key=lambda u: u.client_id)
    # One packed cohort; each selection is a column slice of it.
    cohort = cohort_matrix(env, updates)

    result = WeightAblationResult()
    for selection in selections:
        keys = resolve_selection_keys(env.scratch_model, selection)
        w = packed_weight_matrix(cohort, env.layout, keys)
        prox = proximity_matrix(w)
        clustering = cluster_clients(prox.matrix, ClusteringConfig())
        ari = adjusted_rand_index(federation.true_groups, clustering.labels)
        result.rows.append(
            {
                "selection": selection,
                "upload": int(w.shape[1]),
                "separability": group_separability(
                    prox.matrix, federation.true_groups
                ),
                "ari": ari,
                "k": clustering.n_clusters,
            }
        )
        _LOG.info(
            "A2 selection=%s upload=%d ari=%.2f", selection, w.shape[1], ari
        )
    return result


# ----------------------------------------------------------------------
# A3 — heterogeneity sweep
# ----------------------------------------------------------------------
@dataclass
class AlphaSweepResult:
    """FedClust vs FedAvg accuracy across Dirichlet α."""

    alphas: list[float]
    fedavg: list[float]
    fedclust: list[float]
    fedclust_k: list[int]

    def format(self) -> str:
        table = Table(
            title="A3 — heterogeneity sweep (Dirichlet α; higher α → closer to IID)",
            columns=["alpha", "FedAvg acc", "FedClust acc", "FedClust k"],
        )
        for i, alpha in enumerate(self.alphas):
            table.add_row(
                [
                    f"{alpha:g}",
                    f"{100 * self.fedavg[i]:.1f}",
                    f"{100 * self.fedclust[i]:.1f}",
                    str(self.fedclust_k[i]),
                ]
            )
        return table.render()


def run_alpha_sweep(
    alphas: tuple[float, ...] = (0.05, 0.1, 0.5, 1.0, 100.0),
    dataset: str = "cifar10",
    scale: ExperimentScale | str | None = None,
    seed: int = 0,
) -> AlphaSweepResult:
    """The paper's future-work axis: accuracy across heterogeneity levels."""
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    fedavg_acc, fedclust_acc, ks = [], [], []
    for alpha in alphas:
        federation = build_federation(
            dataset,
            n_clients=scale.n_clients,
            n_samples=scale.n_samples,
            seed=seed,
            partition="dirichlet",
            alpha=alpha,
        )
        env_a = FederatedEnv(
            federation, model_name="lenet5", train_cfg=scale.train, seed=seed
        )
        res_a = make_algorithm("fedavg").run(
            env_a, n_rounds=scale.n_rounds, eval_every=scale.eval_every
        )
        env_c = FederatedEnv(
            federation, model_name="lenet5", train_cfg=scale.train, seed=seed
        )
        res_c = make_algorithm(
            "fedclust", **algorithm_kwargs("fedclust", scale)
        ).run(env_c, n_rounds=scale.n_rounds, eval_every=scale.eval_every)
        fedavg_acc.append(res_a.final_accuracy)
        fedclust_acc.append(res_c.final_accuracy)
        ks.append(res_c.n_clusters)
        _LOG.info(
            "A3 alpha=%g fedavg=%.3f fedclust=%.3f k=%d",
            alpha,
            res_a.final_accuracy,
            res_c.final_accuracy,
            res_c.n_clusters,
        )
    return AlphaSweepResult(list(alphas), fedavg_acc, fedclust_acc, ks)


# ----------------------------------------------------------------------
# C1 — communication cost
# ----------------------------------------------------------------------
@dataclass
class CommunicationResult:
    """Traffic accounting per method."""

    rows: list[dict] = field(default_factory=list)
    target_accuracy: float = 0.0

    def format(self) -> str:
        table = Table(
            title=(
                "C1 — communication cost (params transferred; "
                f"target accuracy {100 * self.target_accuracy:.0f}%)"
            ),
            columns=[
                "Method",
                "Clustering up",
                "Total up",
                "Total down",
                "MB total",
                f"MB to {100 * self.target_accuracy:.0f}%",
                "Final acc",
            ],
        )
        for row in self.rows:
            table.add_row(
                [
                    row["method"],
                    str(row["clustering_upload"]),
                    str(row["total_upload"]),
                    str(row["total_download"]),
                    f"{row['total_mb']:.1f}",
                    "—" if row["mb_to_target"] is None else f"{row['mb_to_target']:.1f}",
                    f"{100 * row['final_accuracy']:.1f}",
                ]
            )
        return table.render()

    def row_of(self, method: str) -> dict:
        for row in self.rows:
            if row["method"] == method:
                return row
        raise KeyError(method)


def run_communication_study(
    methods: tuple[str, ...] = ("fedavg", "cfl", "ifca", "pacfl", "fedclust"),
    dataset: str = "fmnist",
    scale: ExperimentScale | str | None = None,
    seed: int = 0,
    target_accuracy: float = 0.8,
) -> CommunicationResult:
    """Run each method on a planted federation and account its traffic."""
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    federation = build_federation(
        dataset,
        n_clients=scale.n_clients,
        n_samples=scale.n_samples,
        seed=seed,
        partition="label_cluster",
    )
    result = CommunicationResult(target_accuracy=target_accuracy)
    from repro.fl.communication import BYTES_PER_PARAM

    for method in methods:
        env = FederatedEnv(
            federation, model_name="lenet5", train_cfg=scale.train, seed=seed
        )
        algo = make_algorithm(method, **algorithm_kwargs(method, scale))
        run = algo.run(env, n_rounds=scale.n_rounds, eval_every=1)
        comm_to_target = run.history.comm_to_accuracy(target_accuracy)
        result.rows.append(
            {
                "method": method,
                "clustering_upload": env.tracker.uploaded_in("clustering"),
                "total_upload": env.tracker.total_uploaded,
                "total_download": env.tracker.total_downloaded,
                "total_mb": env.tracker.total_bytes / 1e6,
                "mb_to_target": (
                    None
                    if comm_to_target is None
                    else comm_to_target * BYTES_PER_PARAM / 1e6
                ),
                "final_accuracy": run.final_accuracy,
            }
        )
        _LOG.info(
            "C1 %s total=%.1fMB final=%.3f",
            method,
            env.tracker.total_bytes / 1e6,
            run.final_accuracy,
        )
    return result
