"""Experiment F1 — the paper's Fig. 1 (motivation).

Ten clients in two planted label groups (G1 = {0..4}, G2 = {5..9}) train
a VGG-16-layout model locally from a common initialisation; for a set of
weighted-layer indices the server computes the pairwise Euclidean
distance matrix between the clients' weights at that layer.

The paper's observation, which this experiment quantifies with the
:func:`repro.cluster.metrics.group_separability` ratio, is that early
convolutional layers show no group structure while the final
fully-connected (classifier) layer shows it sharply — the insight
FedClust's partial-weight upload is built on.  Layer indices follow the
paper: 1 and 7 are convolutions, 14 and 16 are FC layers (16 = the
classifier) in the 16-weighted-layer VGG layout.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.cluster.metrics import group_separability
from repro.core.proximity import proximity_matrix
from repro.algorithms.base import cohort_matrix
from repro.core.weights import layer_index_keys, packed_weight_matrix
from repro.data.federation import build_federation
from repro.experiments.presets import ExperimentScale, get_scale
from repro.fl.parallel import UpdateTask
from repro.fl.simulation import FederatedEnv
from repro.nn.models import parameterized_layers
from repro.utils.logging import get_logger
from repro.utils.tables import Table, render_matrix

__all__ = ["Fig1Result", "run_fig1", "format_fig1"]

_LOG = get_logger("experiments.fig1")

#: The paper's probed layers: (index, kind) in VGG-16's weighted-layer order.
PAPER_LAYERS: tuple[tuple[int, str], ...] = (
    (1, "CL"),
    (7, "CL"),
    (14, "FL"),
    (16, "FL"),
)


@dataclass
class Fig1Result:
    """Distance matrices and separability per probed layer."""

    layer_indices: list[int]
    layer_names: dict[int, str]
    distance_matrices: dict[int, np.ndarray]
    separability: dict[int, float]
    true_groups: np.ndarray
    model_name: str

    def best_layer(self) -> int:
        """Layer index with the highest group separability."""
        return max(self.separability, key=lambda i: self.separability[i])


def run_fig1(
    dataset: str = "cifar10",
    n_clients: int = 10,
    model_name: str = "vgg16_style",
    layer_indices: tuple[int, ...] = tuple(i for i, _ in PAPER_LAYERS),
    scale: ExperimentScale | str | None = None,
    seed: int = 0,
    local_steps: int | None = None,
    groups: list[list[int]] | None = None,
) -> Fig1Result:
    """Reproduce the Fig. 1 probe.

    Clients are split into two label groups (paper's G1/G2 by default),
    each trains the model locally from the shared init for a fixed number
    of SGD steps, and per-layer distance matrices are computed.
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    steps = local_steps if local_steps is not None else scale.fig1_local_steps
    federation = build_federation(
        dataset,
        n_clients=n_clients,
        n_samples=scale.n_samples,
        seed=seed,
        partition="label_cluster",
        groups=groups,
    )
    assert federation.true_groups is not None
    env = FederatedEnv(
        federation,
        model_name=model_name,
        train_cfg=dataclasses.replace(
            scale.train,
            momentum=0.0,
            lr=0.01,
            local_epochs=steps,
            max_steps=steps,
        ),
        seed=seed,
    )
    n_layers = len(parameterized_layers(env.scratch_model))
    bad = [i for i in layer_indices if not 1 <= i <= n_layers]
    if bad:
        raise ValueError(
            f"layer indices {bad} out of range for {model_name} "
            f"({n_layers} weighted layers)"
        )

    init = env.init_state()
    updates = env.run_updates(
        [UpdateTask(cid, init) for cid in range(n_clients)], round_index=1
    )
    updates.sort(key=lambda u: u.client_id)
    # One packed cohort; each probed layer is a column slice of it.
    cohort = cohort_matrix(env, updates)

    matrices: dict[int, np.ndarray] = {}
    separability: dict[int, float] = {}
    names: dict[int, str] = {}
    for index in layer_indices:
        name, keys = layer_index_keys(env.scratch_model, index)
        w = packed_weight_matrix(cohort, env.layout, keys)
        matrices[index] = proximity_matrix(w).matrix
        separability[index] = group_separability(
            matrices[index], federation.true_groups
        )
        names[index] = name
        _LOG.info(
            "fig1 layer %d (%s): separability %.3f", index, name, separability[index]
        )

    return Fig1Result(
        layer_indices=list(layer_indices),
        layer_names=names,
        distance_matrices=matrices,
        separability=separability,
        true_groups=federation.true_groups,
        model_name=model_name,
    )


def format_fig1(result: Fig1Result, shade: bool = True) -> str:
    """Terminal rendering of the four panels + separability summary."""
    blocks = []
    kind = dict(PAPER_LAYERS)
    for index in result.layer_indices:
        label = kind.get(index, "?")
        blocks.append(
            f"-- Layer {index} ({label}; {result.layer_names[index]}) "
            f"separability={result.separability[index]:.2f} --"
        )
        blocks.append(
            render_matrix(
                result.distance_matrices[index],
                row_labels=[f"c{i}" for i in range(len(result.true_groups))],
                shade=shade,
            )
        )
    summary = Table(
        title="Group separability by layer (higher = structure more visible)",
        columns=["Layer", "Name", "Separability"],
    )
    for index in result.layer_indices:
        summary.add_row(
            [str(index), result.layer_names[index], f"{result.separability[index]:.3f}"]
        )
    blocks.append(summary.render())
    return "\n".join(blocks)
