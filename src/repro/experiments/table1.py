"""Experiment T1 — the paper's Table I.

Test-accuracy comparison of six methods over three datasets under
Non-IID Dir(0.1): mean ± std of final mean-local-test accuracy across
seeds.  The harness reuses one federation per (dataset, seed) so every
method sees identical data, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.registry import available_algorithms, make_algorithm
from repro.data.federation import build_federation
from repro.experiments.presets import ExperimentScale, algorithm_kwargs, get_scale
from repro.fl.simulation import FederatedEnv
from repro.utils.logging import get_logger
from repro.utils.tables import Table, format_mean_std

__all__ = [
    "PAPER_TABLE1",
    "Table1Cell",
    "Table1Result",
    "run_table1",
    "format_table1",
]

_LOG = get_logger("experiments.table1")

#: The paper's reported numbers (accuracy %, mean ± std), for side-by-side
#: display in EXPERIMENTS.md.  Keys: (method, dataset alias).
PAPER_TABLE1: dict[tuple[str, str], tuple[float, float]] = {
    ("fedavg", "cifar10"): (38.25, 2.98),
    ("fedavg", "fmnist"): (81.93, 0.64),
    ("fedavg", "svhn"): (61.26, 0.95),
    ("fedprox", "cifar10"): (51.60, 1.40),
    ("fedprox", "fmnist"): (74.53, 2.16),
    ("fedprox", "svhn"): (79.64, 0.80),
    ("cfl", "cifar10"): (41.50, 0.35),
    ("cfl", "fmnist"): (74.01, 1.19),
    ("cfl", "svhn"): (61.96, 1.58),
    ("ifca", "cifar10"): (50.51, 0.61),
    ("ifca", "fmnist"): (84.57, 0.41),
    ("ifca", "svhn"): (74.57, 0.40),
    ("pacfl", "cifar10"): (51.02, 0.24),
    ("pacfl", "fmnist"): (85.30, 0.28),
    ("pacfl", "svhn"): (76.35, 0.46),
    ("fedclust", "cifar10"): (60.25, 0.58),
    ("fedclust", "fmnist"): (95.51, 0.17),
    ("fedclust", "svhn"): (78.23, 0.30),
}


@dataclass
class Table1Cell:
    """One (method, dataset) cell: accuracy stats across seeds."""

    method: str
    dataset: str
    accuracies: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies)) if self.accuracies else float("nan")

    @property
    def std(self) -> float:
        return float(np.std(self.accuracies)) if self.accuracies else float("nan")

    @property
    def mean_pct(self) -> float:
        return 100.0 * self.mean

    @property
    def std_pct(self) -> float:
        return 100.0 * self.std


@dataclass
class Table1Result:
    """All cells plus the scale they were produced at."""

    cells: dict[tuple[str, str], Table1Cell]
    datasets: list[str]
    methods: list[str]
    scale_name: str
    alpha: float

    def cell(self, method: str, dataset: str) -> Table1Cell:
        return self.cells[(method, dataset)]

    def winner(self, dataset: str) -> str:
        """Method with the highest mean accuracy on ``dataset``."""
        return max(self.methods, key=lambda m: self.cells[(m, dataset)].mean)


def run_table1(
    datasets: tuple[str, ...] = ("cifar10", "fmnist", "svhn"),
    methods: tuple[str, ...] | None = None,
    scale: ExperimentScale | str | None = None,
    alpha: float = 0.1,
    model_name: str = "lenet5",
) -> Table1Result:
    """Regenerate Table I at the requested scale.

    One federation is built per (dataset, seed); all methods run on it
    with a fresh environment (fresh tracker, same model init).
    """
    scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
    methods = tuple(methods) if methods else tuple(available_algorithms())
    cells = {
        (method, ds): Table1Cell(method, ds) for method in methods for ds in datasets
    }

    for dataset in datasets:
        for seed in scale.seeds:
            federation = build_federation(
                dataset,
                n_clients=scale.n_clients,
                n_samples=scale.n_samples,
                seed=seed,
                partition="dirichlet",
                alpha=alpha,
            )
            for method in methods:
                env = FederatedEnv(
                    federation,
                    model_name=model_name,
                    train_cfg=scale.train,
                    seed=seed,
                )
                algorithm = make_algorithm(method, **algorithm_kwargs(method, scale))
                result = algorithm.run(
                    env, n_rounds=scale.n_rounds, eval_every=scale.eval_every
                )
                cells[(method, dataset)].accuracies.append(result.final_accuracy)
                _LOG.info(
                    "table1 %s/%s seed=%d acc=%.4f k=%d",
                    method,
                    dataset,
                    seed,
                    result.final_accuracy,
                    result.n_clusters,
                )

    return Table1Result(
        cells=cells,
        datasets=list(datasets),
        methods=list(methods),
        scale_name=scale.name,
        alpha=alpha,
    )


def format_table1(result: Table1Result, with_paper: bool = True) -> str:
    """Render the regenerated table (optionally with the paper's column)."""
    columns = ["Method"]
    for ds in result.datasets:
        columns.append(f"{ds} (ours)")
        if with_paper:
            columns.append(f"{ds} (paper)")
    table = Table(
        title=(
            f"Table I — test accuracy (%) under Non-IID Dir({result.alpha}), "
            f"scale={result.scale_name}"
        ),
        columns=columns,
    )
    for method in result.methods:
        row: list[str] = [method]
        for ds in result.datasets:
            cell = result.cells[(method, ds)]
            row.append(format_mean_std(cell.mean_pct, cell.std_pct))
            if with_paper:
                paper = PAPER_TABLE1.get((method, ds))
                row.append(format_mean_std(*paper) if paper else "—")
        table.add_row(row)
    return table.render()
