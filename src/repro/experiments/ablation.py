"""Automated ablation harness over the scenario × algorithm matrix.

The scenario middleware has ~9 knobs (failures, stragglers, stale
folding, budgets, traces, async, corruption, quorum, robust
aggregation) composing with 7 algorithms × 4 executors — nobody can
hold that matrix in their head.  This module turns "has many scenarios"
into "measures which scenarios matter", the question FedClust's own
Table I answers by sweeping one factor at a time:

* an :class:`AblationConfig` declares a **baseline** scenario, a set of
  named **knob patches** (one-knob-on/one-knob-off variants) and
  optional **pairwise** cells, over a list of algorithms × seeds;
* :func:`generate_cells` expands the declaration into the run matrix,
  and every cell gets a **stable content-hashed run ID**
  (:func:`cell_run_id`: seed + algorithm + canonical scenario dict +
  preset → sha256 prefix), so the same experiment always lands in the
  same record file regardless of process, ordering or machine;
* :func:`run_matrix` executes the cells through the round engine,
  writes **one versioned JSON record per run ID** (Table-I accuracy,
  wall-clock, traffic, quarantine/stale/quorum counters plus the
  engine's :meth:`~repro.fl.rounds.RoundEngine.run_record` export) and
  **skips already-completed run IDs on re-invocation** — a matrix is
  resumable at cell granularity, and long cells can additionally ride
  the existing checkpoint machinery (``checkpoint_every > 0`` threads a
  per-run-ID :class:`~repro.fl.defense.CheckpointConfig` into the
  scenario with ``resume=True``);
* :func:`build_report` ranks each knob's effect on accuracy /
  wall-clock / traffic per algorithm (the importance report, emitted as
  ``ABLATION.json`` + ``ABLATION.md``).

Because the engine is deterministic and every middleware stream is
stateless in (seed, round, client), the matrix is exactly reproducible
— which is what makes it CI-gateable rather than a one-off notebook:
:func:`run_check` is the fast-lane smoke gate (run-ID stability,
skip-on-rerun, and the baseline cell reproducing the seeded FedAvg
parity pin bit-for-bit), and the nightly lane runs
:func:`nightly_matrix` and uploads the report artifacts.
"""

from __future__ import annotations

import hashlib
import json
import math
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.fl.rounds import AsyncConfig, ScenarioConfig
from repro.utils.serialization import load_json, save_json, to_jsonable

__all__ = [
    "BASELINE",
    "FEDAVG_PIN",
    "SCHEMA_VERSION",
    "AblationCheckError",
    "AblationCell",
    "AblationConfig",
    "CellResult",
    "MatrixOutcome",
    "build_report",
    "build_scenario",
    "canonical_scenario",
    "cell_run_id",
    "check_matrix",
    "format_report",
    "generate_cells",
    "load_config",
    "named_matrix",
    "nightly_matrix",
    "scenario_to_dict",
    "run_check",
    "run_matrix",
]

#: Version stamp on every run record and report.  Bump whenever the
#: record layout (or anything feeding :func:`cell_run_id`) changes —
#: stale-schema records are re-executed, never silently reused.
SCHEMA_VERSION = 1

#: The knob name reserved for the unmodified baseline cell.
BASELINE = "baseline"

#: The seeded FedAvg parity pin the check matrix's baseline cell must
#: reproduce bit-for-bit: (final accuracy, uploaded params, downloaded
#: params) captured from the pre-engine loops — the same values
#: ``tests/test_fl_rounds.py::TestTableOnePins`` gates.  If a legitimate
#: numerics change ever moves the pin there, it moves here too.
FEDAVG_PIN = {
    "final_accuracy": 0.43177546138072453,
    "uploaded_params": 7103472,
    "downloaded_params": 7103472,
}


class AblationCheckError(RuntimeError):
    """A ``--check`` gate failed (run-ID drift, re-execution, pin miss)."""


# ----------------------------------------------------------------------
# Scenario canonicalisation
# ----------------------------------------------------------------------
def build_scenario(knobs: Mapping, checkpoint=None) -> ScenarioConfig:
    """A :class:`ScenarioConfig` from a plain JSON-ready knob mapping.

    The declarative inverse of :func:`canonical_scenario`: nested
    structures arrive as the lists/dicts a JSON config file holds
    (``compute_budget: [1, 3]``, ``async_config: {buffer_size: 4}``,
    ``trace: {"0": [1, 2]}`` — string client ids included) and are
    coerced to the config objects the engine wants.  ``checkpoint`` is
    an *execution* detail, not an experiment knob: it is injected here
    and deliberately never part of the declarative dict (or the run ID).
    """
    kwargs = dict(knobs)
    for name in ("arrivals", "departures"):
        if kwargs.get(name) is not None:
            kwargs[name] = {
                int(cid): int(r) for cid, r in kwargs[name].items()
            }
    if kwargs.get("trace") is not None:
        kwargs["trace"] = {
            int(cid): [int(r) for r in rounds]
            for cid, rounds in kwargs["trace"].items()
        }
    if kwargs.get("compute_budget") is not None and not isinstance(
        kwargs["compute_budget"], int
    ):
        kwargs["compute_budget"] = tuple(kwargs["compute_budget"])
    async_config = kwargs.get("async_config")
    if isinstance(async_config, Mapping):
        async_kwargs = dict(async_config)
        if isinstance(async_kwargs.get("duration_range"), (list, tuple)):
            async_kwargs["duration_range"] = tuple(
                async_kwargs["duration_range"]
            )
        kwargs["async_config"] = AsyncConfig(**async_kwargs)
    corruption = kwargs.get("corruption")
    if isinstance(corruption, Mapping):
        from repro.fl.defense import CorruptionConfig

        corruption_kwargs = dict(corruption)
        if "kinds" in corruption_kwargs:
            corruption_kwargs["kinds"] = tuple(corruption_kwargs["kinds"])
        kwargs["corruption"] = CorruptionConfig(**corruption_kwargs)
    if checkpoint is not None:
        kwargs["checkpoint"] = checkpoint
    return ScenarioConfig(**kwargs)


def scenario_to_dict(scenario: ScenarioConfig) -> dict:
    """The canonical JSON dict of a scenario: non-default knobs only.

    Dropping default-valued fields makes the representation (and
    therefore the run ID) independent of *how* the config was spelled —
    ``{"failure_rate": 0.0}`` and ``{}`` are the same experiment.
    """
    out: dict = {}
    if scenario.client_fraction < 1.0:
        out["client_fraction"] = float(scenario.client_fraction)
    if scenario.min_clients != 1:
        out["min_clients"] = int(scenario.min_clients)
    if scenario.failure_rate > 0.0:
        out["failure_rate"] = float(scenario.failure_rate)
    if scenario.straggler_rate > 0.0:
        out["straggler_rate"] = float(scenario.straggler_rate)
    if scenario.arrivals:
        out["arrivals"] = {
            str(int(cid)): int(r)
            for cid, r in sorted(scenario.arrivals.items())
        }
    if scenario.staleness_decay > 0.0:
        out["staleness_decay"] = float(scenario.staleness_decay)
    if scenario.compute_budget is not None:
        out["compute_budget"] = [int(b) for b in scenario.compute_budget]
    if scenario.departures:
        out["departures"] = {
            str(int(cid)): int(r)
            for cid, r in sorted(scenario.departures.items())
        }
    if scenario.trace is not None:
        out["trace"] = scenario.trace.to_dict()["clients"]
    if scenario.async_config is not None:
        cfg = scenario.async_config
        out["async_config"] = {
            "buffer_size": int(cfg.buffer_size),
            "max_concurrency": (
                None
                if cfg.max_concurrency is None
                else int(cfg.max_concurrency)
            ),
            "duration_range": [int(d) for d in cfg.duration_range],
        }
    if scenario.corruption is not None and scenario.corruption.rate > 0.0:
        out["corruption"] = {
            "rate": float(scenario.corruption.rate),
            "kinds": list(scenario.corruption.kinds),
            "scale": float(scenario.corruption.scale),
        }
    if scenario.robust_agg != "none":
        out["robust_agg"] = scenario.robust_agg
        out["trim_fraction"] = float(scenario.trim_fraction)
    if scenario.norm_bound is not None:
        out["norm_bound"] = float(scenario.norm_bound)
    if scenario.min_survivors > 0:
        out["min_survivors"] = int(scenario.min_survivors)
    if scenario.max_retries > 0:
        out["max_retries"] = int(scenario.max_retries)
    return out


def canonical_scenario(knobs: Mapping) -> dict:
    """Validate a knob mapping and return its canonical dict.

    Round-tripping through :class:`ScenarioConfig` both rejects invalid
    compositions at matrix-definition time (e.g. async × stragglers)
    and normalises spelling, so equal experiments hash equal.
    """
    return scenario_to_dict(build_scenario(knobs))


# ----------------------------------------------------------------------
# The declarative matrix
# ----------------------------------------------------------------------
@dataclass
class AblationConfig:
    """One ablation matrix: a preset, a baseline, and the knobs to vary.

    Attributes
    ----------
    name:
        Matrix label, stamped on records and the report.
    federation:
        Keyword arguments for
        :func:`repro.data.federation.build_federation` (``dataset_name``,
        ``n_clients``, ``n_samples``, ``seed``, ``partition``, ...).
        Built once per invocation and shared by every cell — federations
        are read-only inputs.
    model_name / model_kwargs / train:
        The :class:`~repro.fl.simulation.FederatedEnv` model and
        :class:`~repro.fl.config.TrainConfig` keyword dicts.
    n_rounds / eval_every:
        Horizon and evaluation cadence of every cell.
    algorithms / algorithm_kwargs:
        Registry names to sweep and their per-name constructor kwargs.
    seeds:
        Environment seeds; every (algorithm, knob) cell runs once per
        seed and the report averages over them.
    baseline:
        Scenario knob mapping of the reference cell (``{}`` = the
        paper-scale default scenario).
    knobs:
        ``name → scenario patch``: each variant runs ``baseline ∪
        patch``.  If the patch is already contained in the baseline the
        variant flips the knob **off** instead (one-knob-off for
        baselines that ship with the knob on).  A patch may touch
        several fields when one knob only makes sense as a bundle
        (``{"straggler_rate": 0.3, "staleness_decay": 0.5}`` — decay
        without stragglers is a no-op).
    pairs:
        Optional pairwise interaction cells: ``("a", "b")`` runs
        ``baseline ∪ knobs[a] ∪ knobs[b]`` under the knob name
        ``"a+b"``.
    executor:
        Executor kind for every cell.  Deliberately **not** part of the
        run ID: executor invariance is a gated engine property, so the
        experiment identity is the maths, not the backend.
    checkpoint_every:
        ``0`` (default) runs each cell in memory.  ``N > 0`` threads a
        per-run-ID checkpoint (``<out>/ckpt/<run_id>``, cadence ``N``,
        ``resume=True``) into every cell's scenario, so a killed long
        cell resumes mid-run on the next invocation.
    """

    name: str
    federation: dict
    model_name: str = "mlp"
    model_kwargs: dict = field(default_factory=dict)
    train: dict = field(default_factory=dict)
    n_rounds: int = 3
    eval_every: int = 1
    algorithms: tuple[str, ...] = ("fedavg",)
    algorithm_kwargs: dict = field(default_factory=dict)
    seeds: tuple[int, ...] = (0,)
    baseline: dict = field(default_factory=dict)
    knobs: dict = field(default_factory=dict)
    pairs: tuple[tuple[str, str], ...] = ()
    executor: str = "serial"
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        self.algorithms = tuple(self.algorithms)
        self.seeds = tuple(int(s) for s in self.seeds)
        self.pairs = tuple(tuple(pair) for pair in self.pairs)
        if not self.algorithms:
            raise ValueError("an ablation matrix needs at least one algorithm")
        if not self.seeds:
            raise ValueError("an ablation matrix needs at least one seed")
        if self.n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {self.n_rounds}")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if BASELINE in self.knobs:
            raise ValueError(
                f"knob name {BASELINE!r} is reserved for the reference cell"
            )
        for name in self.knobs:
            if "+" in name:
                raise ValueError(
                    f"knob name {name!r} may not contain '+' "
                    "(reserved for pairwise cells)"
                )
        for pair in self.pairs:
            if len(pair) != 2:
                raise ValueError(f"pairs must be 2-tuples, got {pair!r}")
            missing = [k for k in pair if k not in self.knobs]
            if missing:
                raise ValueError(
                    f"pair {pair!r} references unknown knobs {missing}"
                )

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AblationConfig":
        """Build from a JSON document (the ``--config FILE`` path)."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown AblationConfig keys {unknown}; options: "
                f"{sorted(known)}"
            )
        return cls(**dict(payload))

    def to_dict(self) -> dict:
        """JSON-ready declaration (stamped into the report)."""
        return to_jsonable(
            {
                name: getattr(self, name)
                for name in self.__dataclass_fields__
            }
        )


@dataclass(frozen=True)
class AblationCell:
    """One run of the matrix: an algorithm × seed × scenario variant.

    ``scenario`` is the cell's full canonical scenario dict (baseline
    with the knob applied), not the patch — the cell is self-contained.
    """

    algorithm: str
    seed: int
    knob: str
    scenario: Mapping

    def label(self) -> str:
        return f"{self.algorithm}/{self.knob}/seed{self.seed}"


def generate_cells(config: AblationConfig) -> list[AblationCell]:
    """Expand the declaration into the ordered run matrix.

    Per (algorithm, seed): the baseline cell, one cell per knob
    (one-knob-on, or one-knob-off when the baseline already contains
    the patch), then the pairwise cells.  Order is deterministic —
    declaration order for knobs, so reports read the way the matrix was
    written.
    """
    base = canonical_scenario(config.baseline)
    variants: list[tuple[str, dict]] = [(BASELINE, base)]
    for name, patch in config.knobs.items():
        merged = canonical_scenario({**config.baseline, **patch})
        if merged == base:
            # One-knob-off: the baseline already has this knob on, so
            # the informative variant is the baseline without it.
            merged = canonical_scenario(
                {
                    key: value
                    for key, value in config.baseline.items()
                    if key not in patch
                }
            )
        variants.append((name, merged))
    for a, b in config.pairs:
        merged = canonical_scenario(
            {**config.baseline, **config.knobs[a], **config.knobs[b]}
        )
        variants.append((f"{a}+{b}", merged))
    return [
        AblationCell(algorithm=alg, seed=seed, knob=knob, scenario=scenario)
        for alg in config.algorithms
        for seed in config.seeds
        for knob, scenario in variants
    ]


def cell_run_id(config: AblationConfig, cell: AblationCell) -> str:
    """Stable content-hashed run ID for one cell.

    sha256 over the canonical JSON of everything that determines the
    numbers: the preset (federation + model + training + horizon), the
    algorithm and its kwargs, the seed, and the cell's canonical
    scenario dict.  Executor kind, output paths, checkpoint cadence and
    the matrix *name* are deliberately excluded — they change where or
    how the run executes, never what it computes, so records stay
    shareable across matrices and backends.
    """
    payload = to_jsonable(
        {
            "schema": SCHEMA_VERSION,
            "federation": config.federation,
            "model_name": config.model_name,
            "model_kwargs": config.model_kwargs,
            "train": config.train,
            "n_rounds": config.n_rounds,
            "eval_every": config.eval_every,
            "algorithm": cell.algorithm,
            "algorithm_kwargs": config.algorithm_kwargs.get(
                cell.algorithm, {}
            ),
            "seed": cell.seed,
            "scenario": cell.scenario,
        }
    )
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """One cell's record plus whether this invocation executed it."""

    cell: AblationCell
    run_id: str
    record: dict
    executed: bool


@dataclass
class MatrixOutcome:
    """Everything one :func:`run_matrix` invocation produced."""

    config: AblationConfig
    out_dir: Path
    results: list[CellResult]
    report: dict

    @property
    def n_executed(self) -> int:
        return sum(1 for r in self.results if r.executed)

    @property
    def n_skipped(self) -> int:
        return len(self.results) - self.n_executed

    @property
    def run_ids(self) -> list[str]:
        return [r.run_id for r in self.results]

    def record_for(
        self, algorithm: str, knob: str, seed: int | None = None
    ) -> dict:
        """The record of one cell (first seed unless given)."""
        for result in self.results:
            cell = result.cell
            if cell.algorithm == algorithm and cell.knob == knob:
                if seed is None or cell.seed == seed:
                    return result.record
        raise KeyError(f"no cell {algorithm}/{knob} in this outcome")


def _execute_cell(
    config: AblationConfig,
    cell: AblationCell,
    run_id: str,
    federation,
    out_dir: Path,
) -> dict:
    """Run one cell through the engine and build its versioned record."""
    from repro.algorithms.registry import make_algorithm
    from repro.fl.config import TrainConfig
    from repro.fl.simulation import FederatedEnv

    checkpoint = None
    if config.checkpoint_every > 0:
        from repro.fl.defense import CheckpointConfig

        checkpoint = CheckpointConfig(
            directory=out_dir / "ckpt" / run_id,
            every=config.checkpoint_every,
            resume=True,
        )
    scenario = build_scenario(cell.scenario, checkpoint=checkpoint)
    t0 = time.perf_counter()
    with FederatedEnv(
        federation,
        model_name=config.model_name,
        model_kwargs=dict(config.model_kwargs),
        train_cfg=TrainConfig(**config.train),
        seed=cell.seed,
        executor=config.executor,
    ) as env:
        algorithm = make_algorithm(
            cell.algorithm, **config.algorithm_kwargs.get(cell.algorithm, {})
        )
        result = algorithm.run(
            env,
            n_rounds=config.n_rounds,
            eval_every=config.eval_every,
            scenario=scenario,
        )
        traffic = env.tracker.snapshot()
    wall_seconds = time.perf_counter() - t0
    history = result.history
    round_wall = float(sum(r.wall_seconds for r in history.records))
    summary = history.to_dict()
    metrics = {
        "final_accuracy": float(result.final_accuracy),
        "accuracy_std": float(result.accuracy_std),
        "best_accuracy": float(history.best_accuracy),
        "n_clusters": int(result.n_clusters),
        "wall_seconds": wall_seconds,
        "round_wall_seconds": round_wall,
        "uploaded_params": int(traffic["uploaded"]),
        "downloaded_params": int(traffic["downloaded"]),
        "traffic_params": int(traffic["uploaded"]) + int(traffic["downloaded"]),
        "n_stale_total": summary["n_stale_total"],
        "n_quarantined_total": summary["n_quarantined_total"],
        "n_quorum_failed": len(summary["quorum_failed_rounds"]),
        "n_aggregation_events": summary["n_aggregation_events"],
    }
    return to_jsonable(
        {
            "schema": SCHEMA_VERSION,
            "run_id": run_id,
            "matrix": config.name,
            "algorithm": cell.algorithm,
            "seed": cell.seed,
            "knob": cell.knob,
            "scenario": cell.scenario,
            "preset": {
                "federation": config.federation,
                "model_name": config.model_name,
                "model_kwargs": config.model_kwargs,
                "train": config.train,
                "n_rounds": config.n_rounds,
                "eval_every": config.eval_every,
            },
            "metrics": metrics,
            "engine": result.extras.get("engine_record"),
            "history": summary,
        }
    )


def run_matrix(
    config: AblationConfig,
    out_dir: str | Path,
    echo: Callable[[str], None] | None = None,
) -> MatrixOutcome:
    """Execute the matrix, skipping run IDs already on disk.

    One JSON record per run ID lands in ``<out_dir>/runs/``; a record
    with the current schema and a matching run ID is trusted and its
    cell is **not** re-executed (a stale-schema record is re-run in
    place).  After the sweep the importance report is rebuilt from all
    records and written to ``<out_dir>/ABLATION.json`` and
    ``ABLATION.md`` — re-invoking on a complete directory is therefore
    a cheap report refresh.
    """
    from repro.data.federation import build_federation

    say = echo or (lambda message: None)
    out = Path(out_dir)
    runs_dir = out / "runs"
    runs_dir.mkdir(parents=True, exist_ok=True)
    cells = generate_cells(config)
    federation = None
    results: list[CellResult] = []
    for index, cell in enumerate(cells, 1):
        run_id = cell_run_id(config, cell)
        path = runs_dir / f"{run_id}.json"
        if path.exists():
            record = load_json(path)
            if (
                record.get("schema") == SCHEMA_VERSION
                and record.get("run_id") == run_id
            ):
                say(
                    f"[{index}/{len(cells)}] {cell.label()} — cached "
                    f"({run_id})"
                )
                results.append(CellResult(cell, run_id, record, False))
                continue
        if federation is None:
            # Built lazily and once: a fully-cached re-invocation never
            # pays for dataset generation.
            federation = build_federation(**config.federation)
        say(f"[{index}/{len(cells)}] {cell.label()} — running ({run_id})")
        record = _execute_cell(config, cell, run_id, federation, out)
        save_json(path, record)
        results.append(CellResult(cell, run_id, record, True))
    report = build_report(config, [r.record for r in results])
    save_json(out / "ABLATION.json", report)
    (out / "ABLATION.md").write_text(format_report(report))
    return MatrixOutcome(config=config, out_dir=out, results=results, report=report)


# ----------------------------------------------------------------------
# The importance report
# ----------------------------------------------------------------------
#: record-metric key → report label for the three ranked axes.
_REPORT_METRICS = (
    ("final_accuracy", "accuracy"),
    ("round_wall_seconds", "wall_seconds"),
    ("traffic_params", "traffic_params"),
)


def _mean(values: Sequence[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return sum(finite) / len(finite) if finite else float("nan")


def _rank_value(value: float) -> float:
    return 0.0 if math.isnan(value) else abs(value)


def build_report(config: AblationConfig, records: Sequence[dict]) -> dict:
    """Rank each knob's effect on accuracy / wall-clock / traffic.

    Per (algorithm, knob) the metrics average over seeds; each knob's
    per-algorithm deltas are taken against that algorithm's baseline
    cell, and the cross-algorithm mean |Δ| is the knob's importance on
    each axis.  Rankings sort descending; NaN deltas (a knob whose cell
    never evaluated) rank last.
    """
    grouped: dict[tuple[str, str], list[dict]] = {}
    knob_order: list[str] = []
    for record in records:
        key = (record["algorithm"], record["knob"])
        grouped.setdefault(key, []).append(record)
        if record["knob"] != BASELINE and record["knob"] not in knob_order:
            knob_order.append(record["knob"])

    def cell_metrics(algorithm: str, knob: str) -> dict[str, float] | None:
        cell_records = grouped.get((algorithm, knob))
        if not cell_records:
            return None
        return {
            metric: _mean(
                [float(r["metrics"][metric]) for r in cell_records]
            )
            for metric, _ in _REPORT_METRICS
        }

    algorithms = [a for a in config.algorithms if (a, BASELINE) in grouped]
    baseline = {alg: cell_metrics(alg, BASELINE) for alg in algorithms}
    knobs: dict[str, dict] = {}
    for knob in knob_order:
        per_algorithm: dict[str, dict] = {}
        for alg in algorithms:
            metrics = cell_metrics(alg, knob)
            if metrics is None:
                continue
            base = baseline[alg]
            entry = {}
            for metric, label in _REPORT_METRICS:
                entry[label] = metrics[metric]
                entry[f"delta_{label}"] = metrics[metric] - base[metric]
            per_algorithm[alg] = entry
        importance = {
            label: _mean(
                [
                    abs(entry[f"delta_{label}"])
                    for entry in per_algorithm.values()
                ]
            )
            for _, label in _REPORT_METRICS
        }
        knobs[knob] = {
            "scenario_patch": to_jsonable(config.knobs.get(knob)),
            "per_algorithm": per_algorithm,
            "importance": importance,
        }
    ranking = {
        label: sorted(
            knobs,
            key=lambda knob: _rank_value(knobs[knob]["importance"][label]),
            reverse=True,
        )
        for _, label in _REPORT_METRICS
    }
    return to_jsonable(
        {
            "schema": SCHEMA_VERSION,
            "matrix": config.name,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "config": config.to_dict(),
            "n_records": len(records),
            "algorithms": algorithms,
            "baseline": {
                alg: {
                    label: baseline[alg][metric]
                    for metric, label in _REPORT_METRICS
                }
                for alg in algorithms
            },
            "knobs": knobs,
            "ranking": ranking,
        }
    )


def format_report(report: Mapping) -> str:
    """The importance report as markdown (``ABLATION.md``)."""
    lines = [
        f"# Ablation report — {report['matrix']}",
        "",
        f"Generated {report['generated_at']} from {report['n_records']} "
        f"run record(s); algorithms: {', '.join(report['algorithms'])}.",
        "",
        "## Knob importance (mean |Δ| vs baseline, across algorithms)",
        "",
        "| rank | knob | Δ accuracy | Δ wall (s) | Δ traffic (params) |",
        "|---:|---|---:|---:|---:|",
    ]
    knobs = report["knobs"]
    for rank, knob in enumerate(report["ranking"]["accuracy"], 1):
        importance = knobs[knob]["importance"]
        lines.append(
            f"| {rank} | {knob} | {importance['accuracy']:+.4f} "
            f"| {importance['wall_seconds']:.3f} "
            f"| {importance['traffic_params']:,.0f} |"
        )
    for alg in report["algorithms"]:
        base = report["baseline"][alg]
        lines += [
            "",
            f"## {alg}",
            "",
            f"Baseline: accuracy {base['accuracy']:.4f}, "
            f"wall {base['wall_seconds']:.3f} s, "
            f"traffic {base['traffic_params']:,.0f} params.",
            "",
            "| knob | accuracy | Δ accuracy | Δ wall (s) | Δ traffic |",
            "|---|---:|---:|---:|---:|",
        ]
        for knob in report["ranking"]["accuracy"]:
            entry = knobs[knob]["per_algorithm"].get(alg)
            if entry is None:
                continue
            lines.append(
                f"| {knob} | {entry['accuracy']:.4f} "
                f"| {entry['delta_accuracy']:+.4f} "
                f"| {entry['delta_wall_seconds']:+.3f} "
                f"| {entry['delta_traffic_params']:+,.0f} |"
            )
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Built-in matrices
# ----------------------------------------------------------------------
#: The seeded preset every parity pin in ``tests/test_fl_rounds.py``
#: runs on; the check matrix's baseline cell must land on it exactly.
_PIN_PRESET = dict(
    federation=dict(
        dataset_name="cifar10",
        n_clients=8,
        n_samples=800,
        seed=5,
        partition="label_cluster",
    ),
    model_name="mlp",
    model_kwargs={"hidden": [96]},
    train=dict(local_epochs=2, batch_size=32, lr=0.05, momentum=0.9),
    n_rounds=3,
    eval_every=1,
    seeds=(2,),
)


def check_matrix() -> AblationConfig:
    """The fast-lane smoke matrix: 6 FedAvg cells on the pin preset."""
    return AblationConfig(
        name="check",
        algorithms=("fedavg",),
        baseline={},
        knobs={
            "participation": {"client_fraction": 0.5},
            "failures": {"failure_rate": 0.3},
            "stale": {"straggler_rate": 0.3, "staleness_decay": 0.5},
            "budget": {"compute_budget": [1, 3]},
            "robust_agg": {"robust_agg": "trimmed_mean"},
        },
        **_PIN_PRESET,
    )


def nightly_matrix() -> AblationConfig:
    """The nightly regression surface: every middleware knob × 5
    algorithms (plus two pairwise cells) on the seeded pin preset.

    Cells stay seconds-cheap (8 clients, 6 rounds, the 96-hidden MLP)
    so the full matrix finishes inside the nightly lane's budget while
    still exercising all nine scenario knobs against a clustered, a
    global, a proximal, a probing and a no-collaboration method.
    """
    preset = dict(_PIN_PRESET)
    preset["n_rounds"] = 6
    return AblationConfig(
        name="nightly",
        algorithms=("fedavg", "fedprox", "ifca", "cfl", "local_only"),
        algorithm_kwargs={
            "fedprox": {"mu": 0.1},
            "ifca": {"n_clusters": 2},
            "cfl": {"warmup_rounds": 1},
        },
        baseline={},
        knobs={
            "participation": {"client_fraction": 0.5},
            "failures": {"failure_rate": 0.3},
            "stragglers": {"straggler_rate": 0.3},
            "stale": {"straggler_rate": 0.3, "staleness_decay": 0.5},
            "budget": {"compute_budget": [1, 3]},
            "trace": {"trace": {"0": [1, 2, 3], "1": [2, 4, 6]}},
            "async": {
                "async_config": {
                    "buffer_size": 4,
                    "max_concurrency": 6,
                    "duration_range": [1, 3],
                }
            },
            "corruption": {"corruption": {"rate": 0.2, "scale": 10.0}},
            "quorum": {
                "failure_rate": 0.3,
                "min_survivors": 6,
                "max_retries": 2,
            },
            "robust_agg": {"robust_agg": "trimmed_mean"},
        },
        pairs=(("failures", "budget"), ("stale", "budget")),
        **preset,
    )


_MATRICES = {"check": check_matrix, "nightly": nightly_matrix}


def named_matrix(name: str) -> AblationConfig:
    """A built-in matrix by name (``check`` or ``nightly``)."""
    if name not in _MATRICES:
        raise ValueError(
            f"unknown matrix {name!r}; options: {sorted(_MATRICES)}"
        )
    return _MATRICES[name]()


def load_config(path: str | Path) -> AblationConfig:
    """An :class:`AblationConfig` from a JSON file."""
    return AblationConfig.from_dict(load_json(path))


# ----------------------------------------------------------------------
# The CI smoke gate
# ----------------------------------------------------------------------
def run_check(
    out_dir: str | Path | None = None,
    echo: Callable[[str], None] = print,
) -> dict:
    """The fast-lane ``repro ablate --check`` protocol.

    Three gates on the tiny check matrix (6 FedAvg cells):

    1. **run-ID stability** — two independent matrix expansions produce
       identical run IDs, and the second :func:`run_matrix` invocation
       sees exactly the IDs the first one wrote;
    2. **skip-on-rerun** — the second invocation executes zero cells
       (every record is served from disk);
    3. **pin reproduction** — the baseline cell's accuracy and traffic
       equal the seeded FedAvg parity pin bit-for-bit
       (:data:`FEDAVG_PIN`), so the harness measures exactly what the
       tier-1 pin suite gates.

    Raises :class:`AblationCheckError` on any gate; returns a summary
    payload on success.
    """
    config = check_matrix()
    cells = generate_cells(config)
    ids_a = [cell_run_id(config, cell) for cell in cells]
    ids_b = [cell_run_id(config, cell) for cell in generate_cells(config)]
    if ids_a != ids_b:
        raise AblationCheckError(
            "run-ID instability: two expansions of the same matrix "
            f"disagree ({ids_a} vs {ids_b})"
        )
    if len(set(ids_a)) != len(ids_a):
        raise AblationCheckError(
            f"run-ID collision inside the check matrix: {ids_a}"
        )

    cleanup = None
    if out_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-ablate-check-")
        out_dir, cleanup = tmp.name, tmp
    try:
        echo(f"ablate --check: {len(cells)} cells -> {out_dir}")
        first = run_matrix(config, out_dir, echo=echo)
        second = run_matrix(config, out_dir, echo=echo)
        if second.n_executed != 0:
            raise AblationCheckError(
                "skip-on-rerun failed: second invocation executed "
                f"{second.n_executed} cell(s), expected 0"
            )
        if second.run_ids != first.run_ids or first.run_ids != ids_a:
            raise AblationCheckError(
                "run-ID drift between invocations: "
                f"{first.run_ids} vs {second.run_ids}"
            )
        record = second.record_for("fedavg", BASELINE)
        metrics = record["metrics"]
        for key, want in FEDAVG_PIN.items():
            found = metrics[key]
            if found != want:
                raise AblationCheckError(
                    f"baseline cell broke the seeded fedavg pin: "
                    f"{key} = {found!r}, pin holds {want!r}"
                )
        missing = [
            knob
            for knob in config.knobs
            if knob not in second.report["ranking"]["accuracy"]
        ]
        if missing:
            raise AblationCheckError(
                f"importance report is missing knobs {missing}"
            )
        echo(
            "ablate --check: PASS — run IDs stable, rerun executed 0 "
            "cells, baseline reproduces the seeded fedavg pin "
            f"(accuracy {metrics['final_accuracy']:.6f}, "
            f"{metrics['uploaded_params']} params uploaded)"
        )
        return {
            "matrix": config.name,
            "n_cells": len(cells),
            "run_ids": first.run_ids,
            "first_executed": first.n_executed,
            "second_executed": second.n_executed,
            "pin": dict(FEDAVG_PIN),
        }
    finally:
        if cleanup is not None:
            cleanup.cleanup()
