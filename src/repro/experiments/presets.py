"""Experiment scale presets.

The paper's experiments run for hundreds of rounds on real datasets; a
NumPy simulator on a laptop regenerates the same *shapes* at reduced
scale.  Three presets are provided and selected by the ``REPRO_SCALE``
environment variable (default ``quick``):

* ``quick`` — seconds-per-experiment; used by the default benchmark run
  and CI.
* ``bench`` — minutes-per-experiment; tighter statistics.
* ``paper`` — the full configuration (tens of minutes on a laptop);
  closest to the paper's setting of many clients and rounds.

Every preset also fixes the per-method hyper-parameters used by the
Table-I harness so that results are comparable across benches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.clustering import ClusteringConfig
from repro.fl.config import TrainConfig

__all__ = ["ExperimentScale", "SCALES", "get_scale", "algorithm_kwargs"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime."""

    name: str
    n_clients: int
    n_samples: int
    n_rounds: int
    seeds: tuple[int, ...]
    train: TrainConfig
    eval_every: int
    fig1_local_steps: int = 30

    def __post_init__(self) -> None:
        if self.n_rounds < 2:
            raise ValueError("n_rounds must be >= 2 (one-shot methods need 2)")
        if not self.seeds:
            raise ValueError("need at least one seed")


SCALES: dict[str, ExperimentScale] = {
    "quick": ExperimentScale(
        name="quick",
        n_clients=16,
        n_samples=2600,
        n_rounds=10,
        seeds=(0,),
        train=TrainConfig(local_epochs=1, batch_size=32, lr=0.03, momentum=0.9),
        eval_every=5,
        fig1_local_steps=20,
    ),
    "bench": ExperimentScale(
        name="bench",
        n_clients=20,
        n_samples=4000,
        n_rounds=15,
        seeds=(0, 1),
        train=TrainConfig(local_epochs=2, batch_size=32, lr=0.03, momentum=0.9),
        eval_every=5,
        fig1_local_steps=30,
    ),
    "paper": ExperimentScale(
        name="paper",
        n_clients=50,
        n_samples=10000,
        n_rounds=40,
        seeds=(0, 1, 2),
        train=TrainConfig(local_epochs=2, batch_size=32, lr=0.03, momentum=0.9),
        eval_every=10,
        fig1_local_steps=50,
    ),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by name, falling back to ``$REPRO_SCALE`` then quick."""
    key = name or os.environ.get("REPRO_SCALE", "quick")
    if key not in SCALES:
        raise ValueError(f"unknown scale {key!r}; options: {sorted(SCALES)}")
    return SCALES[key]


def algorithm_kwargs(method: str, scale: ExperimentScale) -> dict:
    """Per-method hyper-parameters used by the experiment harness.

    Centralised so Table I, the ablations and the examples all run each
    baseline with the same settings.
    """
    max_k = max(2, scale.n_clients // 2)
    if method == "fedclust":
        return dict(
            warmup_steps=30,
            warmup_lr=0.01,
            warm_start_final_layer=True,
            clustering=ClusteringConfig(
                linkage_method="average",
                cut="silhouette",
                max_clusters=max_k,
            ),
        )
    if method == "ifca":
        return dict(n_clusters=max(2, scale.n_clients // 5))
    if method == "pacfl":
        return dict(n_components=3, max_clusters=max_k)
    if method == "fedprox":
        return dict(mu=0.1)
    if method == "cfl":
        # Sattler's criterion demands near-stationarity of the cluster
        # objective before any split; at simulation horizons that means
        # no splits before roughly the midpoint (the paper's own
        # "CFL needs many rounds" observation).
        return dict(warmup_rounds=max(3, scale.n_rounds // 2))
    return {}
