"""repro — a full reproduction of *FedClust: Optimizing Federated Learning
on Non-IID Data through Weight-Driven Client Clustering* (IPDPSW 2024).

Top-level convenience re-exports cover the typical workflow::

    from repro import build_federation, FederatedEnv, TrainConfig, FedClust

    fed = build_federation("cifar10", n_clients=20, n_samples=4000, seed=0,
                           partition="dirichlet", alpha=0.1)
    env = FederatedEnv(fed, model_name="lenet5",
                       train_cfg=TrainConfig(local_epochs=2), seed=0)
    result = FedClust().run(env, n_rounds=30)
    print(result.final_accuracy, result.n_clusters)

Sub-packages:

* :mod:`repro.nn` — from-scratch NumPy deep-learning substrate;
* :mod:`repro.data` — synthetic datasets and federated partitioners;
* :mod:`repro.cluster` — distances, hierarchical clustering, metrics;
* :mod:`repro.fl` — the federated simulation machinery;
* :mod:`repro.algorithms` — FedAvg, FedProx, CFL, IFCA, PACFL baselines;
* :mod:`repro.core` — FedClust itself;
* :mod:`repro.experiments` — drivers that regenerate the paper's
  tables and figures.
"""

from repro.algorithms import (
    CFL,
    IFCA,
    PACFL,
    FedAvg,
    FedProx,
    RunResult,
    available_algorithms,
    make_algorithm,
)
from repro.core import (
    ClusteringConfig,
    FedClust,
    FedClustConfig,
    FittedFedClust,
)
from repro.data import ArrayDataset, Federation, build_federation, make_dataset
from repro.fl import (
    AsyncConfig,
    CommunicationTracker,
    FederatedEnv,
    RoundEngine,
    RunHistory,
    ScenarioConfig,
    TrainConfig,
    make_executor,
)

__version__ = "1.0.0"

__all__ = [
    "CFL",
    "IFCA",
    "PACFL",
    "FedAvg",
    "FedProx",
    "RunResult",
    "available_algorithms",
    "make_algorithm",
    "ClusteringConfig",
    "FedClust",
    "FedClustConfig",
    "FittedFedClust",
    "ArrayDataset",
    "Federation",
    "build_federation",
    "make_dataset",
    "CommunicationTracker",
    "FederatedEnv",
    "RoundEngine",
    "RunHistory",
    "ScenarioConfig",
    "AsyncConfig",
    "TrainConfig",
    "make_executor",
    "__version__",
]
