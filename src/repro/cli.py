"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment drivers without writing any Python:

* ``table1`` — regenerate the paper's Table I;
* ``fig1``   — the layer-wise distance probe (Fig. 1);
* ``fig2``   — the workflow trace incl. newcomer (Fig. 2);
* ``sweep``  — the Dirichlet-α heterogeneity sweep (A3);
* ``comm``   — the communication-cost study (C1);
* ``run``    — one algorithm on one federation, fully parameterised;
* ``ablate`` — the scenario × algorithm ablation matrix (resumable,
  content-addressed run records + knob-importance report).

All commands accept ``--scale quick|bench|paper`` (or the ``REPRO_SCALE``
environment variable) and ``--out results.json`` to persist metrics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.utils.logging import enable_console_logging
from repro.utils.serialization import save_json

__all__ = ["main", "build_parser"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default=None, choices=["quick", "bench", "paper"],
                        help="experiment scale preset (default: $REPRO_SCALE or quick)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write a JSON result record to PATH")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FedClust reproduction — regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table I: six methods × three datasets")
    _add_common(p)
    p.add_argument("--datasets", nargs="+", default=["cifar10", "fmnist", "svhn"])
    p.add_argument("--methods", nargs="+", default=None,
                   help="subset of: fedavg fedprox cfl ifca pacfl fedclust")
    p.add_argument("--alpha", type=float, default=0.1)

    p = sub.add_parser("fig1", help="Fig. 1: layer-wise weight-distance probe")
    _add_common(p)
    p.add_argument("--dataset", default="cifar10")
    p.add_argument("--clients", type=int, default=10)
    p.add_argument("--layers", type=int, nargs="+", default=[1, 7, 14, 16])

    p = sub.add_parser("fig2", help="Fig. 2: workflow trace incl. newcomer")
    _add_common(p)
    p.add_argument("--dataset", default="fmnist")

    p = sub.add_parser("sweep", help="A3: FedClust vs FedAvg across Dirichlet alpha")
    _add_common(p)
    p.add_argument("--alphas", type=float, nargs="+",
                   default=[0.05, 0.1, 0.5, 1.0, 100.0])
    p.add_argument("--dataset", default="cifar10")

    p = sub.add_parser("comm", help="C1: communication-cost study")
    _add_common(p)
    p.add_argument("--dataset", default="fmnist")
    p.add_argument("--target", type=float, default=0.8,
                   help="target accuracy for the traffic-to-accuracy column")

    p = sub.add_parser("run", help="run one algorithm on one federation")
    _add_common(p)
    p.add_argument("--algorithm", default="fedclust",
                   help="fedavg|fedprox|cfl|ifca|pacfl|fedclust|local_only")
    p.add_argument("--dataset", default="cifar10")
    p.add_argument("--partition", default="dirichlet",
                   choices=["dirichlet", "shard", "label_cluster", "iid"])
    p.add_argument("--alpha", type=float, default=0.1)
    p.add_argument("--clients", type=int, default=None)
    p.add_argument("--rounds", type=int, default=None)
    p.add_argument("--model", default="lenet5")
    p.add_argument("--executor", default="serial",
                   choices=["serial", "thread", "process", "batched"])
    p.add_argument("--store", default="dense", choices=["dense", "sharded"],
                   help="client-state store backing per-client algorithms: "
                        "'dense' keeps one wire-dtype matrix (the "
                        "bit-identity default), 'sharded' materialises "
                        "wire-dtype shards lazily so memory tracks the "
                        "clients actually touched — the population-scale "
                        "configuration")
    p.add_argument("--shard-size", type=int, default=256, metavar="N",
                   help="clients per shard for --store sharded "
                        "(default: 256)")
    p.add_argument("--store-path", default=None, metavar="DIR",
                   help="back sharded-store shards with memory-mapped "
                        ".npy files under DIR instead of anonymous memory")
    p.add_argument("--edge-size", type=int, default=0, metavar="E",
                   help="tiered aggregation: reduce survivors in edge "
                        "groups of E rows and fold the partial sums at "
                        "the root (0 = single flat GEMV, the bit-identity "
                        "default; only applies to the plain weighted "
                        "average, robust rules are unaffected)")
    p.add_argument("--client-fraction", type=float, default=1.0,
                   help="participation fraction C per round (any algorithm)")
    p.add_argument("--failure-rate", type=float, default=0.0,
                   help="seeded per-(round, client) pre-training drop rate")
    p.add_argument("--straggler-rate", type=float, default=0.0,
                   help="seeded per-(round, client) deadline-miss rate "
                        "(trains and uploads, excluded from aggregation)")
    p.add_argument("--staleness-decay", type=float, default=0.0,
                   help="fold straggler updates into the next round's "
                        "aggregation at weight x decay^age (0 = discard, "
                        "the classic behaviour)")
    p.add_argument("--compute-budget", type=int, nargs="+", default=None,
                   metavar="STEPS",
                   help="per-(round, client) local step budget: one int for "
                        "a fixed cap, two for a seeded uniform [lo, hi] "
                        "draw; partial work is kept and aggregation "
                        "renormalises by steps taken")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="availability-trace JSON (client id -> available "
                        "rounds; see repro.fl.trace) replayed as the "
                        "participation schedule")
    p.add_argument("--async-buffer", type=int, default=None, metavar="K",
                   help="run the FedBuff-style async engine: aggregate "
                        "whenever K buffered updates have arrived "
                        "(dispatch and aggregation decouple; clients "
                        "train across server steps)")
    p.add_argument("--async-concurrency", type=int, default=None,
                   metavar="M",
                   help="cap on clients concurrently in flight "
                        "(async mode; default unbounded)")
    p.add_argument("--async-duration", type=int, nargs="+", default=None,
                   metavar="STEPS",
                   help="seeded per-dispatch training duration in server "
                        "steps: one int for a fixed duration, two for a "
                        "uniform [lo, hi] draw (async mode; default 1 3)")
    p.add_argument("--corruption-rate", type=float, default=0.0,
                   help="seeded per-(round, client) probability that a "
                        "returned update is mangled before it reaches the "
                        "server (fault injection; 0 disables)")
    p.add_argument("--corruption-kinds", nargs="+", default=None,
                   metavar="KIND",
                   help="corruption kinds drawn per event: subset of "
                        "nan inf sign_flip noise (default: all four)")
    p.add_argument("--corruption-scale", type=float, default=10.0,
                   help="std-dev multiplier for 'noise' corruption events")
    p.add_argument("--robust-agg", default="none",
                   choices=["none", "clip", "trimmed_mean",
                            "coordinate_median"],
                   help="robust aggregation rule at the server's averaging "
                        "choke point ('none' keeps the exact classic "
                        "weighted average)")
    p.add_argument("--norm-bound", type=float, default=None, metavar="B",
                   help="admission guard: quarantine updates whose norm "
                        "exceeds B x the batch median norm (finiteness is "
                        "always checked; default: no norm bound)")
    p.add_argument("--min-survivors", type=int, default=0, metavar="Q",
                   help="survivor quorum: redispatch the failed remainder "
                        "(up to --max-retries fresh seeded epochs) until Q "
                        "admitted updates arrive; below quorum the round "
                        "degrades gracefully with frozen server state")
    p.add_argument("--max-retries", type=int, default=0, metavar="R",
                   help="retry attempts per round when below the "
                        "--min-survivors quorum")
    p.add_argument("--checkpoint", default=None, metavar="DIR",
                   help="write a resumable server checkpoint to DIR after "
                        "each round (server rows at wire dtype, rng "
                        "derivation state, stale/in-flight buffers, "
                        "history, traffic counters)")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="checkpoint cadence in rounds (default: every "
                        "round; the final round is always written)")
    p.add_argument("--resume", action="store_true",
                   help="resume from the checkpoint in --checkpoint DIR if "
                        "one exists (bit-identical to the uninterrupted "
                        "run); missing file starts fresh")

    p = sub.add_parser(
        "ablate",
        help="scenario x algorithm ablation matrix with stable run IDs",
        description="Execute an ablation matrix (baseline + one-knob "
                    "variants per algorithm x seed), writing one "
                    "content-addressed JSON record per run under "
                    "OUT/runs/ and a knob-importance report to "
                    "OUT/ABLATION.{json,md}.  Completed run IDs are "
                    "skipped on re-invocation, so an interrupted matrix "
                    "resumes where it stopped.",
    )
    p.add_argument("--matrix", default="check", metavar="NAME",
                   help="built-in matrix: 'check' (6-cell fast-lane "
                        "smoke) or 'nightly' (every scenario knob x 5 "
                        "algorithms + pairwise cells)")
    p.add_argument("--config", default=None, metavar="FILE",
                   help="declarative AblationConfig JSON (overrides "
                        "--matrix)")
    # ``--out`` is a *directory* here (records + report), unlike the
    # other commands' JSON file path — so it gets its own dest and the
    # shared main() JSON dump is disabled for this command.
    p.add_argument("--out", dest="out_dir", default="ablation_out",
                   metavar="DIR",
                   help="record/report directory (default: ablation_out)")
    p.set_defaults(out=None)
    p.add_argument("--check", action="store_true",
                   help="run the CI smoke gate instead of a matrix: "
                        "run-ID stability across two expansions, "
                        "zero re-executions on the second invocation, "
                        "and the baseline cell reproducing the seeded "
                        "fedavg parity pin bit-for-bit")
    p.add_argument("--list", action="store_true", dest="list_cells",
                   help="print the matrix's cells and run IDs without "
                        "executing anything")
    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------

def _cmd_table1(args: argparse.Namespace) -> dict:
    from repro.experiments.table1 import format_table1, run_table1

    result = run_table1(
        datasets=tuple(args.datasets),
        methods=tuple(args.methods) if args.methods else None,
        scale=args.scale,
        alpha=args.alpha,
    )
    print(format_table1(result))
    return {
        "experiment": "table1",
        "scale": result.scale_name,
        "cells": {
            f"{m}/{d}": {"mean": c.mean, "std": c.std, "accs": c.accuracies}
            for (m, d), c in result.cells.items()
        },
    }


def _cmd_fig1(args: argparse.Namespace) -> dict:
    from repro.experiments.fig1 import format_fig1, run_fig1

    result = run_fig1(
        dataset=args.dataset,
        n_clients=args.clients,
        layer_indices=tuple(args.layers),
        scale=args.scale,
        seed=args.seed,
    )
    print(format_fig1(result))
    return {
        "experiment": "fig1",
        "separability": {str(k): v for k, v in result.separability.items()},
        "layer_names": {str(k): v for k, v in result.layer_names.items()},
    }


def _cmd_fig2(args: argparse.Namespace) -> dict:
    from repro.experiments.fig2 import format_fig2, run_fig2

    result = run_fig2(dataset=args.dataset, scale=args.scale, seed=args.seed)
    print(format_fig2(result))
    return {
        "experiment": "fig2",
        "ari": result.ari,
        "newcomer_correct": result.newcomer_correct,
        "partial_upload_fraction": result.partial_upload_fraction,
        "final_accuracy": result.final_accuracy,
    }


def _cmd_sweep(args: argparse.Namespace) -> dict:
    from repro.experiments.ablations import run_alpha_sweep

    result = run_alpha_sweep(
        alphas=tuple(args.alphas),
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
    )
    print(result.format())
    return {
        "experiment": "alpha_sweep",
        "alphas": result.alphas,
        "fedavg": result.fedavg,
        "fedclust": result.fedclust,
        "fedclust_k": result.fedclust_k,
    }


def _cmd_comm(args: argparse.Namespace) -> dict:
    from repro.experiments.ablations import run_communication_study

    result = run_communication_study(
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        target_accuracy=args.target,
    )
    print(result.format())
    return {"experiment": "communication", "rows": result.rows}


def _cmd_run(args: argparse.Namespace) -> dict:
    from repro.algorithms.registry import make_algorithm
    from repro.data.federation import build_federation
    from repro.experiments.presets import algorithm_kwargs, get_scale
    from repro.fl.defense import CheckpointConfig, CorruptionConfig
    from repro.fl.parallel import make_executor
    from repro.fl.rounds import AsyncConfig, ScenarioConfig
    from repro.fl.simulation import FederatedEnv
    from repro.fl.store import StoreConfig
    from repro.fl.trace import AvailabilityTrace

    scale = get_scale(args.scale)
    budget = args.compute_budget
    if budget is not None:
        if len(budget) > 2:
            raise SystemExit(
                f"--compute-budget takes one or two ints, got {budget}"
            )
        budget = (budget[0], budget[-1])
    async_config = None
    if args.async_buffer is not None:
        duration = args.async_duration
        if duration is not None and len(duration) > 2:
            raise SystemExit(
                f"--async-duration takes one or two ints, got {duration}"
            )
        kwargs = {"buffer_size": args.async_buffer}
        if args.async_concurrency is not None:
            kwargs["max_concurrency"] = args.async_concurrency
        if duration is not None:
            kwargs["duration_range"] = (duration[0], duration[-1])
        async_config = AsyncConfig(**kwargs)
    elif args.async_concurrency is not None or args.async_duration is not None:
        raise SystemExit(
            "--async-concurrency/--async-duration need --async-buffer K "
            "(they configure the async engine)"
        )
    corruption = None
    if args.corruption_rate > 0.0:
        kwargs = {"rate": args.corruption_rate, "scale": args.corruption_scale}
        if args.corruption_kinds:
            kwargs["kinds"] = tuple(args.corruption_kinds)
        corruption = CorruptionConfig(**kwargs)
    elif args.corruption_kinds:
        raise SystemExit(
            "--corruption-kinds needs --corruption-rate > 0 "
            "(it configures fault injection)"
        )
    checkpoint = None
    if args.checkpoint is not None:
        checkpoint = CheckpointConfig(
            directory=args.checkpoint,
            every=args.checkpoint_every,
            resume=args.resume,
        )
    elif args.resume:
        raise SystemExit("--resume needs --checkpoint DIR")
    # Scenario policy composes with every algorithm through the round
    # engine — not just FedAvg's constructor fraction.
    scenario = ScenarioConfig(
        client_fraction=args.client_fraction,
        failure_rate=args.failure_rate,
        straggler_rate=args.straggler_rate,
        staleness_decay=args.staleness_decay,
        compute_budget=budget,
        trace=AvailabilityTrace.load(args.trace) if args.trace else None,
        async_config=async_config,
        corruption=corruption,
        robust_agg=args.robust_agg,
        norm_bound=args.norm_bound,
        min_survivors=args.min_survivors,
        max_retries=args.max_retries,
        checkpoint=checkpoint,
    )
    if args.store_path is not None and args.store != "sharded":
        raise SystemExit("--store-path needs --store sharded")
    store_config = StoreConfig(
        kind=args.store,
        shard_size=args.shard_size,
        edge_size=args.edge_size,
        path=args.store_path,
    )
    n_clients = args.clients or scale.n_clients
    n_rounds = args.rounds or scale.n_rounds
    federation = build_federation(
        args.dataset,
        n_clients=n_clients,
        n_samples=scale.n_samples,
        seed=args.seed,
        partition=args.partition,
        alpha=args.alpha,
    )
    print(federation.summary())
    with FederatedEnv(
        federation,
        model_name=args.model,
        train_cfg=scale.train,
        seed=args.seed,
        executor=make_executor(args.executor),
        store=store_config,
    ) as env:
        algorithm = make_algorithm(
            args.algorithm, **algorithm_kwargs(args.algorithm, scale)
        )
        result = algorithm.run(
            env,
            n_rounds=n_rounds,
            eval_every=scale.eval_every,
            scenario=scenario,
        )
    print(
        f"{args.algorithm}: final accuracy {result.final_accuracy:.3f} "
        f"(± {result.accuracy_std:.3f} across clients), "
        f"{result.n_clusters} cluster(s), "
        f"{result.comm['total']['bytes'] / 1e6:.1f} MB transferred"
    )
    return {
        "experiment": "run",
        "algorithm": args.algorithm,
        "dataset": args.dataset,
        "final_accuracy": result.final_accuracy,
        "n_clusters": result.n_clusters,
        "population": {
            "n_clients": n_clients,
            "store": store_config.describe(),
        },
        "scenario": {
            "client_fraction": args.client_fraction,
            "failure_rate": args.failure_rate,
            "straggler_rate": args.straggler_rate,
            "staleness_decay": args.staleness_decay,
            "compute_budget": list(budget) if budget else None,
            "trace": args.trace,
            "async": (
                {
                    "buffer_size": async_config.buffer_size,
                    "max_concurrency": async_config.max_concurrency,
                    "duration_range": list(async_config.duration_range),
                }
                if async_config
                else None
            ),
            "defense": {
                "corruption": (
                    {
                        "rate": corruption.rate,
                        "kinds": list(corruption.kinds),
                        "scale": corruption.scale,
                    }
                    if corruption
                    else None
                ),
                "robust_agg": args.robust_agg,
                "norm_bound": args.norm_bound,
                "min_survivors": args.min_survivors,
                "max_retries": args.max_retries,
                "checkpoint": args.checkpoint,
                "resumed": bool(args.resume),
            },
        },
        "history": result.history.to_dict(),
    }


def _cmd_ablate(args: argparse.Namespace) -> dict:
    from repro.experiments.ablation import (
        AblationCheckError,
        cell_run_id,
        generate_cells,
        load_config,
        named_matrix,
        run_check,
        run_matrix,
    )

    if args.check:
        try:
            return {"experiment": "ablate_check"} | run_check()
        except AblationCheckError as exc:
            raise SystemExit(f"ablate --check: FAIL — {exc}") from exc
    config = (
        load_config(args.config) if args.config else named_matrix(args.matrix)
    )
    if args.list_cells:
        cells = generate_cells(config)
        for cell in cells:
            print(f"{cell_run_id(config, cell)}  {cell.label()}")
        print(f"{len(cells)} cell(s) in matrix {config.name!r}")
        return {
            "experiment": "ablate_list",
            "matrix": config.name,
            "cells": [
                {"run_id": cell_run_id(config, cell), "label": cell.label()}
                for cell in cells
            ],
        }
    outcome = run_matrix(config, args.out_dir, echo=print)
    print((outcome.out_dir / "ABLATION.md").read_text())
    print(
        f"matrix {config.name!r}: {outcome.n_executed} executed, "
        f"{outcome.n_skipped} cached -> {outcome.out_dir}"
    )
    return {
        "experiment": "ablate",
        "matrix": config.name,
        "out_dir": str(outcome.out_dir),
        "n_executed": outcome.n_executed,
        "n_skipped": outcome.n_skipped,
        "run_ids": outcome.run_ids,
        "ranking": outcome.report["ranking"],
    }


_COMMANDS: dict[str, Callable[[argparse.Namespace], dict]] = {
    "table1": _cmd_table1,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "sweep": _cmd_sweep,
    "comm": _cmd_comm,
    "run": _cmd_run,
    "ablate": _cmd_ablate,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    enable_console_logging()
    payload = _COMMANDS[args.command](args)
    if args.out:
        path = save_json(args.out, payload)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
