"""Server-side parameter aggregation.

Implements the FedAvg rule — the weighted average of client states by
local sample count — which every algorithm in this reproduction uses
(globally for FedAvg/FedProx, per cluster for CFL/IFCA/PACFL/FedClust).

Two representations, one set of semantics:

* :func:`packed_weighted_average` — the kernel.  Operates on a cohort
  packed into one ``(n_clients, n_params)`` float64 matrix (see
  :mod:`repro.nn.state_flat`); the average is a single GEMV ``w @ X``.
* :func:`weighted_average` — the dict API, kept as a thin compatibility
  view: it packs, calls the kernel, and unpacks, so its output is
  bit-identical to the packed path by construction.

:func:`weighted_average_dict` preserves the original per-key loop as a
reference kernel; benchmarks (``benchmarks/bench_kernels.py``) time it
against the packed kernel, and tests cross-check the two numerically.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Sequence

import numpy as np

from repro.nn.state import check_same_keys, state_axpy, state_zeros_like
from repro.nn.state_flat import StateLayout, pack_states, unpack_state

__all__ = [
    "packed_weighted_average",
    "weighted_average",
    "weighted_average_dict",
    "uniform_average",
]


def _normalized_weights(weights: Sequence[float], n_states: int) -> np.ndarray:
    """Validate and normalise aggregation weights (shared by all paths)."""
    if n_states != len(weights):
        raise ValueError(f"{n_states} states but {len(weights)} weights")
    if not n_states:
        raise ValueError("cannot average zero states")
    w = np.asarray(weights, dtype=np.float64)
    if np.any(w < 0):
        raise ValueError(f"weights must be non-negative, got {w}")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return w / total


def packed_weighted_average(
    matrix: np.ndarray,
    weights: Sequence[float],
) -> np.ndarray:
    """``Σ_i (w_i / Σw) · X[i]`` as one GEMV over a packed cohort.

    ``matrix`` is the ``(n_clients, n_params)`` float64 stack from
    :func:`repro.nn.state_flat.pack_states` (rows may also come straight
    from flat client updates).  Returns the float64 average vector; use
    :func:`repro.nn.state_flat.unpack_state` to view it as a state dict.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"packed cohort must be (n, p), got {matrix.shape}")
    w = _normalized_weights(weights, matrix.shape[0])
    return w @ matrix


def weighted_average(
    states: Sequence[Mapping[str, np.ndarray]],
    weights: Sequence[float],
    layout: StateLayout | None = None,
    matrix: np.ndarray | None = None,
) -> "OrderedDict[str, np.ndarray]":
    """``Σ_i (w_i / Σw) · state_i`` with shape/key checking.

    Weights are typically client sample counts ``n_i`` (Eq. 1 of the
    paper); they must be non-negative with a positive sum.

    Compatibility view over the flat parameter plane: packs the cohort,
    runs :func:`packed_weighted_average`, and unpacks — so dict-API
    callers get bit-identical results to the packed hot path.  Passing a
    precomputed ``layout`` skips re-deriving it per call.  In the round
    loop the cohort usually *already lives* packed (executors return
    flat updates; see ``cohort_matrix``); pass it as ``matrix`` (row
    ``i`` = packed ``states[i]``) and the view skips repacking entirely
    — packing dominated the view's cost, not the GEMV.
    """
    if len(states) != len(weights):
        raise ValueError(f"{len(states)} states but {len(weights)} weights")
    if not states:
        raise ValueError("cannot average zero states")
    check_same_keys(list(states))
    if matrix is None:
        matrix, layout = pack_states(states, layout)
    else:
        if layout is None:
            layout = StateLayout.from_state(states[0])
        matrix = np.asarray(matrix)
        if matrix.shape != (len(states), layout.n_params):
            raise ValueError(
                f"matrix has shape {matrix.shape}, expected "
                f"({len(states)}, {layout.n_params})"
            )
    return unpack_state(packed_weighted_average(matrix, weights), layout)


def weighted_average_dict(
    states: Sequence[Mapping[str, np.ndarray]],
    weights: Sequence[float],
) -> "OrderedDict[str, np.ndarray]":
    """Reference per-key implementation of the FedAvg rule.

    The pre-flat-plane kernel: a Python loop of per-key AXPYs with a
    float64 accumulator, cast back to the parameter dtype at the end.
    Kept as the baseline that benchmarks and numerical cross-checks
    compare the packed kernel against.
    """
    check_same_keys(list(states))
    w = _normalized_weights(weights, len(states))

    acc = state_zeros_like(states[0])
    # Accumulate in float64 for stability, cast back to parameter dtype.
    acc64 = OrderedDict((k, v.astype(np.float64)) for k, v in acc.items())
    for state, weight in zip(states, w):
        state_axpy(acc64, state, weight)
    return OrderedDict(
        (k, acc64[k].astype(states[0][k].dtype)) for k in acc64
    )


def uniform_average(
    states: Sequence[Mapping[str, np.ndarray]],
) -> "OrderedDict[str, np.ndarray]":
    """Unweighted mean of states (used in ablations)."""
    return weighted_average(states, np.ones(len(states)))
