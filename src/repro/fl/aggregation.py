"""Server-side parameter aggregation.

Implements the FedAvg rule — the weighted average of client states by
local sample count — which every algorithm in this reproduction uses
(globally for FedAvg/FedProx, per cluster for CFL/IFCA/PACFL/FedClust).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Sequence

import numpy as np

from repro.nn.state import check_same_keys, state_axpy, state_zeros_like

__all__ = ["weighted_average", "uniform_average"]


def weighted_average(
    states: Sequence[Mapping[str, np.ndarray]],
    weights: Sequence[float],
) -> "OrderedDict[str, np.ndarray]":
    """``Σ_i (w_i / Σw) · state_i`` with shape/key checking.

    Weights are typically client sample counts ``n_i`` (Eq. 1 of the
    paper); they must be non-negative with a positive sum.
    """
    if len(states) != len(weights):
        raise ValueError(
            f"{len(states)} states but {len(weights)} weights"
        )
    if not states:
        raise ValueError("cannot average zero states")
    w = np.asarray(weights, dtype=np.float64)
    if np.any(w < 0):
        raise ValueError(f"weights must be non-negative, got {w}")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    check_same_keys(list(states))

    acc = state_zeros_like(states[0])
    # Accumulate in float64 for stability, cast back to parameter dtype.
    acc64 = OrderedDict((k, v.astype(np.float64)) for k, v in acc.items())
    for state, weight in zip(states, w):
        state_axpy(acc64, state, weight / total)
    return OrderedDict(
        (k, acc64[k].astype(states[0][k].dtype)) for k in acc64
    )


def uniform_average(
    states: Sequence[Mapping[str, np.ndarray]],
) -> "OrderedDict[str, np.ndarray]":
    """Unweighted mean of states (used in ablations)."""
    return weighted_average(states, np.ones(len(states)))
