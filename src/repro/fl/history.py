"""Run histories: per-round records and end-of-run summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundRecord", "RunHistory"]


@dataclass
class RoundRecord:
    """Metrics for one communication round.

    ``n_stale`` counts stale (late-arriving) updates folded into this
    round's aggregation; ``n_departed`` counts clients whose departure
    round is this one.  Both stay 0 under scenarios that do not
    exercise the middleware.

    ``evaluated`` marks whether this round actually ran the Table-I
    evaluation: off-cadence rounds (``eval_every > 1``) record
    ``mean_local_accuracy`` as NaN with ``evaluated=False``, so a
    history distinguishes "measured" from "not measured" instead of
    carrying the previous evaluation forward.

    ``aggregation_event``/``n_buffered`` are the async engine's event
    stream: whether this server step folded buffered updates into the
    model, and how many arrived updates remain buffered afterwards.
    Synchronous rounds aggregate every step with an empty buffer, which
    the defaults encode.

    ``n_quarantined`` counts updates the admission pipeline rejected
    this round (non-finite or norm-exploded rows; the reason codes live
    in the engine's ``quarantine_log``).  ``quorum_failed`` marks a
    synchronous round that stayed below the scenario's
    ``min_survivors`` quorum after all retries: the server froze its
    state and logged a NaN loss instead of aggregating a cohort too
    small to trust.
    """

    round_index: int
    mean_train_loss: float
    mean_local_accuracy: float
    n_participants: int
    n_clusters: int
    uploaded_params: int
    downloaded_params: int
    wall_seconds: float = 0.0
    n_stale: int = 0
    n_departed: int = 0
    n_buffered: int = 0
    n_quarantined: int = 0
    aggregation_event: bool = True
    quorum_failed: bool = False
    evaluated: bool = True


@dataclass
class RunHistory:
    """Ordered round records plus run-level metadata."""

    algorithm: str
    dataset: str
    seed: int
    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        if self.records and record.round_index <= self.records[-1].round_index:
            raise ValueError(
                f"round {record.round_index} not after {self.records[-1].round_index}"
            )
        self.records.append(record)

    @property
    def n_rounds(self) -> int:
        return len(self.records)

    @property
    def final_accuracy(self) -> float:
        """Last round's mean local accuracy (NaN for an empty history)."""
        return self.records[-1].mean_local_accuracy if self.records else float("nan")

    @property
    def best_accuracy(self) -> float:
        """Best *evaluated* accuracy (NaN if no round was evaluated).

        Off-cadence rounds carry NaN accuracies; a plain ``max()`` over
        them is poisoned by NaN ordering, so only evaluated records
        compete.
        """
        measured = [
            r.mean_local_accuracy
            for r in self.records
            if r.evaluated and not np.isnan(r.mean_local_accuracy)
        ]
        return max(measured) if measured else float("nan")

    def accuracy_curve(self) -> np.ndarray:
        """Mean local accuracy per round, shape ``(n_rounds,)``.

        NaN entries mark rounds the evaluation cadence skipped; plot
        them as gaps (or filter via the records' ``evaluated`` flags),
        do not interpolate them as flat segments.
        """
        return np.array([r.mean_local_accuracy for r in self.records])

    def loss_curve(self) -> np.ndarray:
        """Mean train loss per round."""
        return np.array([r.mean_train_loss for r in self.records])

    def comm_curve(self) -> np.ndarray:
        """Cumulative transferred parameters (up + down) per round."""
        return np.array(
            [r.uploaded_params + r.downloaded_params for r in self.records]
        )

    def stale_curve(self) -> np.ndarray:
        """Stale updates folded per round (all zeros without staleness)."""
        return np.array([r.n_stale for r in self.records], dtype=np.int64)

    def departure_curve(self) -> np.ndarray:
        """Departures per round (all zeros without departure events)."""
        return np.array([r.n_departed for r in self.records], dtype=np.int64)

    def quarantine_curve(self) -> np.ndarray:
        """Quarantined updates per round (all zeros without admission
        rejects)."""
        return np.array([r.n_quarantined for r in self.records], dtype=np.int64)

    def rounds_to_accuracy(self, target: float) -> int | None:
        """First 1-based round reaching ``target`` accuracy, or ``None``."""
        for record in self.records:
            if record.mean_local_accuracy >= target:
                return record.round_index
        return None

    def comm_to_accuracy(self, target: float) -> int | None:
        """Transferred params (up+down) when ``target`` was first reached."""
        round_index = self.rounds_to_accuracy(target)
        if round_index is None:
            return None
        reached = next(r for r in self.records if r.round_index == round_index)
        return reached.uploaded_params + reached.downloaded_params

    def to_dict(self) -> dict:
        """JSON-ready summary (used by the experiment drivers)."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "seed": self.seed,
            "n_rounds": self.n_rounds,
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "accuracy_curve": self.accuracy_curve().tolist(),
            "loss_curve": self.loss_curve().tolist(),
            "comm_curve": self.comm_curve().tolist(),
            "n_stale_total": int(self.stale_curve().sum()),
            "n_departed_total": int(self.departure_curve().sum()),
            "n_quarantined_total": int(self.quarantine_curve().sum()),
            "quorum_failed_rounds": [
                r.round_index for r in self.records if r.quorum_failed
            ],
            "evaluated_rounds": [
                r.round_index for r in self.records if r.evaluated
            ],
            "n_aggregation_events": sum(
                1 for r in self.records if r.aggregation_event
            ),
        }
