"""Population-scale client state: wire-dtype stores + tiered aggregation.

Every per-client-state subsystem before this module materialised the
full ``(n_clients, n_params)`` float64 plane, which caps the
reproduction near ~1k clients x 1.6M params.  The store abstraction
splits the population into two tiers:

* the **cohort** — the clients sampled this round — stays on the dense
  float64 fast path (``rows``/``get`` always hand back float64), and
* the **long tail** — everyone else — rests at the *wire dtype*
  (``layout.wire_dtype``, float32 for float32 models), either as one
  dense wire matrix (:class:`DenseStore`) or as lazily materialised,
  optionally memory-mapped shards (:class:`ShardedStore`) so resident
  memory is O(touched clients), not O(population).

Quantisation contract (the bit-identity pin): a row enters the store
through :meth:`StateLayout.round_trip` and is kept at the wire dtype;
``get`` widens back to float64.  Because the wire dtype is the widest
parameter dtype, the round-tripped row embeds losslessly, so

    ``store.get(cid) == layout.round_trip(row)``  (bit for bit)

for *any* float64 input row — exactly what the historical dict path
(``dict(update.state)`` = ``unpack(flat)``) produced.  DenseStore and
ShardedStore therefore agree bit-for-bit with each other and with every
pre-store seed pin, including rows corrupted by float64 noise.

On top of the store sits **tiered (hierarchical) aggregation**
(:func:`tiered_weighted_average`): edge aggregators reduce contiguous
survivor slices with the same single-GEMV kernel as
:func:`repro.fl.aggregation.packed_weighted_average`, and the root
folds the partial sums in ascending edge order — controlled
associativity, so a single edge (``edge_size`` >= cohort, or the
default ``edge_size=0``) is *bit-identical* to the flat GEMV and the
seeded pin suite is untouched in the default configuration.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.fl.aggregation import _normalized_weights
from repro.nn.state_flat import LazyStateView, StateLayout

__all__ = [
    "STORE_KINDS",
    "StoreConfig",
    "ClientStateStore",
    "DenseStore",
    "ShardedStore",
    "make_store",
    "tiered_weighted_average",
]

#: Store kinds accepted by :class:`StoreConfig` and the CLI ``--store``.
STORE_KINDS = ("dense", "sharded")


@dataclass(frozen=True)
class StoreConfig:
    """How an environment keeps per-client state between rounds.

    Parameters
    ----------
    kind:
        ``"dense"`` — one wire-dtype ``(n_clients, n_params)`` matrix
        (the fast path for populations that fit in memory);
        ``"sharded"`` — lazily materialised wire-dtype shards of
        ``shard_size`` clients each, so memory is O(touched clients).
    shard_size:
        Clients per shard (sharded kind only).
    edge_size:
        Survivors per edge aggregator in tiered aggregation; ``0``
        (default) disables tiering and keeps the single-GEMV flat path,
        which the seeded bit-identity pins run on.
    path:
        Optional directory for memory-mapped shards (sharded kind
        only); ``None`` keeps shards in anonymous memory.
    """

    kind: str = "dense"
    shard_size: int = 256
    edge_size: int = 0
    path: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in STORE_KINDS:
            raise ValueError(
                f"unknown store kind {self.kind!r}; choose from {STORE_KINDS}"
            )
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if self.edge_size < 0:
            raise ValueError(f"edge_size must be >= 0, got {self.edge_size}")
        if self.path is not None and self.kind != "sharded":
            raise ValueError("path is only meaningful for the sharded store")

    @property
    def is_default(self) -> bool:
        """True when the config leaves every pinned code path untouched."""
        return self == StoreConfig()

    def describe(self) -> dict:
        """JSON-safe summary for run output and checkpoints."""
        return asdict(self)


class ClientStateStore:
    """Per-client model state, quantised to the wire dtype at rest.

    Subclasses implement the storage (`_read_row` / `_write_row`); the
    base class owns the quantisation contract and the checkpoint /
    restore protocol, including cross-kind restore (a dense checkpoint
    restores into a sharded store and vice versa, preserving sparsity
    where the payload allows it).
    """

    kind: str = "abstract"

    def __init__(self, n_clients: int, layout: StateLayout, base_row: np.ndarray):
        if n_clients < 1:
            raise ValueError(f"need at least one client, got {n_clients}")
        self.n_clients = int(n_clients)
        self.layout = layout
        self.wire_dtype = layout.wire_dtype
        base64 = layout.round_trip(base_row)
        #: Initial (virgin-client) row, float64 and wire-dtype views.
        self._base64 = base64
        self._base_wire = base64.astype(self.wire_dtype)

    # ------------------------------------------------------------------
    # Quantisation contract
    # ------------------------------------------------------------------
    def _quantize(self, row: np.ndarray) -> np.ndarray:
        """Float64 row -> wire-dtype row, exactly as a model would hold it.

        ``round_trip`` rounds each key segment to its parameter dtype;
        the result then embeds losslessly into the wire dtype (the
        widest parameter dtype), so ``_quantize(row).astype(float64)``
        equals ``layout.round_trip(row)`` bit for bit.
        """
        return self.layout.round_trip(row).astype(self.wire_dtype)

    def _check_cid(self, client_id: int) -> int:
        cid = int(client_id)
        if not 0 <= cid < self.n_clients:
            raise IndexError(
                f"client id {cid} out of range [0, {self.n_clients})"
            )
        return cid

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def get(self, client_id: int) -> np.ndarray:
        """Client's state as a fresh float64 row (the cohort fast path)."""
        return self._read_row(self._check_cid(client_id)).astype(np.float64)

    def set(self, client_id: int, row: np.ndarray) -> None:
        """Store a float64 row, quantising through the layout's dtypes."""
        self._write_row(self._check_cid(client_id), self._quantize(row))

    def rows(self, client_ids: Iterable[int]) -> np.ndarray:
        """Stack ``get`` rows into one float64 cohort matrix."""
        ids = [self._check_cid(c) for c in client_ids]
        out = np.empty((len(ids), self.layout.n_params), dtype=np.float64)
        for i, cid in enumerate(ids):
            out[i] = self._read_row(cid)
        return out

    def state_view(self, client_id: int) -> LazyStateView:
        """Mapping view of one client's state (for evaluation paths)."""
        return LazyStateView(self.get(client_id), self.layout)

    # ------------------------------------------------------------------
    # Storage primitives (subclass responsibility)
    # ------------------------------------------------------------------
    def _read_row(self, cid: int) -> np.ndarray:
        raise NotImplementedError

    def _write_row(self, cid: int, wire_row: np.ndarray) -> None:
        raise NotImplementedError

    def resident_bytes(self) -> int:
        """Bytes of client state actually materialised in memory."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint_payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        """(JSON-safe meta, named arrays) for the checkpoint codec."""
        raise NotImplementedError

    def restore_from(self, meta: Mapping, arrays: Mapping[str, np.ndarray]) -> None:
        """Load a checkpoint payload written by *any* store kind.

        Legacy checkpoints (written before the store existed) carry a
        bare ``states`` matrix and no store meta; they restore like a
        dense payload.
        """
        src_kind = meta.get("kind", "dense")
        p = self.layout.n_params
        if src_kind == "dense":
            matrix = np.asarray(arrays["states"])
            if matrix.shape != (self.n_clients, p):
                raise ValueError(
                    f"checkpoint states have shape {matrix.shape}, expected "
                    f"({self.n_clients}, {p})"
                )
            self._restore_dense(matrix.astype(self.wire_dtype, copy=False))
        elif src_kind == "sharded":
            shard_size = int(meta["shard_size"])
            if int(meta.get("n_clients", self.n_clients)) != self.n_clients:
                raise ValueError(
                    "checkpoint population "
                    f"{meta.get('n_clients')} != store population {self.n_clients}"
                )
            base = np.asarray(arrays["base"]).astype(self.wire_dtype, copy=False)
            if base.shape != (p,):
                raise ValueError(
                    f"checkpoint base row has shape {base.shape}, expected ({p},)"
                )
            self._restore_sharded(base, shard_size, meta["shards"], arrays)
        else:  # pragma: no cover - corrupt meta
            raise ValueError(f"unknown store kind in checkpoint: {src_kind!r}")

    def _restore_dense(self, matrix: np.ndarray) -> None:
        """Default cross-kind restore: write rows that differ from base."""
        changed = np.flatnonzero(np.any(matrix != self._base_wire, axis=1))
        for cid in changed:
            self._write_row(int(cid), np.array(matrix[cid], copy=True))

    def _restore_sharded(
        self,
        base: np.ndarray,
        shard_size: int,
        shard_indices: Sequence[int],
        arrays: Mapping[str, np.ndarray],
    ) -> None:
        """Default cross-kind restore: replay shard rows that changed."""
        self._base_wire = base
        self._base64 = base.astype(np.float64)
        for si in shard_indices:
            shard = np.asarray(arrays[f"shard_{int(si)}"]).astype(
                self.wire_dtype, copy=False
            )
            lo = int(si) * shard_size
            for ri in range(shard.shape[0]):
                cid = lo + ri
                if cid >= self.n_clients:
                    break
                if np.any(shard[ri] != base):
                    self._write_row(cid, np.array(shard[ri], copy=True))


class DenseStore(ClientStateStore):
    """One wire-dtype ``(n_clients, n_params)`` matrix.

    The fast path for populations that fit in memory; its checkpoint
    array is byte-identical to the pre-store ``local_only`` payload
    (``np.stack([pack(s) for s in states]).astype(wire)``).
    """

    kind = "dense"

    def __init__(self, n_clients: int, layout: StateLayout, base_row: np.ndarray):
        super().__init__(n_clients, layout, base_row)
        self._matrix = np.broadcast_to(
            self._base_wire, (self.n_clients, layout.n_params)
        ).copy()

    def _read_row(self, cid: int) -> np.ndarray:
        return self._matrix[cid]

    def _write_row(self, cid: int, wire_row: np.ndarray) -> None:
        self._matrix[cid] = wire_row

    def resident_bytes(self) -> int:
        return int(self._matrix.nbytes)

    def checkpoint_payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        meta = {"kind": "dense", "n_clients": self.n_clients}
        return meta, {"states": self._matrix}

    def _restore_dense(self, matrix: np.ndarray) -> None:
        self._matrix[:] = matrix


class ShardedStore(ClientStateStore):
    """Lazily materialised wire-dtype shards of ``shard_size`` clients.

    A shard exists only once one of its clients is written (copy-on-
    write against the shared base row), so resident memory is
    O(touched clients): the long tail of a 100k-client population that
    is never sampled costs nothing beyond the base row.  With ``path``
    set, shards are backed by ``np.lib.format.open_memmap`` files so
    even touched state can page out.
    """

    kind = "sharded"

    def __init__(
        self,
        n_clients: int,
        layout: StateLayout,
        base_row: np.ndarray,
        shard_size: int = 256,
        path: str | None = None,
    ):
        super().__init__(n_clients, layout, base_row)
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.shard_size = int(shard_size)
        self.path = path
        if path is not None:
            os.makedirs(path, exist_ok=True)
        self._shards: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _shard_rows(self, si: int) -> int:
        lo = si * self.shard_size
        return min(self.shard_size, self.n_clients - lo)

    def _materialize_shard(self, si: int) -> np.ndarray:
        shard = self._shards.get(si)
        if shard is None:
            rows = self._shard_rows(si)
            shape = (rows, self.layout.n_params)
            if self.path is not None:
                shard = np.lib.format.open_memmap(
                    os.path.join(self.path, f"shard_{si:06d}.npy"),
                    mode="w+",
                    dtype=self.wire_dtype,
                    shape=shape,
                )
                shard[:] = self._base_wire
            else:
                shard = np.broadcast_to(self._base_wire, shape).copy()
            self._shards[si] = shard
        return shard

    def _read_row(self, cid: int) -> np.ndarray:
        si, ri = divmod(cid, self.shard_size)
        shard = self._shards.get(si)
        if shard is None:
            return self._base_wire
        return shard[ri]

    def _write_row(self, cid: int, wire_row: np.ndarray) -> None:
        si, ri = divmod(cid, self.shard_size)
        self._materialize_shard(si)[ri] = wire_row

    def resident_bytes(self) -> int:
        return int(self._base_wire.nbytes) + sum(
            int(s.nbytes) for s in self._shards.values()
        )

    @property
    def n_resident_shards(self) -> int:
        """Shards actually materialised (touched at least once)."""
        return len(self._shards)

    def checkpoint_payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        meta = {
            "kind": "sharded",
            "shard_size": self.shard_size,
            "n_clients": self.n_clients,
            "shards": sorted(int(si) for si in self._shards),
        }
        arrays: dict[str, np.ndarray] = {"base": self._base_wire}
        for si in meta["shards"]:
            arrays[f"shard_{si}"] = np.asarray(self._shards[si])
        return meta, arrays

    def _restore_sharded(
        self,
        base: np.ndarray,
        shard_size: int,
        shard_indices: Sequence[int],
        arrays: Mapping[str, np.ndarray],
    ) -> None:
        if shard_size == self.shard_size:
            # Same geometry: adopt the payload shards directly, keeping
            # untouched shards unmaterialised.
            self._base_wire = base
            self._base64 = base.astype(np.float64)
            self._shards.clear()
            for si in shard_indices:
                shard = np.asarray(arrays[f"shard_{int(si)}"]).astype(
                    self.wire_dtype, copy=True
                )
                if self.path is not None:
                    target = self._materialize_shard(int(si))
                    target[:] = shard
                else:
                    self._shards[int(si)] = shard
            return
        super()._restore_sharded(base, shard_size, shard_indices, arrays)


def make_store(
    config: StoreConfig,
    n_clients: int,
    layout: StateLayout,
    base_row: np.ndarray,
) -> ClientStateStore:
    """Build the configured store, seeded with ``base_row`` for everyone."""
    if config.kind == "dense":
        return DenseStore(n_clients, layout, base_row)
    return ShardedStore(
        n_clients,
        layout,
        base_row,
        shard_size=config.shard_size,
        path=config.path,
    )


def tiered_weighted_average(
    matrix: np.ndarray,
    weights: Sequence[float],
    edge_size: int,
) -> np.ndarray:
    """Hierarchical FedAvg: edge GEMVs + a root fold, controlled order.

    Survivors are split into contiguous edges of ``edge_size`` rows;
    each edge reduces its slice with the same GEMV kernel as
    :func:`repro.fl.aggregation.packed_weighted_average` (weights
    normalised *globally*, so the partials are already scaled), and the
    root folds the partial sums in ascending edge order.  With a single
    edge (``edge_size <= 0`` or ``edge_size >= n``) the result is
    bit-identical to ``packed_weighted_average(matrix, weights)``:
    one GEMV over the whole cohort, no fold.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"packed cohort must be (n, p), got {matrix.shape}")
    n = matrix.shape[0]
    w = _normalized_weights(weights, n)
    if edge_size <= 0 or n <= edge_size:
        return w @ matrix
    total = None
    for lo in range(0, n, edge_size):
        hi = min(lo + edge_size, n)
        partial = w[lo:hi] @ matrix[lo:hi]
        total = partial if total is None else total + partial
    return total
