"""Training-loop configuration shared by every FL algorithm."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["TrainConfig"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one client's local training pass.

    Attributes
    ----------
    local_epochs:
        Full passes over the client's training split per round (the
        paper's "few local iterations").
    batch_size:
        Minibatch size; clients with fewer samples use one batch.
    lr, momentum, weight_decay:
        Local SGD hyper-parameters.  Momentum buffers are reset every
        round (standard in FedAvg-style simulation: momentum is local
        state that does not survive aggregation).
    max_batches:
        Optional per-epoch batch cap, used by quick-scale benches to
        bound round time on very unbalanced Dirichlet splits.
    max_steps:
        Optional cap on the *total* optimisation steps across all local
        epochs.  FedClust's clustering round uses this to give every
        client the same number of SGD steps regardless of local dataset
        size, so weight-signature distances compare drift *direction*
        rather than drift *magnitude*.
    eval_batch_size:
        Batch size for evaluation-only forward passes.
    """

    local_epochs: int = 1
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    max_batches: int | None = None
    max_steps: int | None = None
    eval_batch_size: int = 512

    def __post_init__(self) -> None:
        check_positive("local_epochs", self.local_epochs)
        check_positive("batch_size", self.batch_size)
        check_positive("lr", self.lr)
        check_non_negative("momentum", self.momentum)
        check_non_negative("weight_decay", self.weight_decay)
        check_positive("eval_batch_size", self.eval_batch_size)
        if self.max_batches is not None:
            check_positive("max_batches", self.max_batches)
        if self.max_steps is not None:
            check_positive("max_steps", self.max_steps)
