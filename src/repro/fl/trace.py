"""Availability traces: replayable per-client presence schedules.

A trace records, per client, the exact set of rounds in which that
client is reachable.  It is the fully-explicit form of the scenario
space: arrivals (present from round ``r`` on), departures (gone from
round ``r`` on) and even individual blackout rounds are all just shapes
of the same ``client_id → available-round-set`` mapping, so a schedule
captured from a real federation — or constructed for a regression test —
replays bit-for-bit through :class:`repro.fl.rounds.ScenarioConfig`.

Semantics
---------
* A client listed in the trace is eligible for participation in exactly
  the rounds of its set and in no others.
* A client *not* listed is always available — traces may be partial, so
  a schedule only needs to name the clients whose availability deviates
  from "always on".
* A trace composes with the other scenario knobs by intersection:
  arrivals/departures further restrict eligibility, the participation
  fraction samples from whoever remains, and failure/straggler draws
  apply to the selected participants.  Unlike a scenario *failure*
  (which charges the download — the client went dark mid-round), a
  trace absence means the client was never contacted: no traffic.

The JSON wire format is versioned and round-trip exact::

    {
      "format": "repro.availability-trace.v1",
      "clients": {"0": [1, 2, 5], "3": [2]}
    }

"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

__all__ = ["TRACE_FORMAT", "AvailabilityTrace"]

#: Format tag written into (and required from) trace JSON files.
TRACE_FORMAT = "repro.availability-trace.v1"


class AvailabilityTrace:
    """Immutable ``client_id → available-round-set`` schedule.

    Parameters
    ----------
    rounds_by_client:
        Mapping from client id to an iterable of 1-based round indices
        in which that client is available.  Ids and rounds must be
        non-negative/positive integers respectively; an empty round set
        is allowed (a client that never shows up).
    """

    __slots__ = ("_rounds",)

    def __init__(self, rounds_by_client: Mapping[int, Iterable[int]]) -> None:
        rounds: dict[int, frozenset[int]] = {}
        for raw_cid, raw_rounds in rounds_by_client.items():
            cid = int(raw_cid)
            if cid < 0:
                raise ValueError(f"trace client ids must be >= 0, got {raw_cid!r}")
            round_set = frozenset(int(r) for r in raw_rounds)
            bad = sorted(r for r in round_set if r < 1)
            if bad:
                raise ValueError(
                    f"trace rounds must be >= 1, client {cid} lists {bad}"
                )
            rounds[cid] = round_set
        self._rounds = rounds

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def clients(self) -> frozenset[int]:
        """Client ids the trace constrains (unlisted ids are always on)."""
        return frozenset(self._rounds)

    @property
    def max_round(self) -> int:
        """Largest round mentioned anywhere in the trace (0 if none)."""
        return max((max(s) for s in self._rounds.values() if s), default=0)

    def rounds_for(self, client_id: int) -> frozenset[int] | None:
        """The client's available-round set, or ``None`` if unlisted."""
        return self._rounds.get(int(client_id))

    def available(self, client_id: int, round_index: int) -> bool:
        """Is ``client_id`` reachable in ``round_index``?

        Clients the trace does not mention are always available.
        """
        listed = self._rounds.get(int(client_id))
        return True if listed is None else int(round_index) in listed

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        n_clients: int,
        n_rounds: int,
        arrivals: Mapping[int, int] | None = None,
        departures: Mapping[int, int] | None = None,
        blackouts: Mapping[int, Iterable[int]] | None = None,
    ) -> "AvailabilityTrace":
        """Materialise an event-style schedule into an explicit trace.

        The subsumption constructor: arrivals (present from round ``r``),
        departures (gone from round ``r`` on) and per-client blackout
        rounds (e.g. recorded failure rounds) collapse into one explicit
        ``client → round-set`` mapping over ``1..n_rounds``.  The result
        lists **every** client, so replaying it pins the full schedule
        even if the original event dicts are lost.
        """
        if n_clients < 1 or n_rounds < 1:
            raise ValueError("from_events needs n_clients >= 1 and n_rounds >= 1")
        arrivals = arrivals or {}
        departures = departures or {}
        blackouts = blackouts or {}
        rounds: dict[int, set[int]] = {}
        for cid in range(n_clients):
            first = int(arrivals.get(cid, 1))
            last = int(departures.get(cid, n_rounds + 1)) - 1
            dark = {int(r) for r in blackouts.get(cid, ())}
            rounds[cid] = {
                r for r in range(first, min(last, n_rounds) + 1) if r not in dark
            }
        return cls(rounds)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict (sorted, so serialisation is deterministic)."""
        return {
            "format": TRACE_FORMAT,
            "clients": {
                str(cid): sorted(self._rounds[cid]) for cid in sorted(self._rounds)
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AvailabilityTrace":
        """Inverse of :meth:`to_dict`; validates the format tag."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"trace payload must be a mapping, got {type(payload)}")
        fmt = payload.get("format", TRACE_FORMAT)
        if fmt != TRACE_FORMAT:
            raise ValueError(
                f"unsupported trace format {fmt!r}; expected {TRACE_FORMAT!r}"
            )
        clients = payload.get("clients")
        if not isinstance(clients, Mapping):
            raise ValueError("trace payload needs a 'clients' mapping")
        return cls(clients)

    def save(self, path) -> Path:
        """Write the trace as JSON; returns the resolved path."""
        target = Path(path)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target

    @classmethod
    def load(cls, path) -> "AvailabilityTrace":
        """Read a trace JSON file written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AvailabilityTrace):
            return NotImplemented
        return self._rounds == other._rounds

    def __hash__(self) -> int:
        return hash(frozenset(self._rounds.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AvailabilityTrace({len(self._rounds)} listed clients, "
            f"max_round={self.max_round})"
        )
