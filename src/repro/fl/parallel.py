"""Parallel client execution.

Within a round, client updates are embarrassingly parallel: each client
trains its own model copy on its own data.  The executors here exploit
that on multi-core hosts while guaranteeing **bit-identical results to
the serial path** — every (round, client) pair derives its RNG stream
statelessly via :func:`repro.utils.rng.rng_for`, so execution order and
worker count cannot change the outcome.

Three executors:

* :class:`SerialClientExecutor` — the default; zero overhead, easiest to
  debug.
* :class:`ThreadClientExecutor` — threads share the process; NumPy's BLAS
  kernels release the GIL, so medium/large batches see real speedups.
  Each thread owns a private scratch model (models cache forward state,
  so sharing one across threads would race).
* :class:`ProcessClientExecutor` — fork-based process pool for maximum
  isolation; worker processes rebuild the environment once via an
  initializer, and per-task traffic is just (state in, state out).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.fl.client import ClientUpdate, run_client_update
from repro.utils.rng import rng_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.simulation import FederatedEnv

__all__ = [
    "UpdateTask",
    "SerialClientExecutor",
    "ThreadClientExecutor",
    "ProcessClientExecutor",
    "make_executor",
]


@dataclass
class UpdateTask:
    """One client's work order for a round."""

    client_id: int
    state: Mapping[str, np.ndarray]
    prox_mu: float = 0.0


class SerialClientExecutor:
    """Run updates one by one on the environment's scratch model."""

    def run(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        return [
            run_client_update(
                env.scratch_model,
                task.client_id,
                env.federation.clients[task.client_id].train,
                dict(task.state),
                env.train_cfg,
                rng_for(env.seed, 1, round_index, task.client_id),
                prox_mu=task.prox_mu,
            )
            for task in tasks
        ]

    def close(self) -> None:
        """No resources to release."""


class ThreadClientExecutor:
    """Thread pool with one private scratch model per worker thread."""

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers if n_workers is not None else min(8, os.cpu_count() or 1)
        self._local = threading.local()
        self._pool: ThreadPoolExecutor | None = None

    def _model_for_thread(self, env: "FederatedEnv"):
        model = getattr(self._local, "model", None)
        if model is None:
            model = env.make_model()
            self._local.model = model
        return model

    def run(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-client"
            )

        def work(task: UpdateTask) -> ClientUpdate:
            model = self._model_for_thread(env)
            return run_client_update(
                model,
                task.client_id,
                env.federation.clients[task.client_id].train,
                dict(task.state),
                env.train_cfg,
                rng_for(env.seed, 1, round_index, task.client_id),
                prox_mu=task.prox_mu,
            )

        return list(self._pool.map(work, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# Process pool: module-level worker state, installed by the initializer.
# ----------------------------------------------------------------------
_WORKER_ENV: "FederatedEnv | None" = None


def _process_worker_init(env: "FederatedEnv") -> None:
    global _WORKER_ENV
    _WORKER_ENV = env


def _process_worker_run(
    args: tuple[int, dict[str, np.ndarray], float, int],
) -> ClientUpdate:
    client_id, state, prox_mu, round_index = args
    env = _WORKER_ENV
    assert env is not None, "worker initializer did not run"
    return run_client_update(
        env.scratch_model,
        client_id,
        env.federation.clients[client_id].train,
        state,
        env.train_cfg,
        rng_for(env.seed, 1, round_index, client_id),
        prox_mu=prox_mu,
    )


class ProcessClientExecutor:
    """Fork-based process pool; workers hold a full environment copy.

    The pool is created lazily on first use (so the environment is fully
    constructed when pickled to workers) and must be :meth:`close`-d, or
    used via the environment's context manager.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers if n_workers is not None else min(8, os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self, env: "FederatedEnv") -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing as mp

            context = mp.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=context,
                initializer=_process_worker_init,
                initargs=(env,),
            )
        return self._pool

    def run(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        pool = self._ensure_pool(env)
        payload = [
            (task.client_id, dict(task.state), task.prox_mu, round_index)
            for task in tasks
        ]
        return list(pool.map(_process_worker_run, payload))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_EXECUTORS = {
    "serial": SerialClientExecutor,
    "thread": ThreadClientExecutor,
    "process": ProcessClientExecutor,
}


def make_executor(kind: str, n_workers: int | None = None):
    """Factory: ``"serial"``, ``"thread"`` or ``"process"``."""
    if kind not in _EXECUTORS:
        raise ValueError(f"unknown executor {kind!r}; options: {sorted(_EXECUTORS)}")
    if kind == "serial":
        return SerialClientExecutor()
    return _EXECUTORS[kind](n_workers)
