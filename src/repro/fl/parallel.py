"""Parallel client execution over the flat transport.

Within a round, client updates are embarrassingly parallel: each client
trains its own model copy on its own data.  The executors here exploit
that on multi-core hosts while guaranteeing **bit-identical results to
the serial path** — every (round, client) pair derives its RNG stream
statelessly via :func:`repro.utils.rng.rng_for`, so execution order and
worker count cannot change the outcome.

All three executors move model states as *packed vectors* (see
:mod:`repro.nn.state_flat`): the broadcast state is packed once per
round (not once per client — broadcast tasks share one state object),
each worker trains via :func:`repro.fl.client.run_client_update_flat`,
and every returned :class:`ClientUpdate` carries its ``flat`` vector so
the server can aggregate with a single GEMV without repacking.  Packing
is exact, so the flat transport changes no numbers.

Three executors:

* :class:`SerialClientExecutor` — the default; zero overhead, easiest to
  debug.
* :class:`ThreadClientExecutor` — threads share the process; NumPy's BLAS
  kernels release the GIL, so medium/large batches see real speedups.
  Each thread owns a private scratch model (models cache forward state,
  so sharing one across threads would race).
* :class:`ProcessClientExecutor` — fork-based process pool for maximum
  isolation; worker processes rebuild the environment once via an
  initializer, and per-task IPC is one contiguous buffer each way
  (encoded at the layout's wire dtype — float32 for float32 models,
  half the bytes of the former pickled-dict payload) instead of a
  pickled dict of arrays.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.fl.client import ClientUpdate, run_client_update_flat
from repro.fl.communication import decode_flat_payload, encode_flat_payload
from repro.nn.state_flat import LazyStateView
from repro.utils.rng import rng_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.simulation import FederatedEnv

__all__ = [
    "UpdateTask",
    "InFlightBuffer",
    "SerialClientExecutor",
    "ThreadClientExecutor",
    "ProcessClientExecutor",
    "BatchedClientExecutor",
    "make_executor",
]


@dataclass
class UpdateTask:
    """One client's work order for a round.

    ``state`` may be shared across tasks (the broadcast case); executors
    pack each distinct state object once.  ``flat`` short-circuits that
    packing when the caller already holds the packed vector — flat-plane
    algorithms pass only ``flat`` and leave ``state`` as ``None``.

    ``max_steps`` caps this client's local SGD at that many total steps
    (``None`` = the training config's own schedule).  The round engine's
    compute-budget middleware stamps it per (round, client); every
    executor honours it identically — the batched executor via the
    cohort planner's per-client step masks, the others by tightening the
    training config.  A cap of ``0`` means the client does no local work
    and returns the broadcast state unchanged (``n_batches == 0``).
    """

    client_id: int
    state: Mapping[str, np.ndarray] | None = None
    prox_mu: float = 0.0
    flat: np.ndarray | None = None
    max_steps: int | None = None

    def __post_init__(self) -> None:
        if self.state is None and self.flat is None:
            raise ValueError(
                f"task for client {self.client_id} needs a state dict or a "
                "packed flat vector"
            )
        if self.max_steps is not None and self.max_steps < 0:
            raise ValueError(
                f"task for client {self.client_id}: max_steps must be >= 0, "
                f"got {self.max_steps}"
            )


class InFlightBuffer:
    """Dispatched-but-undelivered client work, keyed by delivery round.

    The async round engine's in-flight ledger.  Results are computed
    eagerly at dispatch (every executor already guarantees (round,
    client)-seeded bit-identical updates, so *when* the work runs cannot
    change *what* it produces) and held here until their seeded training
    duration elapses; :meth:`collect_due` then releases them in
    deterministic dispatch order — (dispatch round, dispatch position) —
    regardless of executor kind or duration interleaving.
    """

    def __init__(self) -> None:
        # (delivery round, dispatch sequence, dispatch round, update)
        self._pending: list[tuple[int, int, int, ClientUpdate]] = []
        self._seq = 0

    def add(
        self,
        updates: Sequence[ClientUpdate],
        dispatch_round: int,
        completes_at: Sequence[int],
    ) -> None:
        """Record freshly-dispatched updates and their delivery rounds."""
        if len(updates) != len(completes_at):
            raise ValueError(
                f"{len(updates)} updates but {len(completes_at)} delivery rounds"
            )
        for update, done in zip(updates, completes_at):
            if int(done) < int(dispatch_round):
                raise ValueError(
                    f"client {update.client_id} would deliver in round {done}, "
                    f"before its dispatch round {dispatch_round}"
                )
            self._pending.append(
                (int(done), self._seq, int(dispatch_round), update)
            )
            self._seq += 1

    def collect_due(
        self, round_index: int
    ) -> list[tuple[int, ClientUpdate]]:
        """Release every update whose delivery round has come.

        Returns ``(dispatch_round, update)`` pairs sorted by dispatch
        order, so the server's buffer fills identically however the
        durations interleave.
        """
        due = [entry for entry in self._pending if entry[0] <= round_index]
        if due:
            self._pending = [
                entry for entry in self._pending if entry[0] > round_index
            ]
            due.sort(key=lambda entry: entry[1])
        return [(dispatch_round, update) for _, _, dispatch_round, update in due]

    @property
    def client_ids(self) -> frozenset[int]:
        """Clients currently mid-training (never re-dispatched)."""
        return frozenset(update.client_id for *_, update in self._pending)

    def snapshot(self) -> list[tuple[int, int, int, ClientUpdate]]:
        """The pending entries, for checkpoint serialisation.

        Each entry is ``(delivery round, dispatch sequence, dispatch
        round, update)`` in insertion order.  Pair with
        :attr:`next_seq` — the sequence counter must survive a restore,
        or post-resume dispatches would collide with buffered ones and
        break the deterministic delivery order.
        """
        return list(self._pending)

    @property
    def next_seq(self) -> int:
        """The sequence number the next dispatched update will get."""
        return self._seq

    def restore(
        self,
        entries: Sequence[tuple[int, int, int, ClientUpdate]],
        next_seq: int,
    ) -> None:
        """Inverse of :meth:`snapshot` (checkpoint resume)."""
        entries = [
            (int(done), int(seq), int(dispatch_round), update)
            for done, seq, dispatch_round, update in entries
        ]
        next_seq = int(next_seq)
        top = max((seq for _, seq, _, _ in entries), default=-1)
        if next_seq <= top:
            raise ValueError(
                f"next_seq {next_seq} collides with a restored entry "
                f"(highest buffered sequence: {top})"
            )
        self._pending = entries
        self._seq = next_seq

    def __len__(self) -> int:
        return len(self._pending)


def _pack_tasks(
    env: "FederatedEnv", tasks: Sequence[UpdateTask]
) -> list[np.ndarray]:
    """Packed incoming vector per task, packing shared states only once."""
    memo: dict[int, np.ndarray] = {}
    vectors = []
    for task in tasks:
        # Memoised by payload object id either way: shared states pack
        # once, and a shared non-float64 ``flat`` converts once — the
        # batched executor's cohort grouping relies on the conversion
        # preserving object sharing.
        if task.flat is not None:
            key = id(task.flat)
            vec = memo.get(key)
            if vec is None:
                vec = np.asarray(task.flat, dtype=np.float64)
                memo[key] = vec
            vectors.append(vec)
            continue
        key = id(task.state)
        vec = memo.get(key)
        if vec is None:
            vec = env.layout.pack(task.state)
            memo[key] = vec
        vectors.append(vec)
    return vectors


def _budgeted_cfg(cfg, max_steps: int | None):
    """The training config with a task-level step budget folded in.

    ``None`` (no budget) and caps at or above the config's own
    ``max_steps`` leave the config object untouched, so the default path
    never copies.  Callers must handle ``max_steps == 0`` themselves
    (``TrainConfig`` requires positive step counts — a zero-step round
    is "skip training", not a degenerate schedule).
    """
    if max_steps is None:
        return cfg
    if cfg.max_steps is not None and cfg.max_steps <= max_steps:
        return cfg
    import dataclasses

    return dataclasses.replace(cfg, max_steps=max_steps)


def _zero_budget_update(
    env: "FederatedEnv", task: UpdateTask, vector: np.ndarray
) -> ClientUpdate:
    """The update of a client whose compute budget was zero steps.

    Bit-identical to what any executor would produce for "load the
    broadcast, take no step, snapshot": the state is the broadcast
    rounded through the parameter dtypes (``layout.round_trip``), the
    loss is 0 over 0 batches.
    """
    flat = env.layout.round_trip(vector)
    return ClientUpdate(
        client_id=task.client_id,
        state=LazyStateView(flat, env.layout),
        n_samples=len(env.federation.clients[task.client_id].train),
        mean_loss=0.0,
        n_batches=0,
        flat=flat,
    )


def _run_flat(
    env: "FederatedEnv",
    model,
    task: UpdateTask,
    vector: np.ndarray,
    round_index: int,
) -> ClientUpdate:
    if task.max_steps == 0:
        return _zero_budget_update(env, task, vector)
    return run_client_update_flat(
        model,
        task.client_id,
        env.federation.clients[task.client_id].train,
        vector,
        env.layout,
        _budgeted_cfg(env.train_cfg, task.max_steps),
        rng_for(env.seed, 1, round_index, task.client_id),
        prox_mu=task.prox_mu,
    )


class SerialClientExecutor:
    """Run updates one by one on the environment's scratch model."""

    def run(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        vectors = _pack_tasks(env, tasks)
        return [
            _run_flat(env, env.scratch_model, task, vec, round_index)
            for task, vec in zip(tasks, vectors)
        ]

    def close(self) -> None:
        """No resources to release."""


class ThreadClientExecutor:
    """Thread pool with one private scratch model per worker thread."""

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers if n_workers is not None else min(8, os.cpu_count() or 1)
        self._local = threading.local()
        self._pool: ThreadPoolExecutor | None = None

    def _model_for_thread(self, env: "FederatedEnv"):
        model = getattr(self._local, "model", None)
        if model is None:
            model = env.make_model()
            self._local.model = model
        return model

    def run(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-client"
            )
        vectors = _pack_tasks(env, tasks)

        def work(pair: tuple[UpdateTask, np.ndarray]) -> ClientUpdate:
            task, vec = pair
            model = self._model_for_thread(env)
            return _run_flat(env, model, task, vec, round_index)

        return list(self._pool.map(work, zip(tasks, vectors)))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# Process pool: module-level worker state, installed by the initializer.
# ----------------------------------------------------------------------
_WORKER_ENV: "FederatedEnv | None" = None


def _process_worker_init(env: "FederatedEnv") -> None:
    global _WORKER_ENV
    _WORKER_ENV = env


def _process_worker_run(
    args: tuple[int, bytes, float, int, object, int | None],
) -> tuple[int, bytes, int, float, int]:
    """One task in a worker: decode → train → encode.

    The payload each way is the wire-encoded flat vector plus scalars —
    no state dicts cross the process boundary.  The active training
    config rides along with the task: the worker's forked environment is
    a snapshot from pool creation, so trusting ``env.train_cfg`` would
    miss parent-side overrides (e.g. FedClust's warm-up config, which is
    swapped in only for the clustering round — forking mid-round used to
    freeze it into the workers for every later round).  The per-task
    step budget rides along the same way.
    """
    client_id, payload, prox_mu, round_index, train_cfg, max_steps = args
    env = _WORKER_ENV
    assert env is not None, "worker initializer did not run"
    vector = decode_flat_payload(payload, env.layout)
    if max_steps == 0:
        flat = env.layout.round_trip(vector)
        return (
            client_id,
            encode_flat_payload(flat, env.layout),
            len(env.federation.clients[client_id].train),
            0.0,
            0,
        )
    update = run_client_update_flat(
        env.scratch_model,
        client_id,
        env.federation.clients[client_id].train,
        vector,
        env.layout,
        _budgeted_cfg(train_cfg, max_steps),
        rng_for(env.seed, 1, round_index, client_id),
        prox_mu=prox_mu,
    )
    return (
        update.client_id,
        encode_flat_payload(update.flat, env.layout),
        update.n_samples,
        update.mean_loss,
        update.n_batches,
    )


class ProcessClientExecutor:
    """Fork-based process pool; workers hold a full environment copy.

    The pool is created lazily on first use (so the environment is fully
    constructed when pickled to workers) and must be :meth:`close`-d, or
    used via the environment's context manager.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers if n_workers is not None else min(8, os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self, env: "FederatedEnv") -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing as mp

            context = mp.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=context,
                initializer=_process_worker_init,
                initargs=(env,),
            )
        return self._pool

    def run(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        pool = self._ensure_pool(env)
        vectors = _pack_tasks(env, tasks)
        # Broadcast tasks share one packed vector; encode each distinct
        # vector once (mirrors _pack_tasks's memo).
        encoded: dict[int, bytes] = {}
        payload = []
        for task, vec in zip(tasks, vectors):
            buf = encoded.get(id(vec))
            if buf is None:
                buf = encode_flat_payload(vec, env.layout)
                encoded[id(vec)] = buf
            payload.append(
                (
                    task.client_id,
                    buf,
                    task.prox_mu,
                    round_index,
                    env.train_cfg,
                    task.max_steps,
                )
            )
        updates = []
        for client_id, buf, n_samples, mean_loss, n_batches in pool.map(
            _process_worker_run, payload
        ):
            flat = decode_flat_payload(buf, env.layout)
            updates.append(
                ClientUpdate(
                    client_id=client_id,
                    state=LazyStateView(flat, env.layout),
                    n_samples=n_samples,
                    mean_loss=mean_loss,
                    n_batches=n_batches,
                    flat=flat,
                )
            )
        return updates

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class BatchedClientExecutor:
    """Train whole cohorts in lockstep on the flat plane.

    Tasks are grouped by their broadcast state (the packed-vector object,
    mirroring ``_pack_tasks``'s sharing memo) and proximal coefficient;
    each group is one cohort for
    :func:`repro.fl.train_flat.train_cohort_flat`, which runs the
    cohort's local SGD with a leading client axis — same ``rng_for``
    streams and minibatch composition as the serial path, updates equal
    to float summation order (the parity suite gates it).

    Architectures without a batched mirror (convolutional models) fall
    back **per task** to the serial reference kernel transparently;
    :attr:`last_dispatch` records the split so benchmarks can report the
    fallback honestly.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        # n_workers accepted for factory symmetry; lockstep batching is
        # single-process by construction.
        self.n_workers = n_workers
        #: ("batched", n_tasks) / ("serial", n_tasks) counts of the most
        #: recent run — the conv-fallback visibility hook.
        self.last_dispatch: dict[str, int] = {}
        # Round-to-round gather buffers (see train_cohort_flat): the
        # per-round factor slab is first-touch-faulted once per shape,
        # not once per round.
        self._gather_cache: dict = {}

    def run(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        from repro.fl.train_flat import supports_batched, train_cohort_flat

        vectors = _pack_tasks(env, tasks)
        batchable = supports_batched(env.scratch_model)
        self.last_dispatch = {"batched": 0, "serial": 0}
        results: dict[int, ClientUpdate] = {}
        if not batchable:
            self.last_dispatch["serial"] = len(tasks)
            return [
                _run_flat(env, env.scratch_model, task, vec, round_index)
                for task, vec in zip(tasks, vectors)
            ]
        # Cohorts: tasks sharing a broadcast vector and prox_mu train as
        # one lockstep group (a group of one is still batched — results
        # must not depend on how callers happen to share state objects).
        groups: dict[tuple[int, float], list[int]] = {}
        for i, (task, vec) in enumerate(zip(tasks, vectors)):
            groups.setdefault((id(vec), task.prox_mu), []).append(i)
        for (_, prox_mu), members in groups.items():
            updates = train_cohort_flat(
                env,
                [tasks[i].client_id for i in members],
                vectors[members[0]],
                round_index,
                prox_mu=prox_mu,
                max_steps=[tasks[i].max_steps for i in members],
                gather_cache=self._gather_cache,
            )
            self.last_dispatch["batched"] += len(members)
            for i, update in zip(members, updates):
                results[i] = update
        return [results[i] for i in range(len(tasks))]

    def close(self) -> None:
        """Release the cached gather buffers."""
        self._gather_cache.clear()


_EXECUTORS = {
    "serial": SerialClientExecutor,
    "thread": ThreadClientExecutor,
    "process": ProcessClientExecutor,
    "batched": BatchedClientExecutor,
}


def make_executor(kind: str, n_workers: int | None = None):
    """Factory: ``"serial"``, ``"thread"``, ``"process"`` or ``"batched"``."""
    if kind not in _EXECUTORS:
        raise ValueError(f"unknown executor {kind!r}; options: {sorted(_EXECUTORS)}")
    if kind == "serial":
        return SerialClientExecutor()
    return _EXECUTORS[kind](n_workers)
