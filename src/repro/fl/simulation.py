"""Federated environment: the shared machinery every algorithm drives.

A :class:`FederatedEnv` binds together a federation (the data side), a
model architecture, a training configuration, a communication tracker,
and a client executor.  Algorithms (in :mod:`repro.algorithms` and
:mod:`repro.core`) are strategy objects that call into the environment:

* :meth:`FederatedEnv.init_state` — the initial global model,
* :meth:`FederatedEnv.run_updates` — dispatch local training for a set of
  (client, incoming-state) pairs through the configured executor,
* :meth:`FederatedEnv.evaluate_assignment` /
  :meth:`FederatedEnv.evaluate_packed` /
  :meth:`FederatedEnv.mean_local_accuracy` — the Table-I metric.

Evaluation runs on the fused path (:mod:`repro.fl.eval_flat`): clients
are grouped by the model that serves them, each distinct model is loaded
once, and the group's test splits share forward batches.
:meth:`FederatedEnv.mean_local_accuracy` keeps the per-client dict-list
signature as a compatibility view — it deduplicates the list by object
identity and routes through the same fused kernels, with per-client
accuracies bit-identical to the serial reference loop
(:func:`repro.fl.evaluation.mean_local_accuracy`).

Everything stochastic derives from the environment seed via stateless
:func:`repro.utils.rng.rng_for` keys, so any algorithm run on an
environment is reproducible regardless of executor kind.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.federation import Federation
from repro.fl.client import ClientUpdate
from repro.fl.communication import CommunicationTracker
from repro.fl.config import TrainConfig
from repro.fl.eval_flat import (
    evaluate_grouped,
    evaluate_packed,
    mean_local_accuracy_grouped,
)
from repro.fl.evaluation import evaluate_model
from repro.fl.parallel import SerialClientExecutor, UpdateTask, make_executor
from repro.fl.store import ClientStateStore, StoreConfig, make_store
from repro.nn.models import build_model, final_linear_name
from repro.nn.module import Sequential
from repro.nn.state_flat import StateLayout
from repro.utils.rng import rng_for

__all__ = ["FederatedEnv"]

_MODEL_INIT_TAG = 0  # rng_for namespace tags; 1 = client updates (parallel.py)
_SERVER_TAG = 2


class FederatedEnv:
    """Execution context for federated algorithms.

    Parameters
    ----------
    federation:
        Per-client datasets (see :func:`repro.data.build_federation`).
    model_name, model_kwargs:
        Architecture from :func:`repro.nn.build_model`; LeNet-5 is the
        paper's Table-I model.
    train_cfg:
        Local-training hyper-parameters.
    seed:
        Master seed; model init, client streams and server randomness all
        derive from it independently.
    executor:
        Client executor, or an executor kind name for
        :func:`repro.fl.parallel.make_executor` (``"serial"`` default;
        ``"thread"``/``"process"`` for multi-core, ``"batched"`` for
        lockstep cohort training on the flat plane).
    tracker:
        Communication tracker (new one by default).
    store:
        Client-state store policy (see :mod:`repro.fl.store`): a
        :class:`~repro.fl.store.StoreConfig`, a kind name (``"dense"``
        / ``"sharded"``), or ``None`` for the default dense config —
        the configuration every seeded bit-identity pin runs on.
        Algorithms that keep per-client state (``local_only``) build
        their store via :meth:`make_store`.
    """

    def __init__(
        self,
        federation: Federation,
        model_name: str = "lenet5",
        model_kwargs: dict | None = None,
        train_cfg: TrainConfig | None = None,
        seed: int = 0,
        executor=None,
        tracker: CommunicationTracker | None = None,
        store: "StoreConfig | str | None" = None,
    ) -> None:
        self.federation = federation
        self.model_name = model_name
        self.model_kwargs = dict(model_kwargs or {})
        self.train_cfg = train_cfg or TrainConfig()
        self.seed = int(seed)
        if isinstance(executor, str):
            executor = make_executor(executor)
        self.executor = executor or SerialClientExecutor()
        self.tracker = tracker or CommunicationTracker()
        if isinstance(store, str):
            store = StoreConfig(kind=store)
        self.store_config = store or StoreConfig()
        self.scratch_model = self.make_model()
        self._init_state = self.scratch_model.state_dict(copy=True)
        #: Flat-plane layout shared by executors, aggregation and
        #: clustering for this architecture (see repro.nn.state_flat).
        self.layout = StateLayout.from_state(self._init_state)
        self.n_params = self.scratch_model.num_parameters()
        self.final_layer = final_linear_name(self.scratch_model)
        self.final_layer_keys = [
            name
            for name, _ in self.scratch_model.named_parameters()
            if name.startswith(self.final_layer + ".")
        ]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def make_model(self) -> Sequential:
        """Fresh model with the environment's deterministic init weights."""
        return build_model(
            self.model_name,
            self.federation.input_shape,
            self.federation.n_classes,
            rng_for(self.seed, _MODEL_INIT_TAG),
            **self.model_kwargs,
        )

    def init_state(self) -> dict[str, np.ndarray]:
        """Copy of the initial global model state."""
        return {k: v.copy() for k, v in self._init_state.items()}

    def make_store(self) -> ClientStateStore:
        """Per-client state store under this environment's config.

        Every client starts at the initial global model; the store keeps
        rows at the layout's wire dtype (see :mod:`repro.fl.store`), so
        ``get`` returns exactly what the historical dict path held after
        an unpack — the default dense config is bit-identical to the
        pre-store per-client state lists.
        """
        return make_store(
            self.store_config,
            self.federation.n_clients,
            self.layout,
            self.layout.pack(self._init_state),
        )

    def server_rng(self, round_index: int) -> np.random.Generator:
        """Server-side randomness for a round (client sampling etc.)."""
        return rng_for(self.seed, _SERVER_TAG, round_index)

    # ------------------------------------------------------------------
    # Client work
    # ------------------------------------------------------------------
    def run_updates(
        self, tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        """Execute local training for ``tasks`` via the executor."""
        if not tasks:
            return []
        ids = [t.client_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate client ids in round {round_index}: {ids}")
        bad = [i for i in ids if not 0 <= i < self.federation.n_clients]
        if bad:
            raise ValueError(f"client ids out of range: {bad}")
        return self.executor.run(self, tasks, round_index)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_state(
        self, state: Mapping[str, np.ndarray], client_id: int
    ) -> float:
        """Accuracy of ``state`` on one client's local test split."""
        self.scratch_model.load_state_dict(dict(state))
        return evaluate_model(
            self.scratch_model,
            self.federation.clients[client_id].test,
            batch_size=self.train_cfg.eval_batch_size,
        ).accuracy

    def mean_local_accuracy(
        self, states_per_client: Sequence[Mapping[str, np.ndarray]]
    ) -> tuple[float, np.ndarray]:
        """Table-I metric: mean over clients of local-test accuracy.

        Compatibility view over the fused path: the per-client list is
        deduplicated by object identity, each distinct state is loaded
        once, and clients sharing a state share forward batches.
        Accuracies are bit-identical to the serial per-client loop.
        """
        testsets = [c.test for c in self.federation.clients]
        return mean_local_accuracy_grouped(
            self.scratch_model,
            states_per_client,
            testsets,
            batch_size=self.train_cfg.eval_batch_size,
        )

    def evaluate_assignment(
        self,
        cluster_states: Sequence[Mapping[str, np.ndarray]],
        labels: np.ndarray,
    ) -> tuple[float, np.ndarray]:
        """Table-I metric when client ``i`` is served
        ``cluster_states[labels[i]]`` — one load per cluster, fused
        forwards per cluster cohort."""
        testsets = [c.test for c in self.federation.clients]
        return evaluate_grouped(
            self.scratch_model,
            cluster_states,
            labels,
            testsets,
            batch_size=self.train_cfg.eval_batch_size,
        )

    def evaluate_packed(
        self, matrix: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Table-I metric straight from packed rows: ``matrix[labels[i]]``
        (on this environment's layout) serves client ``i``; no state
        dicts are materialised."""
        return evaluate_packed(self, matrix, labels)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release executor resources (thread/process pools)."""
        self.executor.close()

    def __enter__(self) -> "FederatedEnv":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
