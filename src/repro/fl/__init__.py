"""Federated-learning simulation substrate."""

from repro.fl.aggregation import (
    packed_weighted_average,
    uniform_average,
    weighted_average,
    weighted_average_dict,
)
from repro.fl.client import (
    ClientUpdate,
    local_train,
    run_client_update,
    run_client_update_flat,
)
from repro.fl.communication import (
    BYTES_PER_PARAM,
    CommunicationTracker,
    decode_flat_payload,
    encode_flat_payload,
    flat_payload_nbytes,
    params_in_keys,
    params_in_layout,
    params_in_state,
)
from repro.fl.config import TrainConfig
from repro.fl.defense import (
    CORRUPTION_KINDS,
    ROBUST_AGG_MODES,
    CheckpointConfig,
    CheckpointError,
    CorruptionConfig,
    admit_updates,
    load_checkpoint,
    maybe_corrupt,
    robust_weighted_average,
    save_checkpoint,
)
from repro.fl.eval_flat import (
    CohortEval,
    evaluate_grouped,
    evaluate_packed,
    fused_evaluate,
    group_by_identity,
    mean_local_accuracy_grouped,
)
from repro.fl.evaluation import EvalResult, evaluate_model, mean_local_accuracy
from repro.fl.failures import FaultyExecutor
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.parallel import (
    BatchedClientExecutor,
    ProcessClientExecutor,
    SerialClientExecutor,
    ThreadClientExecutor,
    UpdateTask,
    make_executor,
)
from repro.fl.rounds import (
    AsyncConfig,
    RoundEngine,
    RoundOutcome,
    RoundStrategy,
    ScenarioConfig,
    aggregation_weights,
)
from repro.fl.sampling import full_participation, sample_from, uniform_sample
from repro.fl.trace import AvailabilityTrace
from repro.fl.simulation import FederatedEnv
from repro.fl.train_flat import plan_cohort_schedule, supports_batched, train_cohort_flat

__all__ = [
    "packed_weighted_average",
    "uniform_average",
    "weighted_average",
    "weighted_average_dict",
    "ClientUpdate",
    "local_train",
    "run_client_update",
    "run_client_update_flat",
    "BYTES_PER_PARAM",
    "CommunicationTracker",
    "decode_flat_payload",
    "encode_flat_payload",
    "flat_payload_nbytes",
    "params_in_keys",
    "params_in_layout",
    "params_in_state",
    "TrainConfig",
    "CORRUPTION_KINDS",
    "ROBUST_AGG_MODES",
    "CheckpointConfig",
    "CheckpointError",
    "CorruptionConfig",
    "admit_updates",
    "load_checkpoint",
    "maybe_corrupt",
    "robust_weighted_average",
    "save_checkpoint",
    "CohortEval",
    "evaluate_grouped",
    "evaluate_packed",
    "fused_evaluate",
    "group_by_identity",
    "mean_local_accuracy_grouped",
    "EvalResult",
    "evaluate_model",
    "mean_local_accuracy",
    "FaultyExecutor",
    "RoundRecord",
    "RunHistory",
    "BatchedClientExecutor",
    "ProcessClientExecutor",
    "SerialClientExecutor",
    "ThreadClientExecutor",
    "UpdateTask",
    "make_executor",
    "RoundEngine",
    "RoundOutcome",
    "RoundStrategy",
    "ScenarioConfig",
    "AsyncConfig",
    "aggregation_weights",
    "AvailabilityTrace",
    "full_participation",
    "sample_from",
    "uniform_sample",
    "FederatedEnv",
    "plan_cohort_schedule",
    "supports_batched",
    "train_cohort_flat",
]
