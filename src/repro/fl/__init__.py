"""Federated-learning simulation substrate."""

from repro.fl.aggregation import uniform_average, weighted_average
from repro.fl.client import ClientUpdate, local_train, run_client_update
from repro.fl.communication import (
    BYTES_PER_PARAM,
    CommunicationTracker,
    params_in_keys,
    params_in_state,
)
from repro.fl.config import TrainConfig
from repro.fl.evaluation import EvalResult, evaluate_model, mean_local_accuracy
from repro.fl.failures import FaultyExecutor
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.parallel import (
    ProcessClientExecutor,
    SerialClientExecutor,
    ThreadClientExecutor,
    UpdateTask,
    make_executor,
)
from repro.fl.sampling import full_participation, uniform_sample
from repro.fl.simulation import FederatedEnv

__all__ = [
    "uniform_average",
    "weighted_average",
    "ClientUpdate",
    "local_train",
    "run_client_update",
    "BYTES_PER_PARAM",
    "CommunicationTracker",
    "params_in_keys",
    "params_in_state",
    "TrainConfig",
    "EvalResult",
    "evaluate_model",
    "mean_local_accuracy",
    "FaultyExecutor",
    "RoundRecord",
    "RunHistory",
    "ProcessClientExecutor",
    "SerialClientExecutor",
    "ThreadClientExecutor",
    "UpdateTask",
    "make_executor",
    "full_participation",
    "uniform_sample",
    "FederatedEnv",
]
