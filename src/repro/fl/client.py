"""Client-side local training.

The functions here implement one client's work during a round: load the
received state into a scratch model, run ``local_epochs`` of (proximal)
SGD over the local split, and return the updated state.  They are plain
functions over explicit arguments — no hidden globals — so the parallel
executors can ship them across threads or processes unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset
from repro.fl.config import TrainConfig
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import SGD, ProximalSGD
from repro.nn.state_flat import (
    LazyStateView,
    StateLayout,
    pack_state,
    unpack_state,
)

__all__ = [
    "ClientUpdate",
    "local_train",
    "run_client_update",
    "run_client_update_flat",
]


@dataclass
class ClientUpdate:
    """Result of one client's local round.

    ``flat`` is the packed float64 view of ``state`` (same values, one
    contiguous buffer) when the update travelled the flat transport;
    aggregation consumes it directly so no per-key repacking happens on
    the server.  Executors always populate it; it defaults to ``None``
    only for hand-built updates in tests and external code.

    On the hot path ``state`` is a :class:`repro.nn.state_flat.LazyStateView`
    over ``flat`` — the dict never materialises unless a compatibility
    consumer actually indexes it, so each in-flight update holds one
    float64 row, not a row *plus* an eager per-key dict.

    ``weight`` is the update's effective aggregation weight when
    scenario middleware overrides the historical sample-count weighting
    (compute budgets weight by steps taken; stale folding multiplies in
    the staleness discount).  ``None`` — the default, and the only value
    executors ever produce — means "weight by ``n_samples``", exactly
    the pre-middleware rule; see
    :func:`repro.fl.rounds.aggregation_weights`.
    """

    client_id: int
    state: Mapping[str, np.ndarray]
    n_samples: int
    mean_loss: float
    n_batches: int
    flat: np.ndarray | None = None
    weight: float | None = None


def local_train(
    model: Module,
    dataset: ArrayDataset,
    cfg: TrainConfig,
    rng: np.random.Generator,
    prox_mu: float = 0.0,
    anchor_flat: np.ndarray | None = None,
    layout: StateLayout | None = None,
) -> tuple[float, int]:
    """Train ``model`` in place on ``dataset``; return (mean loss, batches).

    With ``prox_mu > 0`` the optimiser is :class:`ProximalSGD` anchored at
    the model's state on entry — i.e. the global model the server just
    broadcast — which is exactly FedProx's local objective.  When the
    broadcast arrived as a packed vector, passing it as ``anchor_flat``
    (with its ``layout``) anchors the proximal term on that buffer
    directly instead of re-copying every parameter; the anchor values are
    identical either way.
    """
    if len(dataset) == 0:
        raise ValueError("cannot train on an empty dataset")
    model.train()
    loss_fn = CrossEntropyLoss()
    if prox_mu > 0.0:
        optimizer: SGD = ProximalSGD(
            model.parameters(),
            lr=cfg.lr,
            mu=prox_mu,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )
        if anchor_flat is not None and layout is not None:
            optimizer.set_anchor_flat(anchor_flat, layout)
        else:
            optimizer.set_anchor_from_params()
    else:
        optimizer = SGD(
            model.parameters(),
            lr=cfg.lr,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )

    batch_size = min(cfg.batch_size, len(dataset))
    loader = DataLoader(dataset, batch_size, rng=rng, shuffle=True)
    total_loss = 0.0
    n_batches = 0
    done = False
    for _ in range(cfg.local_epochs):
        for batch_index, (images, labels) in enumerate(loader):
            if cfg.max_batches is not None and batch_index >= cfg.max_batches:
                break
            if cfg.max_steps is not None and n_batches >= cfg.max_steps:
                done = True
                break
            model.zero_grad()
            logits = model.forward(images)
            loss_value = loss_fn.forward(logits, labels)
            model.backward(loss_fn.backward())
            optimizer.step()
            total_loss += loss_value
            n_batches += 1
        if done:
            break
    return (total_loss / n_batches if n_batches else 0.0), n_batches


def run_client_update(
    model: Module,
    client_id: int,
    dataset: ArrayDataset,
    incoming_state: dict[str, np.ndarray],
    cfg: TrainConfig,
    rng: np.random.Generator,
    prox_mu: float = 0.0,
) -> ClientUpdate:
    """Full client round: load state → local train → snapshot new state."""
    model.load_state_dict(incoming_state)
    mean_loss, n_batches = local_train(model, dataset, cfg, rng, prox_mu=prox_mu)
    return ClientUpdate(
        client_id=client_id,
        state=model.state_dict(copy=True),
        n_samples=len(dataset),
        mean_loss=mean_loss,
        n_batches=n_batches,
    )


def run_client_update_flat(
    model: Module,
    client_id: int,
    dataset: ArrayDataset,
    incoming_flat: np.ndarray,
    layout: StateLayout,
    cfg: TrainConfig,
    rng: np.random.Generator,
    prox_mu: float = 0.0,
) -> ClientUpdate:
    """Flat-transport client round: one packed vector in, one out.

    Equivalent to :func:`run_client_update` on ``unpack(incoming_flat)``
    — packing is exact (see :mod:`repro.nn.state_flat`), so results are
    bit-identical to the dict path — but the payload each way is a single
    contiguous buffer, which is what the parallel executors ship across
    process boundaries.
    """
    model.load_state_dict(unpack_state(incoming_flat, layout))
    mean_loss, n_batches = local_train(
        model,
        dataset,
        cfg,
        rng,
        prox_mu=prox_mu,
        anchor_flat=incoming_flat,
        layout=layout,
    )
    flat = pack_state(model.state_dict(copy=False), layout)
    return ClientUpdate(
        client_id=client_id,
        state=LazyStateView(flat, layout),
        n_samples=len(dataset),
        mean_loss=mean_loss,
        n_batches=n_batches,
        flat=flat,
    )
