"""Failure injection: clients that go dark mid-round.

Real federations lose clients to network drops and stragglers.  The
:class:`FaultyExecutor` wraps any client executor and makes a seeded
subset of clients fail each round, exercising the algorithms' tolerance
paths — most importantly FedClust's straggler handling in the one-shot
clustering round (clients that miss it are onboarded later through the
newcomer mechanism, see
:meth:`repro.core.fedclust.FedClust.clustering_round`).

Semantics: a failed client consumed the broadcast (download is already
spent) but returns no update.  ``run`` therefore returns updates only for
the surviving clients.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.fl.client import ClientUpdate
from repro.fl.parallel import SerialClientExecutor, UpdateTask
from repro.utils.rng import rng_for
from repro.utils.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.simulation import FederatedEnv

__all__ = ["FaultyExecutor"]

_FAILURE_TAG = 13


class FaultyExecutor:
    """Drop each client's update with probability ``failure_rate``.

    Failures are derived statelessly from ``(seed, round, client)`` so a
    run with failures is as reproducible as one without.  At least one
    client always survives a round (a fully-dark round would deadlock
    aggregation, which no real server would allow either — it would
    re-broadcast instead).
    """

    def __init__(
        self,
        failure_rate: float,
        inner=None,
    ) -> None:
        check_fraction("failure_rate", failure_rate, inclusive_low=True)
        if failure_rate >= 1.0:
            raise ValueError("failure_rate must be < 1 (someone must survive)")
        self.failure_rate = failure_rate
        self.inner = inner if inner is not None else SerialClientExecutor()
        #: (round, dropped client ids) log, for tests and diagnostics.
        self.drop_log: list[tuple[int, list[int]]] = []

    def survivors(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[UpdateTask]:
        """The deterministic surviving subset for this round."""
        alive = []
        for task in tasks:
            u = rng_for(env.seed, _FAILURE_TAG, round_index, task.client_id).random()
            if u >= self.failure_rate:
                alive.append(task)
        if not alive and tasks:
            # Guarantee progress: keep the deterministically-first client.
            alive = [min(tasks, key=lambda t: t.client_id)]
        return alive

    def run(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        alive = self.survivors(env, tasks, round_index)
        dropped = sorted(
            set(t.client_id for t in tasks) - set(t.client_id for t in alive)
        )
        if dropped:
            self.drop_log.append((round_index, dropped))
        return self.inner.run(env, alive, round_index)

    def close(self) -> None:
        self.inner.close()
