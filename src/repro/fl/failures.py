"""Failure injection: clients that go dark mid-round.

.. deprecated::
    Failure injection is now engine middleware — set
    ``ScenarioConfig(failure_rate=...)`` (see :mod:`repro.fl.rounds`)
    and pass it to any algorithm's ``run``.  The scenario path composes
    with **every** executor kind, including ``"batched"`` flat-plane
    cohorts, which this executor wrapper predates: wrapping splinters
    the task list the batched executor needs whole, and the wrapper can
    only sit where the caller happened to construct the executor.
    :class:`FaultyExecutor` remains as a thin shim over the same seeded
    ``(seed, round, client)`` drop stream (``rounds.FAILURE_TAG``), so
    historical faulty runs reproduce bit-for-bit either way.

Semantics: a failed client consumed the broadcast (download is already
spent) but returns no update.  ``run`` therefore returns updates only for
the surviving clients.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Sequence

from repro.fl.client import ClientUpdate
from repro.fl.parallel import SerialClientExecutor, UpdateTask
from repro.utils.rng import rng_for
from repro.utils.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.simulation import FederatedEnv

__all__ = ["FaultyExecutor"]


class FaultyExecutor:
    """Deprecated executor wrapper over the engine's failure stream.

    Drops each client's update with probability ``failure_rate``,
    derived statelessly from ``(seed, round, client)`` — the identical
    stream the round engine's scenario middleware draws from, so a
    wrapped run and a ``ScenarioConfig(failure_rate=...)`` run lose the
    same clients in the same rounds.  At least one client always
    survives a round.

    Prefer ``ScenarioConfig``: it composes with the batched executor
    and with straggler/arrival policy, and logs through the engine.
    """

    def __init__(
        self,
        failure_rate: float,
        inner=None,
    ) -> None:
        check_fraction("failure_rate", failure_rate, inclusive_low=True)
        if failure_rate >= 1.0:
            raise ValueError("failure_rate must be < 1 (someone must survive)")
        warnings.warn(
            "FaultyExecutor is deprecated; use "
            "repro.fl.rounds.ScenarioConfig(failure_rate=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.failure_rate = failure_rate
        self.inner = inner if inner is not None else SerialClientExecutor()
        #: (round, dropped client ids) log, for tests and diagnostics.
        self.drop_log: list[tuple[int, list[int]]] = []

    def survivors(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[UpdateTask]:
        """The deterministic surviving subset for this round."""
        from repro.fl.rounds import FAILURE_TAG

        alive = []
        for task in tasks:
            u = rng_for(env.seed, FAILURE_TAG, round_index, task.client_id).random()
            if u >= self.failure_rate:
                alive.append(task)
        if not alive and tasks:
            # Guarantee progress: keep the deterministically-first client.
            alive = [min(tasks, key=lambda t: t.client_id)]
        return alive

    def run(
        self, env: "FederatedEnv", tasks: Sequence[UpdateTask], round_index: int
    ) -> list[ClientUpdate]:
        alive = self.survivors(env, tasks, round_index)
        dropped = sorted(
            set(t.client_id for t in tasks) - set(t.client_id for t in alive)
        )
        if dropped:
            self.drop_log.append((round_index, dropped))
        return self.inner.run(env, alive, round_index)

    def close(self) -> None:
        self.inner.close()
