"""Server hardening: fault injection, update admission, robust
aggregation and the checkpoint codec.

The scenario middleware (participation, failures, stragglers, budgets,
traces, async lateness) simulates *absent* or *late* clients; this
module covers the remaining failure class — clients whose update
arrives on time but is **wrong**.  Four pieces, wired through
:class:`repro.fl.rounds.RoundEngine`:

* **Corruption injection** (:class:`CorruptionConfig`) — seeded
  per-(dispatch round, client) corruption events on their own rng
  stream (tag :data:`CORRUPTION_TAG`, same stateless pattern as the
  failure/straggler/budget/duration tags) that mangle the *returned*
  update row at the executor boundary: NaN/Inf poisoning, sign flips,
  scaled noise.  Because the corruption acts on the update list — never
  on the executor or the payload — all four executor kinds and the
  async in-flight path are exercised identically.
* **Update admission** (:func:`admit_updates`) — every survivor row
  passes a finiteness guard (always on) and an optional norm-bound
  guard before aggregation; rejects carry a reason code and land in the
  engine's ``quarantine_log``.  A quarantined client was already
  charged its upload — the bytes crossed the network; the server just
  refuses to fold them.
* **Robust aggregation** (:func:`robust_weighted_average`) — drop-in
  replacements for the plain weighted average at the shared choke point
  (:func:`repro.algorithms.base.survivor_weighted_average`):
  norm-clipping to the cohort median, coordinate-wise trimmed mean, and
  coordinate-wise median.  ``"none"`` is byte-for-byte the historical
  rule; the robust statistics deliberately ignore sample-count weights
  (a poisoned client could otherwise buy influence by claiming samples)
  except for ``"clip"``, which only rescales rows.
* **Checkpoint codec** (:func:`save_checkpoint` /
  :func:`load_checkpoint`) — a versioned single-file format (magic,
  version word, JSON header, raw array blobs) for the engine's
  checkpoint/resume path.  Version mismatches and truncated files fail
  loudly with the expected/found values; arrays round-trip bit-exactly.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.fl.aggregation import packed_weighted_average
from repro.fl.client import ClientUpdate
from repro.nn.state_flat import LazyStateView
from repro.utils.rng import rng_for
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.state_flat import StateLayout

__all__ = [
    "CORRUPTION_TAG",
    "CORRUPTION_KINDS",
    "ROBUST_AGG_MODES",
    "QUARANTINE_NON_FINITE",
    "QUARANTINE_NORM_BOUND",
    "CorruptionConfig",
    "maybe_corrupt",
    "admit_updates",
    "robust_weighted_average",
    "CheckpointConfig",
    "CheckpointError",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CHECKPOINT_FORMAT",
    "save_checkpoint",
    "load_checkpoint",
    "update_to_meta",
    "update_row",
    "rebuild_update",
]

#: rng_for namespace tag of the corruption stream — independent of the
#: failure (13), straggler (17), budget (19) and duration (23) streams,
#: so corruption composes with every other middleware without
#: perturbing their draws.
CORRUPTION_TAG = 29

#: Supported corruption kinds, in draw order (the per-event kind is
#: drawn uniformly over the *configured* subset).
CORRUPTION_KINDS = ("nan", "inf", "sign_flip", "noise")

#: Robust aggregation modes accepted by :func:`robust_weighted_average`
#: (and ``ScenarioConfig.robust_agg``).
ROBUST_AGG_MODES = ("none", "clip", "trimmed_mean", "coordinate_median")

#: Quarantine reason codes.
QUARANTINE_NON_FINITE = "non_finite"
QUARANTINE_NORM_BOUND = "norm_bound"


# ----------------------------------------------------------------------
# Corruption fault injection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorruptionConfig:
    """Seeded per-(dispatch round, client) update-corruption policy.

    Attributes
    ----------
    rate:
        Probability that a returned update is corrupted.  Drawn on the
        stateless ``(seed, CORRUPTION_TAG, round, client)`` stream, so
        the corruption schedule is a pure function of the seed —
        identical across executor kinds and sync/async engines.
    kinds:
        Subset of :data:`CORRUPTION_KINDS` to draw from, uniformly:

        * ``"nan"`` — poison a seeded ~1/64 subset of coordinates with
          NaN (the classic silent aggregation killer);
        * ``"inf"`` — same subset pattern with ±Inf;
        * ``"sign_flip"`` — negate the whole row (a model-replacement
          style attack: finite, norm-preserving, wrong direction);
        * ``"noise"`` — add ``scale × N(0, 1)`` per coordinate (finite
          but norm-exploded for large ``scale`` — what the norm-bound
          admission guard is for).
    scale:
        Standard deviation of the additive noise kind.
    """

    rate: float = 0.0
    kinds: tuple[str, ...] = CORRUPTION_KINDS
    scale: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1], got {self.rate!r}")
        kinds = tuple(self.kinds)
        if not kinds:
            raise ValueError("corruption kinds must not be empty")
        bad = [k for k in kinds if k not in CORRUPTION_KINDS]
        if bad:
            raise ValueError(
                f"unknown corruption kinds {bad}; options: {CORRUPTION_KINDS}"
            )
        object.__setattr__(self, "kinds", kinds)
        check_positive("scale", self.scale)


def _poison_indices(rng: np.random.Generator, n: int) -> np.ndarray:
    """The seeded coordinate subset a nan/inf event poisons (~1/64)."""
    k = max(1, n // 64)
    return rng.choice(n, size=k, replace=False)


def maybe_corrupt(
    update: ClientUpdate,
    seed: int,
    round_index: int,
    config: CorruptionConfig,
    layout: "StateLayout",
) -> ClientUpdate:
    """The update, corrupted iff this (round, client)'s event fires.

    Draws are stateless per (seed, round, client): one uniform for the
    event, then — only when it fires — the kind and the kind's own
    randomness, all from the same derived generator.  Returns the input
    object untouched when the event does not fire (the common path
    allocates nothing); a fired event returns a *copy* with both the
    flat row and the state view replaced, so buffered pristine updates
    elsewhere can never alias corrupted memory.
    """
    rng = rng_for(seed, CORRUPTION_TAG, round_index, update.client_id)
    if rng.random() >= config.rate:
        return update
    kind = config.kinds[int(rng.integers(len(config.kinds)))]
    flat = update.flat if update.flat is not None else layout.pack(update.state)
    flat = np.array(flat, dtype=np.float64, copy=True)
    n = flat.shape[0]
    if kind == "nan":
        flat[_poison_indices(rng, n)] = np.nan
    elif kind == "inf":
        idx = _poison_indices(rng, n)
        flat[idx] = np.where(rng.random(idx.size) < 0.5, np.inf, -np.inf)
    elif kind == "sign_flip":
        np.negative(flat, out=flat)
    else:  # noise
        flat += config.scale * rng.standard_normal(n)
    return replace(update, flat=flat, state=LazyStateView(flat, layout))


# ----------------------------------------------------------------------
# Update admission
# ----------------------------------------------------------------------
def admit_updates(
    updates: Sequence[ClientUpdate],
    layout: "StateLayout",
    norm_bound: float | None = None,
) -> tuple[list[ClientUpdate], list[tuple[int, str]]]:
    """Admission guards over one batch of survivor updates.

    Two checks, in order:

    * **finiteness** (always): any NaN/Inf coordinate rejects the row —
      a single non-finite entry poisons the aggregation GEMV silently;
    * **norm bound** (when ``norm_bound`` is set): rows whose L2 norm
      exceeds ``norm_bound ×`` the *median* norm of the batch's finite
      rows are rejected.  The median is taken per batch (a robust
      location estimate the corrupted minority cannot drag), and the
      guard is skipped when the median is zero (a cohort of zero rows
      has no scale to bound against).

    Returns ``(admitted, rejected)`` where ``rejected`` is
    ``(client_id, reason)`` pairs.  When nothing is rejected the
    *original list object* is returned unchanged, so the default
    scenario's hot path allocates nothing and stays bit-identical.
    """
    if not updates:
        return list(updates), []
    rows = [
        u.flat if u.flat is not None else layout.pack(u.state) for u in updates
    ]
    finite = np.array([bool(np.isfinite(row).all()) for row in rows])
    rejected = [
        (updates[i].client_id, QUARANTINE_NON_FINITE)
        for i in np.flatnonzero(~finite)
    ]
    keep = finite.copy()
    if norm_bound is not None and finite.any():
        norms = np.array(
            [np.linalg.norm(row) if ok else np.inf for row, ok in zip(rows, finite)]
        )
        median = float(np.median(norms[finite]))
        if median > 0.0:
            over = finite & (norms > norm_bound * median)
            rejected.extend(
                (updates[i].client_id, QUARANTINE_NORM_BOUND)
                for i in np.flatnonzero(over)
            )
            keep &= ~over
    if keep.all():
        return updates if isinstance(updates, list) else list(updates), []
    rejected.sort(key=lambda pair: pair[0])
    return [u for u, ok in zip(updates, keep) if ok], rejected


# ----------------------------------------------------------------------
# Robust aggregation kernels
# ----------------------------------------------------------------------
#: Columns per block of the trimmed-mean kernel; a block's transposed
#: lane buffer (block × n_clients float64) stays cache-resident.
_TRIM_BLOCK = 8192


def _trimmed_middle_mean(matrix: np.ndarray, k: int) -> np.ndarray:
    """Mean of each column with its ``k`` smallest/largest values dropped.

    The naive ``np.sort(matrix, axis=0)`` pays strided lane access over
    the whole (n, p) cohort.  This kernel transposes blocks of columns
    into one contiguous (block, n) buffer so each lane is a short
    contiguous run — the layout NumPy's vectorised small-array sort is
    built for — and reduces the middle slice in place.  Measured ~2.5×
    the strided sort at cohort shapes (64 × 395k); selection via
    ``np.partition`` (single- and multi-kth) was benchmarked too and
    loses at these lane lengths, because introselect has no vectorised
    path.  Same surviving multiset per column as the sorted reference,
    so results agree to summation order.
    """
    n, p = matrix.shape
    out = np.empty(p, dtype=np.float64)
    buf = np.empty((min(_TRIM_BLOCK, p), n), dtype=np.float64)
    for lo in range(0, p, _TRIM_BLOCK):
        hi = min(lo + _TRIM_BLOCK, p)
        lanes = buf[: hi - lo]
        np.copyto(lanes, matrix[:, lo:hi].T)
        lanes.sort(axis=1)
        out[lo:hi] = lanes[:, k : n - k].mean(axis=1)
    return out


def robust_weighted_average(
    matrix: np.ndarray,
    weights: Sequence[float],
    mode: str = "none",
    trim_fraction: float = 0.1,
) -> np.ndarray:
    """Aggregate a packed cohort under a robust rule.

    ``mode``:

    * ``"none"`` — :func:`repro.fl.aggregation.packed_weighted_average`
      verbatim (the bit-identity-gated default);
    * ``"clip"`` — rescale every row with norm above the cohort's
      median norm down to the median, then take the weighted average.
      Keeps sample-count weighting but caps any single row's magnitude;
    * ``"trimmed_mean"`` — coordinate-wise trimmed mean: per
      coordinate, drop the ``⌊trim_fraction × n⌋`` smallest and largest
      values and average the rest, **unweighted** (weights would let a
      poisoned client buy its way past the trim);
    * ``"coordinate_median"`` — coordinate-wise median, unweighted.

    All modes return a float64 vector for the caller to round through
    the parameter dtypes, exactly like the plain rule.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"packed cohort must be (n, p), got {matrix.shape}")
    if mode == "none":
        return packed_weighted_average(matrix, weights)
    if mode == "clip":
        norms = np.linalg.norm(matrix, axis=1)
        median = float(np.median(norms))
        scale = np.where(norms > median, median / np.maximum(norms, 1e-300), 1.0)
        return packed_weighted_average(matrix * scale[:, None], weights)
    if mode == "trimmed_mean":
        n = matrix.shape[0]
        k = int(trim_fraction * n)
        if 2 * k >= n:
            k = (n - 1) // 2
        if k == 0:
            return matrix.mean(axis=0)
        return _trimmed_middle_mean(matrix, k)
    if mode == "coordinate_median":
        return np.median(matrix, axis=0)
    raise ValueError(f"unknown robust_agg {mode!r}; options: {ROBUST_AGG_MODES}")


# ----------------------------------------------------------------------
# Checkpoint codec
# ----------------------------------------------------------------------
#: File magic — rejects arbitrary files before any parsing happens.
CHECKPOINT_MAGIC = b"RPCKPT\x00"
#: Codec version word; bumped on any layout change.  Readers refuse
#: other versions loudly instead of mis-parsing.
CHECKPOINT_VERSION = 1
#: Format tag embedded in the JSON header (mirrors the availability
#: trace's ``repro.availability-trace.v1`` convention).
CHECKPOINT_FORMAT = "repro.checkpoint.v1"

_HEAD = struct.Struct("<IQ")  # version word, header length


class CheckpointError(RuntimeError):
    """A checkpoint file that cannot be trusted: wrong magic, wrong
    version, truncated payload, or metadata that contradicts the run
    being resumed."""


@dataclass(frozen=True)
class CheckpointConfig:
    """Engine checkpoint policy (rides on ``ScenarioConfig``).

    Attributes
    ----------
    directory:
        Where the checkpoint file lives (created on first write).  One
        file, overwritten atomically each time — the latest round wins.
    every:
        Write cadence in rounds (the final round always writes).
    resume:
        If True, :meth:`repro.fl.rounds.RoundEngine.run` restores from
        an existing checkpoint file before its first round (a missing
        file is not an error — the run simply starts fresh, so one CLI
        invocation works both before and after a crash).
    filename:
        File name inside ``directory``.
    """

    directory: str | Path
    every: int = 1
    resume: bool = False
    filename: str = "checkpoint.bin"

    def __post_init__(self) -> None:
        check_positive("every", self.every)

    @property
    def path(self) -> Path:
        return Path(self.directory) / self.filename


def save_checkpoint(
    path: str | Path, header: dict, arrays: Mapping[str, np.ndarray]
) -> Path:
    """Write a versioned checkpoint file atomically.

    Layout: magic, ``<u32 version, u64 header-length>``, the UTF-8 JSON
    header (with an array manifest recording name/dtype/shape/bytes in
    blob order), then the raw array blobs concatenated.  The write goes
    to a sibling temp file first and is renamed into place, so a crash
    mid-write can never leave a torn file under the canonical name.
    """
    path = Path(path)
    manifest: list[dict] = []
    blobs: list[bytes] = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        blob = array.tobytes()
        manifest.append(
            {
                "name": str(name),
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "nbytes": len(blob),
            }
        )
        blobs.append(blob)
    head = dict(header)
    head["format"] = CHECKPOINT_FORMAT
    head["arrays"] = manifest
    payload = json.dumps(head).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        f.write(CHECKPOINT_MAGIC)
        f.write(_HEAD.pack(CHECKPOINT_VERSION, len(payload)))
        f.write(payload)
        for blob in blobs:
            f.write(blob)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Every failure mode is loud and specific: wrong magic, a version this
    build does not read (quoting expected vs found), and truncation at
    any stage (quoting how many bytes were expected vs present).
    Returns ``(header, arrays)`` with each array restored bit-exactly at
    its recorded dtype and shape.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint file at {path}") from None
    prelude = len(CHECKPOINT_MAGIC) + _HEAD.size
    if len(data) < prelude:
        raise CheckpointError(
            f"truncated checkpoint {path}: needs at least {prelude} bytes "
            f"of prelude, found {len(data)}"
        )
    if data[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise CheckpointError(
            f"{path} is not a repro checkpoint (bad magic "
            f"{data[: len(CHECKPOINT_MAGIC)]!r}, expected {CHECKPOINT_MAGIC!r})"
        )
    version, header_len = _HEAD.unpack_from(data, len(CHECKPOINT_MAGIC))
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version mismatch in {path}: file has version "
            f"{version}, this build reads version {CHECKPOINT_VERSION}"
        )
    offset = prelude
    if len(data) < offset + header_len:
        raise CheckpointError(
            f"truncated checkpoint {path}: header claims {header_len} bytes "
            f"but only {len(data) - offset} follow the prelude"
        )
    try:
        header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint header in {path}: {exc}") from exc
    if header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint format mismatch in {path}: expected "
            f"{CHECKPOINT_FORMAT!r}, found {header.get('format')!r}"
        )
    offset += header_len
    manifest = header.pop("arrays", [])
    header.pop("format", None)  # codec bookkeeping, not caller data
    total = sum(int(entry["nbytes"]) for entry in manifest)
    if len(data) < offset + total:
        raise CheckpointError(
            f"truncated checkpoint {path}: array blobs need {total} bytes "
            f"but only {len(data) - offset} remain"
        )
    arrays: dict[str, np.ndarray] = {}
    for entry in manifest:
        nbytes = int(entry["nbytes"])
        blob = data[offset : offset + nbytes]
        offset += nbytes
        arrays[entry["name"]] = np.frombuffer(
            blob, dtype=np.dtype(entry["dtype"])
        ).reshape(tuple(entry["shape"])).copy()
    return header, arrays


# ----------------------------------------------------------------------
# ClientUpdate (de)serialisation for engine buffers
# ----------------------------------------------------------------------
def update_to_meta(update: ClientUpdate) -> dict:
    """JSON-ready scalars of a buffered update (the row travels as an
    array blob alongside)."""
    return {
        "client_id": int(update.client_id),
        "n_samples": int(update.n_samples),
        "mean_loss": float(update.mean_loss),
        "n_batches": int(update.n_batches),
        "weight": None if update.weight is None else float(update.weight),
    }


def update_row(update: ClientUpdate, layout: "StateLayout") -> np.ndarray:
    """The update's packed float64 row (packing the state if needed).

    Buffer rows are checkpointed at float64, not the wire dtype: a
    noise-corrupted row awaiting admission holds float64 perturbations
    that a float32 round-trip would alter, breaking resume bit-identity.
    Server rows — always ``layout.round_trip`` results — are the ones
    stored at wire dtype, by the strategy payload hooks.
    """
    if update.flat is not None:
        return np.asarray(update.flat, dtype=np.float64)
    return layout.pack(update.state)


def rebuild_update(meta: Mapping, row: np.ndarray, layout: "StateLayout") -> ClientUpdate:
    """Inverse of :func:`update_to_meta`/:func:`update_row`."""
    flat = np.asarray(row, dtype=np.float64)
    return ClientUpdate(
        client_id=int(meta["client_id"]),
        state=LazyStateView(flat, layout),
        n_samples=int(meta["n_samples"]),
        mean_loss=float(meta["mean_loss"]),
        n_batches=int(meta["n_batches"]),
        flat=flat,
        weight=None if meta["weight"] is None else float(meta["weight"]),
    )
