"""Batched cohort training on the flat parameter plane.

The third flat-plane subsystem (after :mod:`repro.nn.state_flat` and
:mod:`repro.fl.eval_flat`): local training for a whole cohort of clients
that received the **same broadcast state**, executed in lockstep with a
leading client axis instead of a per-client Python loop.

Pipeline per cohort:

1. **Schedule** — every client's minibatch stream is derived from the
   *same* per-client generator the serial trainer uses
   (``rng_for(seed, 1, round, client_id)``), drawing the same epoch
   permutations in the same order, so batch composition is identical to
   the serial path.  Clients with unequal dataset sizes produce ragged
   schedules; steps are aligned epoch-major and padded to the cohort's
   widest batch with **zero-weight rows** (a padded row contributes
   nothing to the loss gradient, so padding never leaks into updates),
   and clients with no batch at a lockstep position are masked out of
   the optimiser step entirely.
2. **Lockstep train** — one :class:`repro.nn.batched.BatchedSequential`
   mirror of the architecture runs fused forward/backward over
   ``(n_clients, batch, ...)`` tensors; large linear layers use the
   factored shared-base representation (see :mod:`repro.nn.batched`),
   small ones dense per-client planes.
3. **Emit** — final per-client states are materialised straight into a
   ``(n_clients, n_params)`` float64 matrix; each
   :class:`~repro.fl.client.ClientUpdate` carries its row as ``flat``
   and a lazy mapping view as ``state`` — no dict is built unless a
   consumer actually asks for one.

Parity contract: per-client updates match the serial trainer
(:func:`repro.fl.client.run_client_update_flat`) to float summation
order — same RNG streams, same minibatch composition, same SGD
semantics — gated by ``tests/test_fl_train_flat.py`` together with a
seeded end-to-end Table-I accuracy parity check.  Architectures without
a batched mirror (anything convolutional) fall back to the serial
reference kernel; see :class:`repro.fl.parallel.BatchedClientExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.fl.client import ClientUpdate
from repro.fl.config import TrainConfig
from repro.nn.batched import (
    BatchedCrossEntropyLoss,
    BatchedProximalSGD,
    BatchedSGD,
    batchable_layers,
    build_batched,
    flush_cohort,
    supports_batched,
)
from repro.nn.layers.linear import Linear
from repro.nn.state_flat import LazyStateView, StateLayout
from repro.utils.rng import rng_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.simulation import FederatedEnv

__all__ = [
    "LockstepStep",
    "plan_cohort_schedule",
    "select_factored_keys",
    "train_cohort_flat",
    "supports_batched",
]

#: rng_for namespace tag shared with the serial executors — the batched
#: trainer must consume the *same* per-(round, client) streams.
_CLIENT_UPDATE_TAG = 1

#: Tag for the cohort-level dropout stream (models with dropout train
#: correctly but are not bit-comparable across executors — the serial
#: path's dropout draws come from the shared scratch model's own
#: generator in execution order, which no parallel executor reproduces).
_BATCHED_DROPOUT_TAG = 17

#: Upper bound on total factor storage per cohort before a layer is
#: kept dense instead (bytes).  Factors hold every step's layer input
#: and output gradient; long local schedules would otherwise hoard
#: memory that the dense representation bounds by construction.
_FACTOR_BYTES_CAP = 512 * 1024 * 1024


@dataclass
class LockstepStep:
    """One lockstep position: every active client's next minibatch.

    ``indices[c]`` is client ``c``'s row selection into its own train
    split (``None`` when the client has no batch here), drawn from the
    same permutation stream the serial :class:`~repro.data.dataloader.
    DataLoader` uses.
    """

    indices: list  # per client: np.ndarray | None
    active: np.ndarray  # (C,) bool


def plan_cohort_schedule(
    sizes: Sequence[int],
    cfg: TrainConfig,
    rngs: Sequence[np.random.Generator],
    max_steps: "Sequence[int | None] | None" = None,
) -> tuple[list[LockstepStep], int]:
    """Lockstep-align every client's serial minibatch schedule.

    Returns ``(steps, batch_width)`` where ``batch_width`` is the widest
    per-client batch in the cohort (``min(cfg.batch_size, n_c)`` per
    client, exactly the serial trainer's effective batch size).  Epoch
    permutations are drawn per client from ``rngs`` in the same order
    the serial path draws them, and ``max_batches``/``max_steps`` caps
    are applied per client with serial semantics (per-epoch cap; total
    cap checked before each step).

    ``max_steps`` optionally tightens the total-step cap **per client**
    (``None`` entries fall back to ``cfg.max_steps``) — the scenario
    compute-budget path: a budgeted client's schedule simply ends
    early and the existing per-step ``active`` masks keep it frozen for
    the rest of the cohort's lockstep schedule.  A cap of ``0`` yields
    an empty schedule (the client's weights never move).
    """
    n_clients = len(sizes)
    if n_clients == 0:
        raise ValueError("cohort must contain at least one client")
    if any(n <= 0 for n in sizes):
        raise ValueError("cannot train on an empty dataset")
    if max_steps is None:
        max_steps = [None] * n_clients
    if len(max_steps) != n_clients:
        raise ValueError(
            f"max_steps has {len(max_steps)} entries for {n_clients} clients"
        )
    batch_sizes = [min(cfg.batch_size, int(n)) for n in sizes]
    batch_width = max(batch_sizes)

    # Per client: the full (epoch-major) list of batch index arrays.
    per_client: list[list[np.ndarray]] = []
    for n, b, rng, budget in zip(sizes, batch_sizes, rngs, max_steps):
        cap = cfg.max_steps
        if budget is not None:
            cap = int(budget) if cap is None else min(cap, int(budget))
        batches: list[np.ndarray] = []
        taken = 0
        done = False
        for _ in range(cfg.local_epochs):
            order = rng.permutation(int(n))
            for batch_index, start in enumerate(range(0, int(n), b)):
                if cfg.max_batches is not None and batch_index >= cfg.max_batches:
                    break
                if cap is not None and taken >= cap:
                    done = True
                    break
                batches.append(order[start : start + b])
                taken += 1
            if done:
                break
        per_client.append(batches)

    # Epoch-major alignment: clients consume their own batch list in
    # order; lockstep position t serves every client that still has a
    # t-th batch.  (Any alignment is parity-correct — client streams
    # are independent — this one keeps epochs roughly in phase.)
    n_steps = max(len(b) for b in per_client)
    steps: list[LockstepStep] = []
    for t in range(n_steps):
        indices = [
            batches[t] if t < len(batches) else None for batches in per_client
        ]
        active = np.array([idx is not None for idx in indices], dtype=bool)
        steps.append(LockstepStep(indices=indices, active=active))
    return steps, batch_width


def select_factored_keys(
    model,
    n_clients: int,
    n_steps: int,
    batch_width: int,
    factor_bytes_cap: int = _FACTOR_BYTES_CAP,
    step_counts: Sequence[int] | None = None,
) -> frozenset[str]:
    """Linear weights that should use the factored representation.

    A layer is factored while the accumulated rank (``steps × batch``)
    stays below its smallest dimension — beyond that the per-step
    corrections and final materialisation cost as much as dense
    updates — and while the cohort's total factor storage stays under
    ``factor_bytes_cap``.

    ``step_counts`` (when given) are the *per-client* step counts of the
    planned schedule — the compute-budget path, where clients drop out
    of the lockstep schedule early.  A client's effective factor rank is
    its own ``steps_c × batch``, so the rank criterion uses the cohort
    mean instead of the cohort max: without it, one unbudgeted client
    forces the whole cohort dense even when the typical member's rank is
    far below the threshold.  The storage estimate stays at the cohort
    max — factors allocate full ``(clients, batch)`` planes per lockstep
    position regardless of who is active.  With uniform step counts
    (every ``None``-budget cohort) the mean equals ``n_steps`` and the
    selection is unchanged.
    """
    named = batchable_layers(model)
    if named is None:
        return frozenset()
    if step_counts is not None:
        if len(step_counts) != n_clients:
            raise ValueError(
                f"step_counts has {len(step_counts)} entries for "
                f"{n_clients} clients"
            )
        mean_steps = float(np.mean([int(s) for s in step_counts]))
    else:
        mean_steps = float(n_steps)
    rank = mean_steps * batch_width
    keys: set[str] = set()
    budget = factor_bytes_cap
    for name, child in named:
        if not isinstance(child, Linear):
            continue
        if rank > min(child.in_features, child.out_features):
            continue
        need = (
            n_steps
            * n_clients
            * batch_width
            * (child.in_features + child.out_features)
            * child.weight.data.dtype.itemsize
        )
        if need > budget:
            continue
        budget -= need
        keys.add(f"{name}.weight")
    return frozenset(keys)


def _gather_step(
    datasets: Sequence[ArrayDataset],
    step: LockstepStep,
    batch_width: int,
    input_shape: tuple[int, ...],
    label_buf: np.ndarray,
    weight_buf: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Materialise one lockstep batch ``(C, B, *input_shape)``.

    Without ``out`` the image tensor is freshly allocated; with it the
    batch is gathered straight into the given buffer (the preallocated
    factor-slab / step-buffer path — factored layers retain references
    to layer inputs, so a caller passing ``out`` must hand each lockstep
    position a distinct slab slice).  Padding rows stay zero with zero
    row weight.
    """
    c = len(datasets)
    if out is None:
        x = np.zeros((c, batch_width) + tuple(input_shape), dtype=np.float32)
    else:
        x = out
        x[...] = 0.0
    label_buf[...] = 0
    weight_buf[...] = 0.0
    for i, idx in enumerate(step.indices):
        if idx is None:
            continue
        k = len(idx)
        x[i, :k] = datasets[i].images[idx]
        label_buf[i, :k] = datasets[i].labels[idx]
        weight_buf[i, :k] = 1.0 / k
    return x


def train_cohort_flat(
    env: "FederatedEnv",
    client_ids: Sequence[int],
    incoming_flat: np.ndarray,
    round_index: int,
    prox_mu: float = 0.0,
    factored_keys: frozenset[str] | None = None,
    max_steps: "Sequence[int | None] | None" = None,
    gather_cache: dict | None = None,
) -> list[ClientUpdate]:
    """Run one cohort's local training in lockstep on the flat plane.

    Every client in ``client_ids`` starts from ``incoming_flat`` (one
    packed float64 row on ``env.layout``) and trains with
    ``env.train_cfg`` — the batched equivalent of calling
    :func:`repro.fl.client.run_client_update_flat` per client with the
    same ``rng_for`` streams.  Returns updates in ``client_ids`` order,
    each carrying its packed row (``flat``) and a lazy ``state`` view.

    ``max_steps`` is an optional per-client total-step cap (aligned
    with ``client_ids``; the scenario compute-budget path) — budgeted
    clients drop out of the lockstep schedule early via the per-step
    ``active`` masks, and a zero-budget client's emitted row is exactly
    the broadcast rounded through the parameter dtypes.

    ``gather_cache`` is an optional dict the caller keeps across rounds
    (the batched executor owns one): lockstep batches are gathered
    straight into preallocated factor storage — a ``(steps, C, B, ...)``
    slab for factored cohorts (each position needs a distinct buffer the
    factored layers can retain), one reused step buffer otherwise — so
    repeated rounds skip both the per-step allocations and the
    first-touch page faults of fresh buffers.  The gathered values are
    identical either way; results are bit-identical with or without the
    cache.
    """
    cfg = env.train_cfg
    layout: StateLayout = env.layout
    client_ids = [int(cid) for cid in client_ids]
    datasets = [env.federation.clients[cid].train for cid in client_ids]
    sizes = [len(d) for d in datasets]
    rngs = [
        rng_for(env.seed, _CLIENT_UPDATE_TAG, round_index, cid)
        for cid in client_ids
    ]
    steps, batch_width = plan_cohort_schedule(sizes, cfg, rngs, max_steps)
    n_clients = len(client_ids)
    if factored_keys is None:
        # Per-client step counts feed the rank estimate so budgeted
        # cohorts route factored by their typical (not worst-case) rank.
        step_counts = (
            np.sum([step.active for step in steps], axis=0).astype(int)
            if steps
            else np.zeros(n_clients, dtype=int)
        )
        factored_keys = select_factored_keys(
            env.scratch_model,
            n_clients,
            len(steps),
            batch_width,
            step_counts=step_counts,
        )

    incoming_flat = np.asarray(incoming_flat, dtype=np.float64)
    batched, _plane = build_batched(
        env.scratch_model,
        layout,
        n_clients,
        incoming_flat,
        factored_keys=factored_keys,
        dropout_rng=rng_for(env.seed, _BATCHED_DROPOUT_TAG, round_index),
    )
    params = batched.params()
    if prox_mu > 0.0:
        optimizer: BatchedSGD = BatchedProximalSGD(
            params,
            lr=cfg.lr,
            mu=prox_mu,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )
    else:
        optimizer = BatchedSGD(
            params,
            lr=cfg.lr,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )
    loss_fn = BatchedCrossEntropyLoss()

    input_shape = tuple(env.federation.input_shape)
    labels = np.zeros((n_clients, batch_width), dtype=np.int64)
    weights = np.zeros((n_clients, batch_width), dtype=np.float32)
    total_loss = np.zeros(n_clients, dtype=np.float64)
    n_batches = np.zeros(n_clients, dtype=np.int64)

    x_shape = (n_clients, batch_width) + input_shape
    step_buffers: list[np.ndarray] | None = None
    if gather_cache is not None and steps:
        if factored_keys:
            # Factored layers retain every step's input until flush, so
            # each lockstep position needs its own slab slice; the slab
            # is capped like the factors it feeds.
            need = len(steps) * int(np.prod(x_shape)) * 4
            if need <= _FACTOR_BYTES_CAP:
                key = ("slab",) + x_shape
                slab = gather_cache.get(key)
                if slab is None or slab.shape[0] < len(steps):
                    slab = np.zeros((len(steps),) + x_shape, dtype=np.float32)
                    gather_cache[key] = slab
                step_buffers = [slab[t] for t in range(len(steps))]
        else:
            # Dense-only cohorts consume the batch within the step, so
            # one buffer serves every position.
            key = ("step",) + x_shape
            buf = gather_cache.get(key)
            if buf is None:
                buf = np.zeros(x_shape, dtype=np.float32)
                gather_cache[key] = buf
            step_buffers = [buf] * len(steps)

    for t, step in enumerate(steps):
        x = _gather_step(
            datasets,
            step,
            batch_width,
            input_shape,
            labels,
            weights,
            out=step_buffers[t] if step_buffers is not None else None,
        )
        logits = batched.forward(x)
        losses = loss_fn.forward(logits, labels, weights)
        batched.backward(loss_fn.backward())
        optimizer.step(step.active)
        total_loss += np.where(step.active, losses, 0.0)
        n_batches += step.active

    out = np.empty((n_clients, layout.n_params), dtype=np.float64)
    flush_cohort(batched, layout, out)

    updates = []
    for i, cid in enumerate(client_ids):
        row = out[i]
        updates.append(
            ClientUpdate(
                client_id=cid,
                state=LazyStateView(row, layout),
                n_samples=sizes[i],
                mean_loss=float(total_loss[i] / n_batches[i]) if n_batches[i] else 0.0,
                n_batches=int(n_batches[i]),
                flat=row,
            )
        )
    return updates
