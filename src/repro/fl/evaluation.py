"""Evaluation protocol — reference (per-client, serial) implementation.

Table I reports the **mean local test accuracy**: every client evaluates
the model that serves it (global model, or its cluster's model) on its
own held-out split drawn from its own distribution; the per-client
accuracies are averaged.  This module implements that protocol plus the
underlying single-dataset evaluation primitive.

The functions here are the *reference* kernels: one state load and one
serial batch loop per client.  The hot path lives in
:mod:`repro.fl.eval_flat`, which loads each distinct serving model once
and fuses the forward passes of all clients sharing it (recovering
per-client statistics by segment reductions) — analogous to how
``weighted_average_dict`` is the reference for the packed aggregation
GEMV.  Per-client accuracies from the fused path are bit-identical to
:func:`mean_local_accuracy`; losses agree to float64 round-off (the
same sum taken per-sample instead of per-batch-mean).  Tests and
``benchmarks/bench_eval.py`` cross-check the two paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module

__all__ = ["EvalResult", "evaluate_model", "mean_local_accuracy"]


@dataclass
class EvalResult:
    """Accuracy/loss over one dataset."""

    accuracy: float
    loss: float
    n_samples: int
    n_correct: int


def evaluate_model(
    model: Module, dataset: ArrayDataset, batch_size: int = 512
) -> EvalResult:
    """Deterministic full-dataset evaluation (no shuffling, eval mode)."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    was_training = model.training
    model.eval()
    loss_fn = CrossEntropyLoss()
    n_correct = 0
    loss_sum = 0.0
    n = len(dataset)
    for start in range(0, n, batch_size):
        images = dataset.images[start : start + batch_size]
        labels = dataset.labels[start : start + batch_size]
        logits = model.forward(images)
        loss_sum += loss_fn.forward(logits, labels) * len(labels)
        n_correct += int((logits.argmax(axis=1) == labels).sum())
    if was_training:
        model.train()
    return EvalResult(
        accuracy=n_correct / n,
        loss=loss_sum / n,
        n_samples=n,
        n_correct=n_correct,
    )


def mean_local_accuracy(
    model: Module,
    client_states: Sequence[Mapping[str, np.ndarray]],
    client_testsets: Sequence[ArrayDataset],
    batch_size: int = 512,
) -> tuple[float, np.ndarray]:
    """Mean (and per-client vector) of local test accuracies.

    ``client_states[i]`` is the state dict serving client ``i`` —
    algorithms pass the global state for every client, or each client's
    cluster model.  ``model`` is a scratch instance reused across clients.

    Reference implementation (one load + one batch loop per client);
    production call sites go through :mod:`repro.fl.eval_flat`, which is
    bit-identical on accuracies and ~k/n the server-side work.
    """
    if len(client_states) != len(client_testsets):
        raise ValueError(
            f"{len(client_states)} states but {len(client_testsets)} test sets"
        )
    accs = np.zeros(len(client_states))
    for i, (state, testset) in enumerate(zip(client_states, client_testsets)):
        model.load_state_dict(state)
        accs[i] = evaluate_model(model, testset, batch_size=batch_size).accuracy
    return float(accs.mean()), accs
