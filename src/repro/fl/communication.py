"""Communication-cost accounting.

FL communication cost is conventionally reported in *parameters
transferred* (× 4 bytes for float32).  The tracker tags every transfer
with a phase label so experiments can separate one-off clustering
overhead (FedClust's partial-weight upload, PACFL's basis upload) from
steady-state training traffic — the comparison behind the paper's
communication-cost claim.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

__all__ = ["CommunicationTracker", "params_in_state", "params_in_keys"]

BYTES_PER_PARAM = 4  # float32 over the wire


def params_in_state(state: Mapping[str, np.ndarray]) -> int:
    """Total scalar count of a state dict."""
    return int(sum(v.size for v in state.values()))


def params_in_keys(state: Mapping[str, np.ndarray], keys: Iterable[str]) -> int:
    """Scalar count of a key subset (e.g. the final layer)."""
    return int(sum(state[k].size for k in keys))


@dataclass
class CommunicationTracker:
    """Up/down parameter counters, bucketed by phase label."""

    uploads: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    downloads: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_upload(self, n_params: int, phase: str = "training") -> None:
        """Client → server transfer of ``n_params`` scalars."""
        if n_params < 0:
            raise ValueError(f"n_params must be >= 0, got {n_params}")
        self.uploads[phase] += int(n_params)

    def record_download(self, n_params: int, phase: str = "training") -> None:
        """Server → client transfer of ``n_params`` scalars."""
        if n_params < 0:
            raise ValueError(f"n_params must be >= 0, got {n_params}")
        self.downloads[phase] += int(n_params)

    # ------------------------------------------------------------------
    @property
    def total_uploaded(self) -> int:
        return sum(self.uploads.values())

    @property
    def total_downloaded(self) -> int:
        return sum(self.downloads.values())

    @property
    def total_params(self) -> int:
        return self.total_uploaded + self.total_downloaded

    @property
    def total_bytes(self) -> int:
        return self.total_params * BYTES_PER_PARAM

    def uploaded_in(self, phase: str) -> int:
        return self.uploads.get(phase, 0)

    def downloaded_in(self, phase: str) -> int:
        return self.downloads.get(phase, 0)

    def snapshot(self) -> dict[str, int]:
        """Immutable totals for history records."""
        return {
            "uploaded": self.total_uploaded,
            "downloaded": self.total_downloaded,
            "bytes": self.total_bytes,
        }

    def by_phase(self) -> dict[str, dict[str, int]]:
        """Per-phase breakdown (clustering vs training traffic)."""
        phases = sorted(set(self.uploads) | set(self.downloads))
        return {
            phase: {
                "uploaded": self.uploads.get(phase, 0),
                "downloaded": self.downloads.get(phase, 0),
            }
            for phase in phases
        }
