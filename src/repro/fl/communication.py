"""Communication-cost accounting and flat payload serialization.

FL communication cost is conventionally reported in *parameters
transferred* (× 4 bytes for float32).  The tracker tags every transfer
with a phase label so experiments can separate one-off clustering
overhead (FedClust's partial-weight upload, PACFL's basis upload) from
steady-state training traffic — the comparison behind the paper's
communication-cost claim.

With the flat parameter plane (:mod:`repro.nn.state_flat`) the payload
that actually moves is one contiguous buffer, so serialization is a
single ``tobytes``/``frombuffer`` pair at the layout's wire dtype —
:func:`encode_flat_payload`/:func:`decode_flat_payload` below.  The
counting helpers gain a layout-based variant so accounting no longer
needs a materialised state dict.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.state_flat import StateLayout

__all__ = [
    "CommunicationTracker",
    "params_in_state",
    "params_in_keys",
    "params_in_layout",
    "flat_payload_nbytes",
    "encode_flat_payload",
    "decode_flat_payload",
]

BYTES_PER_PARAM = 4  # float32 over the wire


def params_in_state(state: Mapping[str, np.ndarray]) -> int:
    """Total scalar count of a state dict."""
    return int(sum(v.size for v in state.values()))


def params_in_keys(state: Mapping[str, np.ndarray], keys: Iterable[str]) -> int:
    """Scalar count of a key subset (e.g. the final layer)."""
    return int(sum(state[k].size for k in keys))


def params_in_layout(
    layout: "StateLayout", keys: Iterable[str] | None = None
) -> int:
    """Scalar count of a layout (or a key subset of it).

    The layout-based twin of :func:`params_in_state`/:func:`params_in_keys`
    — no state dict needed, the layout already knows every size.
    """
    if keys is None:
        return int(layout.n_params)
    return int(sum(layout.size_of(k) for k in keys))


def flat_payload_nbytes(layout: "StateLayout") -> int:
    """Bytes on the wire for one full-state flat payload."""
    return int(layout.n_params) * layout.wire_dtype.itemsize


def encode_flat_payload(vector: np.ndarray, layout: "StateLayout") -> bytes:
    """Serialise a packed state vector to wire bytes.

    The vector is stored at ``layout.wire_dtype`` — the narrowest dtype
    that round-trips every parameter (float32 for float32 models, half
    the bytes of the float64 working buffer).  Vectors whose values came
    from the model's parameters round-trip exactly.
    """
    vector = np.asarray(vector)
    if vector.shape != (layout.n_params,):
        raise ValueError(
            f"vector has shape {vector.shape}, expected ({layout.n_params},)"
        )
    return np.ascontiguousarray(vector, dtype=layout.wire_dtype).tobytes()


def decode_flat_payload(payload: bytes, layout: "StateLayout") -> np.ndarray:
    """Inverse of :func:`encode_flat_payload`; returns a float64 vector."""
    vector = np.frombuffer(payload, dtype=layout.wire_dtype)
    if vector.shape != (layout.n_params,):
        raise ValueError(
            f"payload holds {vector.size} params, expected {layout.n_params}"
        )
    return vector.astype(np.float64)


@dataclass
class CommunicationTracker:
    """Up/down parameter counters, bucketed by phase label."""

    uploads: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    downloads: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_upload(self, n_params: int, phase: str = "training") -> None:
        """Client → server transfer of ``n_params`` scalars."""
        if n_params < 0:
            raise ValueError(f"n_params must be >= 0, got {n_params}")
        self.uploads[phase] += int(n_params)

    def record_download(self, n_params: int, phase: str = "training") -> None:
        """Server → client transfer of ``n_params`` scalars."""
        if n_params < 0:
            raise ValueError(f"n_params must be >= 0, got {n_params}")
        self.downloads[phase] += int(n_params)

    # ------------------------------------------------------------------
    @property
    def total_uploaded(self) -> int:
        return sum(self.uploads.values())

    @property
    def total_downloaded(self) -> int:
        return sum(self.downloads.values())

    @property
    def total_params(self) -> int:
        return self.total_uploaded + self.total_downloaded

    @property
    def total_bytes(self) -> int:
        return self.total_params * BYTES_PER_PARAM

    def uploaded_in(self, phase: str) -> int:
        return self.uploads.get(phase, 0)

    def downloaded_in(self, phase: str) -> int:
        return self.downloads.get(phase, 0)

    def snapshot(self) -> dict[str, int]:
        """Immutable totals for history records."""
        return {
            "uploaded": self.total_uploaded,
            "downloaded": self.total_downloaded,
            "bytes": self.total_bytes,
        }

    def by_phase(self) -> dict[str, dict[str, int]]:
        """Per-phase breakdown (clustering vs training traffic)."""
        phases = sorted(set(self.uploads) | set(self.downloads))
        return {
            phase: {
                "uploaded": self.uploads.get(phase, 0),
                "downloaded": self.downloads.get(phase, 0),
            }
            for phase in phases
        }
