"""The round engine: one server loop shared by every algorithm.

Historically each algorithm hand-rolled its own per-round lifecycle, so
partial participation existed only inside FedAvg and failure injection
only as an executor wrapper.  This module extracts the loop once:

    select participants → broadcast packed rows → dispatch local
    training → collect survivors → aggregate → evaluate/log

:class:`RoundEngine` owns that lifecycle; algorithms are reduced to
:class:`RoundStrategy` objects with three required hooks —
``broadcast_for`` (participants → packed-row tasks), ``aggregate``
(surviving updates → new server state, returning the round's train-loss
statistic) and ``evaluate`` (the Table-I metric for the current state) —
plus optional ``on_arrivals``/``on_round_end`` notifications.

Scenario policy lives in :class:`ScenarioConfig` and composes with
**every** strategy and every executor kind (serial/thread/process/
batched), because it acts on the engine's task lists and update lists,
never on the executor or the payload format:

* **participation** — FedAvg's client fraction ``C``, sampled per round
  via :func:`repro.fl.sampling.uniform_sample` from the server RNG
  stream (``env.server_rng(round_index)``), exactly as FedAvg's
  historical loop did;
* **failures** — seeded pre-training drops on the stateless
  ``(seed, round, client)`` stream the legacy
  :class:`repro.fl.failures.FaultyExecutor` used (same tag, same
  draws).  A failed client consumed the broadcast — the download is
  charged — but never trains or uploads;
* **stragglers** — seeded post-training drops on an independent stream.
  A straggler trains and uploads, but its update arrives after the
  aggregation deadline: both transfers are charged, the update is
  discarded, and aggregation weights renormalise over the survivors
  (``packed_weighted_average`` normalises by the surviving sample
  counts, so renormalisation is automatic);
* **arrivals** — clients that join the federation mid-run.  They are
  ineligible for participation before their arrival round; strategies
  are told via ``on_arrivals`` (FedClust routes this into its newcomer
  onboarding).

At least one participant always survives a round (a fully-dark round
would deadlock aggregation; a real server would re-broadcast instead) —
the deterministically-first client by id is kept, mirroring the
historical ``FaultyExecutor`` guarantee.

Under the default scenario (full participation, no failures) the engine
performs exactly the tracker calls and aggregation arithmetic of the
pre-engine per-algorithm loops, so seeded runs are bit-identical — the
parity suite in ``tests/test_fl_rounds.py`` gates this per algorithm
and per executor kind.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.fl.client import ClientUpdate
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.sampling import sample_from, uniform_sample
from repro.utils.rng import rng_for
from repro.utils.validation import check_fraction, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.simulation import FederatedEnv

__all__ = [
    "FAILURE_TAG",
    "STRAGGLER_TAG",
    "ScenarioConfig",
    "DispatchOutcome",
    "RoundOutcome",
    "RoundStrategy",
    "RoundEngine",
]

#: rng_for namespace tag of the failure stream.  Value 13 is load-bearing:
#: it is the stream the legacy ``FaultyExecutor`` drew from, so scenario
#: failures reproduce the exact drop sets of historical faulty runs.
FAILURE_TAG = 13
#: Straggler draws use an independent stream.
STRAGGLER_TAG = 17


@dataclass(frozen=True)
class ScenarioConfig:
    """System-heterogeneity policy for a run; composes with any strategy.

    Attributes
    ----------
    client_fraction:
        FedAvg's ``C``: fraction of eligible clients sampled per round
        (1.0 = full participation).
    min_clients:
        Participation floor passed to :func:`uniform_sample`.
    failure_rate:
        Per-(round, client) probability that a participant goes dark
        before training.  Download charged, no upload, no update.
    straggler_rate:
        Per-(round, client) probability that a participant finishes too
        late for aggregation.  Download and upload charged, update
        discarded; aggregation renormalises over the survivors.
    arrivals:
        ``client_id → arrival round`` for clients that join mid-run;
        unlisted clients are present from the start.  A client is
        ineligible for participation in rounds before its arrival round;
        strategies learn about arrivals via
        :meth:`RoundStrategy.on_arrivals`.
    """

    client_fraction: float = 1.0
    min_clients: int = 1
    failure_rate: float = 0.0
    straggler_rate: float = 0.0
    arrivals: Mapping[int, int] | None = None

    def __post_init__(self) -> None:
        check_fraction("client_fraction", self.client_fraction)
        check_positive("min_clients", self.min_clients)
        for name in ("failure_rate", "straggler_rate"):
            rate = getattr(self, name)
            check_fraction(name, rate, inclusive_low=True)
            if rate >= 1.0:
                raise ValueError(f"{name} must be < 1 (someone must survive)")
        if self.arrivals:
            bad = {c: r for c, r in self.arrivals.items() if int(r) < 1}
            if bad:
                raise ValueError(f"arrival rounds must be >= 1, got {bad}")

    @property
    def is_default(self) -> bool:
        """True for the paper-scale scenario: everyone, every round."""
        return (
            self.client_fraction >= 1.0
            and self.failure_rate == 0.0
            and self.straggler_rate == 0.0
            and not self.arrivals
        )


@dataclass
class DispatchOutcome:
    """What came back from one dispatched task list."""

    survivors: list[ClientUpdate]
    failed: np.ndarray
    stragglers: np.ndarray


@dataclass
class RoundOutcome:
    """Everything that happened in one engine round."""

    round_index: int
    participants: np.ndarray
    survivors: list[ClientUpdate]
    failed: np.ndarray
    stragglers: np.ndarray
    arrived: np.ndarray
    train_loss: float
    evaluated: bool
    mean_accuracy: float


class RoundStrategy(abc.ABC):
    """An algorithm's per-round behaviour, driven by the engine.

    The engine owns participant selection, failure/straggler injection,
    communication accounting, evaluation cadence and history logging;
    the strategy owns only what is genuinely algorithm-specific.
    """

    #: Registry/reporting name; subclasses override.
    name: str = "abstract"
    #: False for methods with no server round-trip (local-only); the
    #: engine then skips the per-round download/upload accounting.
    charges_communication: bool = True

    @abc.abstractmethod
    def broadcast_for(
        self, engine: "RoundEngine", round_index: int, participants: np.ndarray
    ) -> list[UpdateTask]:
        """Build this round's task list (packed-row payloads).

        Tasks for clients sharing a server model must share the payload
        *object* so executors encode it once (and the batched executor
        groups them into one lockstep cohort).  Any extra traffic beyond
        the engine's one-download-per-participant baseline (e.g. IFCA's
        ``k×`` broadcast) is recorded here by the strategy.
        """

    @abc.abstractmethod
    def aggregate(
        self, engine: "RoundEngine", round_index: int, survivors: list[ClientUpdate]
    ) -> float:
        """Fold the surviving updates into the server state.

        Returns the round's train-loss statistic for the history record
        (NaN when nothing survived — the strategy keeps its state).
        Weighting must renormalise over ``survivors``.
        """

    @abc.abstractmethod
    def evaluate(
        self, engine: "RoundEngine", round_index: int
    ) -> tuple[float, np.ndarray]:
        """Table-I metric of the current server state: (mean, per-client)."""

    def current_n_clusters(self) -> int:
        """Cluster count for the history record."""
        return 1

    def on_arrivals(
        self, engine: "RoundEngine", round_index: int, arrived: np.ndarray
    ) -> None:
        """Clients newly present this round (before participant selection)."""

    def on_round_end(self, engine: "RoundEngine", outcome: RoundOutcome) -> None:
        """Post-round notification (after history logging)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class RoundEngine:
    """The shared server loop over a :class:`FederatedEnv`.

    One engine instance runs one (or several consecutive) training
    phases; it holds no model state — that lives in the strategy — only
    the environment, the scenario policy and the failure/straggler logs.
    """

    def __init__(
        self,
        env: "FederatedEnv",
        scenario: ScenarioConfig | None = None,
        phase: str = "training",
    ) -> None:
        self.env = env
        self.scenario = scenario or ScenarioConfig()
        self.phase = phase
        if self.scenario.min_clients > env.federation.n_clients:
            # Fail at construction, not rounds into the run: a floor
            # above the whole federation can never be met.
            raise ValueError(
                f"scenario min_clients ({self.scenario.min_clients}) exceeds "
                f"the federation size ({env.federation.n_clients})"
            )
        #: (round, dropped client ids) — failure middleware log.
        self.drop_log: list[tuple[int, list[int]]] = []
        #: (round, straggler client ids) — straggler middleware log.
        self.straggler_log: list[tuple[int, list[int]]] = []

    # ------------------------------------------------------------------
    # Scenario middleware
    # ------------------------------------------------------------------
    def eligible_clients(self, round_index: int) -> np.ndarray:
        """Clients present in the federation as of ``round_index``."""
        m = self.env.federation.n_clients
        arrivals = self.scenario.arrivals
        if not arrivals:
            return np.arange(m)
        return np.array(
            [cid for cid in range(m) if int(arrivals.get(cid, 1)) <= round_index],
            dtype=np.int64,
        )

    def arrivals_at(self, round_index: int) -> np.ndarray:
        """Clients whose arrival round is exactly ``round_index``."""
        arrivals = self.scenario.arrivals
        if not arrivals:
            return np.empty(0, dtype=np.int64)
        return np.array(
            sorted(cid for cid, r in arrivals.items() if int(r) == round_index),
            dtype=np.int64,
        )

    def select_participants(self, round_index: int) -> np.ndarray:
        """This round's participant set (sorted client ids).

        Full participation returns the eligible set unchanged; otherwise
        sampling draws from ``env.server_rng(round_index)`` — the same
        stream (and, with every client eligible, the same call) FedAvg's
        historical ``_participants`` used, so seeded sampled runs are
        reproduced exactly.
        """
        eligible = self.eligible_clients(round_index)
        fraction = self.scenario.client_fraction
        if fraction >= 1.0 or eligible.size <= 1:
            return eligible
        rng = self.env.server_rng(round_index)
        if eligible.size == self.env.federation.n_clients:
            return uniform_sample(
                eligible.size, fraction, rng, self.scenario.min_clients
            )
        return sample_from(eligible, fraction, rng, self.scenario.min_clients)

    def _apply_failures(
        self, tasks: Sequence[UpdateTask], round_index: int
    ) -> tuple[list[UpdateTask], list[int]]:
        """Seeded pre-training drops (legacy ``FaultyExecutor`` stream)."""
        rate = self.scenario.failure_rate
        if rate <= 0.0 or not tasks:
            return list(tasks), []
        alive, failed = [], []
        for task in tasks:
            u = rng_for(
                self.env.seed, FAILURE_TAG, round_index, task.client_id
            ).random()
            (alive if u >= rate else failed).append(task)
        if not alive:
            # Guarantee progress: keep the deterministically-first client.
            keep = min(failed, key=lambda t: t.client_id)
            alive = [keep]
            failed = [t for t in failed if t is not keep]
        return alive, sorted(t.client_id for t in failed)

    def _apply_stragglers(
        self, updates: list[ClientUpdate], round_index: int
    ) -> tuple[list[ClientUpdate], list[int]]:
        """Seeded post-training deadline misses (independent stream)."""
        rate = self.scenario.straggler_rate
        if rate <= 0.0 or not updates:
            return updates, []
        on_time, late = [], []
        for update in updates:
            u = rng_for(
                self.env.seed, STRAGGLER_TAG, round_index, update.client_id
            ).random()
            (on_time if u >= rate else late).append(update)
        if not on_time:
            keep = min(late, key=lambda u: u.client_id)
            on_time = [keep]
            late = [u for u in late if u is not keep]
        return on_time, sorted(u.client_id for u in late)

    # ------------------------------------------------------------------
    # Dispatch: broadcast accounting + middleware + executor
    # ------------------------------------------------------------------
    def dispatch(
        self,
        tasks: Sequence[UpdateTask],
        round_index: int,
        phase: str | None = None,
        charge_download: bool = True,
        charge_upload: bool = True,
    ) -> DispatchOutcome:
        """Run one task list through failure/straggler middleware.

        Downloads are charged for **every** task — a client that fails
        mid-round already consumed the broadcast — while uploads are
        charged only for clients that finished training (stragglers
        uploaded too, just late).  ``charge_upload=False`` lets callers
        with partial-weight uploads (FedClust's clustering round)
        account the upload themselves.
        """
        env = self.env
        phase = self.phase if phase is None else phase
        if charge_download and tasks:
            env.tracker.record_download(env.n_params * len(tasks), phase)
        alive, failed_ids = self._apply_failures(tasks, round_index)
        updates = env.run_updates(alive, round_index)
        if charge_upload and updates:
            env.tracker.record_upload(env.n_params * len(updates), phase)
        survivors, straggler_ids = self._apply_stragglers(updates, round_index)
        if failed_ids:
            self.drop_log.append((round_index, failed_ids))
        if straggler_ids:
            self.straggler_log.append((round_index, straggler_ids))
        return DispatchOutcome(
            survivors=survivors,
            failed=np.array(failed_ids, dtype=np.int64),
            stragglers=np.array(straggler_ids, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # The round lifecycle
    # ------------------------------------------------------------------
    def run(
        self,
        strategy: RoundStrategy,
        n_rounds: int,
        history: RunHistory,
        first_round: int = 1,
        eval_every: int = 1,
    ) -> tuple[float, np.ndarray]:
        """Run ``n_rounds`` engine rounds, appending to ``history``.

        Returns the last evaluation ``(mean accuracy, per-client
        accuracies)``; the final round is always evaluated.
        """
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        env = self.env
        m = env.federation.n_clients
        mean_acc, per_client = float("nan"), np.full(m, np.nan)
        last_round = first_round + n_rounds - 1

        for round_index in range(first_round, last_round + 1):
            t0 = time.perf_counter()
            arrived = self.arrivals_at(round_index)
            if arrived.size:
                strategy.on_arrivals(self, round_index, arrived)
            participants = self.select_participants(round_index)
            tasks = strategy.broadcast_for(self, round_index, participants)
            charge = strategy.charges_communication
            dispatched = self.dispatch(
                tasks,
                round_index,
                charge_download=charge,
                charge_upload=charge,
            )
            train_loss = strategy.aggregate(self, round_index, dispatched.survivors)
            evaluated = round_index == last_round or round_index % eval_every == 0
            if evaluated:
                mean_acc, per_client = strategy.evaluate(self, round_index)
            history.append(
                RoundRecord(
                    round_index=round_index,
                    mean_train_loss=train_loss,
                    mean_local_accuracy=mean_acc,
                    n_participants=len(participants),
                    n_clusters=strategy.current_n_clusters(),
                    uploaded_params=env.tracker.total_uploaded,
                    downloaded_params=env.tracker.total_downloaded,
                    wall_seconds=time.perf_counter() - t0,
                )
            )
            strategy.on_round_end(
                self,
                RoundOutcome(
                    round_index=round_index,
                    participants=participants,
                    survivors=dispatched.survivors,
                    failed=dispatched.failed,
                    stragglers=dispatched.stragglers,
                    arrived=arrived,
                    train_loss=train_loss,
                    evaluated=evaluated,
                    mean_accuracy=mean_acc,
                ),
            )
        return mean_acc, per_client
