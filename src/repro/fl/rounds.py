"""The round engine: one server loop shared by every algorithm.

Historically each algorithm hand-rolled its own per-round lifecycle, so
partial participation existed only inside FedAvg and failure injection
only as an executor wrapper.  This module extracts the loop once:

    select participants → broadcast packed rows → dispatch local
    training → collect survivors → aggregate → evaluate/log

:class:`RoundEngine` owns that lifecycle; algorithms are reduced to
:class:`RoundStrategy` objects with three required hooks —
``broadcast_for`` (participants → packed-row tasks), ``aggregate``
(surviving updates → new server state, returning the round's train-loss
statistic) and ``evaluate`` (the Table-I metric for the current state) —
plus optional ``on_arrivals``/``on_round_end`` notifications.

Scenario policy lives in :class:`ScenarioConfig` and composes with
**every** strategy and every executor kind (serial/thread/process/
batched), because it acts on the engine's task lists and update lists,
never on the executor or the payload format:

* **participation** — FedAvg's client fraction ``C``, sampled per round
  via :func:`repro.fl.sampling.uniform_sample` from the server RNG
  stream (``env.server_rng(round_index)``), exactly as FedAvg's
  historical loop did;
* **failures** — seeded pre-training drops on the stateless
  ``(seed, round, client)`` stream the legacy
  :class:`repro.fl.failures.FaultyExecutor` used (same tag, same
  draws).  A failed client consumed the broadcast — the download is
  charged — but never trains or uploads;
* **stragglers** — seeded post-training drops on an independent stream.
  A straggler trains and uploads, but its update arrives after the
  aggregation deadline: both transfers are charged, the update misses
  this round, and aggregation weights renormalise over the survivors
  (``packed_weighted_average`` normalises by the surviving sample
  counts, so renormalisation is automatic);
* **stale updates** — with ``staleness_decay > 0`` a straggler's
  finished work is not discarded: the engine buffers the late update
  and folds it into the *next* round's aggregation with its weight
  multiplied by ``staleness_decay ** age`` (age in rounds).  A client
  that produces a fresh update before its stale one is folded
  supersedes it (the buffered copy is dropped), so aggregation never
  sees two updates from one client.  Weights renormalise over
  survivors + stale arrivals automatically;
* **compute budgets** — deadline as computation, not time: with
  ``compute_budget=(lo, hi)`` every participant draws a seeded
  per-(round, client) local step cap from ``[lo, hi]`` and its local
  training is truncated there.  Partial work is **kept** — the client
  uploads whatever it reached — and aggregation switches to
  FedNova-style renormalisation by steps actually taken (each update's
  weight is its step count, so the denominator is the cohort's total
  steps and a zero-budget client provably contributes nothing);
* **arrivals** — clients that join the federation mid-run.  They are
  ineligible for participation before their arrival round; strategies
  are told via ``on_arrivals`` (FedClust routes this into its newcomer
  onboarding);
* **departures** — the dual of arrivals: a client with departure round
  ``r`` is ineligible from round ``r`` on (it must depart strictly
  after it arrived).  Strategies are told via ``on_departures``; a
  departed client's already-uploaded stale update still folds (the
  server holds it), and evaluation keeps covering the client — its
  data did not leave the benchmark, only its participation;
* **availability traces** — the fully-explicit schedule: a replayable
  ``client_id → available-round-set`` mapping
  (:class:`repro.fl.trace.AvailabilityTrace`, JSON on disk, loadable
  from the CLI via ``--trace``) that subsumes arrivals, departures and
  recorded blackout rounds.  Traces compose with the other knobs by
  intersection; a trace absence charges no traffic (the client was
  never contacted — unlike a failure, which consumed the broadcast);
* **corruption** — seeded per-(dispatch round, client) events on their
  own stream (:data:`repro.fl.defense.CORRUPTION_TAG`) that mangle the
  *returned* update row (NaN/Inf poisoning, sign flips, scaled noise).
  The event acts on the update list at the executor boundary, so every
  executor kind and the async in-flight path see identical corruption;
* **admission + robust aggregation** — before aggregation every
  survivor row passes a finiteness guard (always on) and an optional
  norm-bound guard; rejects land in ``engine.quarantine_log`` with
  reason codes, keep their upload charge (the bytes crossed the
  network), and are excluded from weight renormalisation.
  ``robust_agg`` swaps the plain weighted average at the shared choke
  point (:func:`repro.algorithms.base.survivor_weighted_average`) for
  norm-clipping, a coordinate-wise trimmed mean, or the coordinate-wise
  median — ``"none"`` stays byte-for-byte the historical rule;
* **survivor quorum + retry** — ``min_survivors=q`` with
  ``max_retries=r`` redispatches the failed/quarantined remainder on a
  fresh seeded epoch (``round + 1_000_000 × attempt``, the retry
  derivation FedClust's clustering round pioneered — now an engine
  primitive, :meth:`RoundEngine.dispatch_with_retry`).  Still below
  quorum after the retries, the round degrades gracefully: server state
  frozen, NaN loss, ``RoundRecord.quorum_failed=True`` — never an
  aggregate over a cohort too small to trust;
* **checkpoint/resume** — with a
  :class:`repro.fl.defense.CheckpointConfig` on the scenario the engine
  writes a versioned single-file checkpoint on a round cadence (server
  rows at wire dtype, round counter, buffers, logs, traffic, history)
  and can resume from it; a resumed run reproduces the uninterrupted
  one bit-identically because all middleware randomness is stateless in
  (seed, round, client) — the file only needs the round counter, never
  a generator state.

At least one participant always survives a *dispatched* round (a round
whose whole cohort fails or misses the deadline would deadlock
aggregation; a real server would re-broadcast instead) — the
deterministically-first client by id is kept, mirroring the historical
``FaultyExecutor`` guarantee.  The guarantee is about the middleware,
not the schedule: an availability trace may legitimately leave a round
with **no eligible clients at all** (a replayed federation can go
fully dark).  Such a round dispatches nothing; every strategy keeps
its state and logs a NaN train loss, and evaluation still runs on its
cadence.

Under the default scenario (full participation, no failures) the engine
performs exactly the tracker calls and aggregation arithmetic of the
pre-engine per-algorithm loops, so seeded runs are bit-identical — the
parity suite in ``tests/test_fl_rounds.py`` gates this per algorithm
and per executor kind.
"""

from __future__ import annotations

import abc
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.fl.client import ClientUpdate
from repro.fl.defense import (
    CORRUPTION_TAG,
    ROBUST_AGG_MODES,
    CheckpointConfig,
    CheckpointError,
    CorruptionConfig,
    admit_updates,
    load_checkpoint,
    maybe_corrupt,
    rebuild_update,
    save_checkpoint,
    update_row,
    update_to_meta,
)
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.parallel import InFlightBuffer, UpdateTask
from repro.fl.sampling import sample_from, uniform_sample
from repro.fl.trace import AvailabilityTrace
from repro.utils.rng import rng_for
from repro.utils.validation import check_fraction, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable
    from pathlib import Path

    from repro.fl.simulation import FederatedEnv

__all__ = [
    "FAILURE_TAG",
    "STRAGGLER_TAG",
    "BUDGET_TAG",
    "DURATION_TAG",
    "CORRUPTION_TAG",
    "AsyncConfig",
    "ScenarioConfig",
    "CorruptionConfig",
    "CheckpointConfig",
    "CheckpointError",
    "DispatchOutcome",
    "RoundOutcome",
    "RoundStrategy",
    "RoundEngine",
    "aggregation_weights",
    "discounted_update",
]

#: rng_for namespace tag of the failure stream.  Value 13 is load-bearing:
#: it is the stream the legacy ``FaultyExecutor`` drew from, so scenario
#: failures reproduce the exact drop sets of historical faulty runs.
FAILURE_TAG = 13
#: Straggler draws use an independent stream.
STRAGGLER_TAG = 17
#: Per-(round, client) compute-budget draws use their own stream.
BUDGET_TAG = 19
#: Per-(dispatch round, client) training-duration draws for the async
#: engine use their own stream, so async interleavings are a pure
#: function of (seed, scenario) — deterministic and executor-invariant.
DURATION_TAG = 23


def aggregation_weights(updates: Sequence[ClientUpdate]) -> np.ndarray:
    """Effective aggregation weight per update, as a float64 vector.

    The one place scenario middleware bends the FedAvg weighting rule:
    an update whose ``weight`` is set carries it (compute budgets set it
    to the steps actually taken, stale folding multiplies in the
    staleness discount); everything else falls back to the historical
    sample count.  Strategies must renormalise over whatever subset they
    aggregate — :func:`repro.fl.aggregation.packed_weighted_average`
    normalises by the weight sum, so passing this vector does it.
    """
    return np.array(
        [
            u.weight if u.weight is not None else float(u.n_samples)
            for u in updates
        ],
        dtype=np.float64,
    )


def discounted_update(
    update: ClientUpdate, decay: float, age: int
) -> ClientUpdate:
    """A *copy* of ``update`` carrying the staleness-discounted weight.

    The folded weight is ``base × decay ** age`` where ``base`` is the
    update's effective aggregation weight (its ``weight`` if set —
    compute budgets set it to steps taken — else its sample count).
    The input object is never mutated: buffers that observe the same
    update twice (async re-buffering, trace replay, a strategy keeping
    a reference) must not compound the discount.  The copy is shallow —
    the flat row and state mapping are shared, which is safe because
    aggregation only reads them.
    """
    import dataclasses

    base = update.weight if update.weight is not None else float(update.n_samples)
    return dataclasses.replace(update, weight=base * decay**age)


@dataclass(frozen=True)
class AsyncConfig:
    """FedBuff-style event-stream policy: dispatch ≠ aggregation.

    With an ``AsyncConfig`` on the scenario, the engine stops running
    lockstep rounds.  Each server step it dispatches fresh work to free
    clients (up to ``max_concurrency`` total in flight), every dispatch
    draws a seeded per-(dispatch round, client) *training duration* in
    server steps (tag :data:`DURATION_TAG`, uniform over
    ``duration_range``), and a client's update arrives at the server
    ``duration`` steps after dispatch.  Arrivals accumulate in a buffer;
    whenever ``buffer_size`` updates are buffered the server aggregates
    the whole buffer, discounting each update by ``decay ** age`` (age =
    aggregation round − dispatch round; ``staleness_decay == 0`` means
    undiscounted — async has no "discard stragglers" mode, lateness is
    the normal case).

    The synchronous engine is the exact special case
    ``buffer_size = |participants|``, ``duration_range = (1, 1)``,
    ``max_concurrency = None``: every dispatched update arrives in its
    own dispatch round and the buffer fills exactly once per round.

    Attributes
    ----------
    buffer_size:
        K: aggregate whenever this many updates are buffered.  The final
        round flushes a partially-filled buffer so arrived work is never
        discarded.
    max_concurrency:
        M: cap on clients concurrently in flight (``None`` = unbounded).
        When the cap binds, the deterministically-lowest client ids of
        the round's selection are dispatched.
    duration_range:
        ``(lo, hi)`` server-step training durations (an int is shorthand
        for ``(d, d)``); each dispatch draws uniformly from ``[lo, hi]``.
        A duration of 1 completes within its dispatch round.
    """

    buffer_size: int = 1
    max_concurrency: int | None = None
    duration_range: tuple[int, int] | int = (1, 3)

    def __post_init__(self) -> None:
        check_positive("buffer_size", self.buffer_size)
        if self.max_concurrency is not None:
            check_positive("max_concurrency", self.max_concurrency)
        duration = self.duration_range
        if isinstance(duration, (int, np.integer)):
            duration = (int(duration), int(duration))
        else:
            duration = tuple(int(d) for d in duration)
        if len(duration) != 2:
            raise ValueError(
                "duration_range must be an int or a (lo, hi) pair, "
                f"got {self.duration_range!r}"
            )
        lo, hi = duration
        if lo < 1 or hi < lo:
            raise ValueError(
                f"duration_range needs 1 <= lo <= hi, got ({lo}, {hi})"
            )
        object.__setattr__(self, "duration_range", (lo, hi))


@dataclass(frozen=True)
class ScenarioConfig:
    """System-heterogeneity policy for a run; composes with any strategy.

    Attributes
    ----------
    client_fraction:
        FedAvg's ``C``: fraction of eligible clients sampled per round
        (1.0 = full participation).
    min_clients:
        Participation floor passed to :func:`uniform_sample`.
    failure_rate:
        Per-(round, client) probability that a participant goes dark
        before training.  Download charged, no upload, no update.
    straggler_rate:
        Per-(round, client) probability that a participant finishes too
        late for aggregation.  Download and upload charged, update
        discarded; aggregation renormalises over the survivors.
    arrivals:
        ``client_id → arrival round`` for clients that join mid-run;
        unlisted clients are present from the start.  A client is
        ineligible for participation in rounds before its arrival round;
        strategies learn about arrivals via
        :meth:`RoundStrategy.on_arrivals`.
    staleness_decay:
        ``0`` (default) discards straggler updates exactly as before.
        A value in ``(0, 1]`` enables stale-update folding: a
        straggler's update is buffered and folded into the next round's
        aggregation with its weight multiplied by ``decay ** age``
        (age in rounds; normally 1).  ``1.0`` means "late but
        undiscounted".
    compute_budget:
        ``None`` (default) leaves local schedules untouched.  A pair
        ``(lo, hi)`` (or a single int, shorthand for ``(b, b)``) caps
        every participant's local SGD at a seeded per-(round, client)
        step count drawn uniformly from ``[lo, hi]``.  Partial work is
        kept and aggregation weights become the steps actually taken
        (FedNova-style); a zero-step draw contributes no update.
    departures:
        ``client_id → departure round``: the client is ineligible from
        that round on.  A departure must come strictly after the
        client's arrival round (default arrival: round 1), so the
        earliest legal departure is round 2 for a founding client.
    trace:
        An :class:`repro.fl.trace.AvailabilityTrace` (or a plain
        ``client_id → iterable-of-rounds`` mapping, coerced) naming
        exactly which rounds each listed client is reachable; unlisted
        clients are always on.  Composes with arrivals/departures by
        intersection.
    async_config:
        ``None`` (default) keeps the synchronous lockstep loop.  An
        :class:`AsyncConfig` switches the engine to the FedBuff-style
        event-stream loop: dispatch and aggregation decouple, clients
        stay in flight across server steps, and ``staleness_decay``
        becomes the per-step-of-age buffer discount.  Incompatible with
        ``straggler_rate`` — stragglers are a synchronous-deadline
        concept; model latency via ``duration_range`` instead.  All
        other middleware (participation, failures, budgets, arrivals,
        departures, traces) composes unchanged.
    corruption:
        ``None`` (default) returns every update pristine.  A
        :class:`repro.fl.defense.CorruptionConfig` draws seeded
        per-(dispatch round, client) corruption events that mangle the
        returned update row (NaN/Inf poisoning, sign flip, scaled
        noise) before it reaches admission — the fault-injection dual
        of the admission/robust-aggregation defenses below.
    robust_agg:
        Aggregation rule at the shared choke point: one of
        ``("none", "clip", "trimmed_mean", "coordinate_median")``.
        ``"none"`` (default) is byte-for-byte the historical weighted
        average; see :func:`repro.fl.defense.robust_weighted_average`.
    trim_fraction:
        Per-side trim for ``robust_agg="trimmed_mean"`` (inert under
        any other mode).
    norm_bound:
        ``None`` (default) admits any finite update.  A positive factor
        quarantines rows whose L2 norm exceeds ``norm_bound ×`` the
        median norm of their dispatch batch (reason code
        ``"norm_bound"``).  Non-finite rows are always quarantined
        (reason code ``"non_finite"``), bound or no bound.
    min_survivors:
        Quorum: the minimum admitted on-time survivors a synchronous
        round needs before aggregating.  ``0`` (default) keeps the
        historical behaviour (any survivor folds).  Below quorum the
        engine retries the failed/quarantined remainder up to
        ``max_retries`` times on fresh seeded epochs; still short, the
        round freezes state and records ``quorum_failed``.  Async runs
        must leave this at 0 — ``AsyncConfig.buffer_size`` *is* the
        async quorum.
    max_retries:
        Redispatch attempts per round while below ``min_survivors``.
    checkpoint:
        ``None`` (default) never touches disk.  A
        :class:`repro.fl.defense.CheckpointConfig` (or a bare
        directory, coerced) makes the engine write a resumable
        checkpoint file every ``every`` rounds; with ``resume=True``
        :meth:`RoundEngine.run` restores from an existing file before
        its first round.
    """

    client_fraction: float = 1.0
    min_clients: int = 1
    failure_rate: float = 0.0
    straggler_rate: float = 0.0
    arrivals: Mapping[int, int] | None = None
    staleness_decay: float = 0.0
    compute_budget: tuple[int, int] | int | None = None
    departures: Mapping[int, int] | None = None
    trace: AvailabilityTrace | Mapping | None = None
    async_config: AsyncConfig | None = None
    corruption: CorruptionConfig | None = None
    robust_agg: str = "none"
    trim_fraction: float = 0.1
    norm_bound: float | None = None
    min_survivors: int = 0
    max_retries: int = 0
    checkpoint: CheckpointConfig | None = None

    def __post_init__(self) -> None:
        check_fraction("client_fraction", self.client_fraction)
        check_positive("min_clients", self.min_clients)
        for name in ("failure_rate", "straggler_rate"):
            rate = getattr(self, name)
            check_fraction(name, rate, inclusive_low=True)
            if rate >= 1.0:
                raise ValueError(f"{name} must be < 1 (someone must survive)")
        if self.arrivals:
            bad = {c: r for c, r in self.arrivals.items() if int(r) < 1}
            if bad:
                raise ValueError(f"arrival rounds must be >= 1, got {bad}")
        if not 0.0 <= self.staleness_decay <= 1.0:
            raise ValueError(
                f"staleness_decay must be in [0, 1], got {self.staleness_decay!r}"
            )
        if self.compute_budget is not None:
            budget = self.compute_budget
            if isinstance(budget, (int, np.integer)):
                budget = (int(budget), int(budget))
            else:
                budget = tuple(int(b) for b in budget)
            if len(budget) != 2:
                raise ValueError(
                    "compute_budget must be an int or a (lo, hi) pair, "
                    f"got {self.compute_budget!r}"
                )
            lo, hi = budget
            if lo < 0 or hi < lo:
                raise ValueError(
                    f"compute_budget needs 0 <= lo <= hi, got ({lo}, {hi})"
                )
            object.__setattr__(self, "compute_budget", (lo, hi))
        if self.departures:
            arrivals = self.arrivals or {}
            for cid, dep in self.departures.items():
                arrival = int(arrivals.get(cid, 1))
                if int(dep) <= arrival:
                    raise ValueError(
                        f"client {cid} departs in round {dep} but only arrives "
                        f"in round {arrival} — departures must come strictly "
                        "after arrival"
                    )
        if self.trace is not None and not isinstance(self.trace, AvailabilityTrace):
            object.__setattr__(self, "trace", AvailabilityTrace(self.trace))
        if self.async_config is not None and self.straggler_rate > 0.0:
            raise ValueError(
                "straggler_rate composes only with the synchronous engine "
                "— under async dispatch there is no aggregation deadline "
                "to miss; model client latency via "
                "AsyncConfig.duration_range instead"
            )
        if self.robust_agg not in ROBUST_AGG_MODES:
            raise ValueError(
                f"unknown robust_agg {self.robust_agg!r}; "
                f"options: {ROBUST_AGG_MODES}"
            )
        if not 0.0 < self.trim_fraction < 0.5:
            raise ValueError(
                f"trim_fraction must be in (0, 0.5), got {self.trim_fraction!r}"
            )
        if self.norm_bound is not None:
            check_positive("norm_bound", self.norm_bound)
        if self.min_survivors < 0:
            raise ValueError(
                f"min_survivors must be >= 0, got {self.min_survivors!r}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.async_config is not None and (
            self.min_survivors > 0 or self.max_retries > 0
        ):
            raise ValueError(
                "min_survivors/max_retries compose only with the "
                "synchronous engine — the async aggregation trigger "
                "(AsyncConfig.buffer_size) already is a survivor quorum, "
                "and lateness has no deadline to retry against"
            )
        if self.checkpoint is not None and not isinstance(
            self.checkpoint, CheckpointConfig
        ):
            # A bare directory is the common CLI shape.
            object.__setattr__(
                self, "checkpoint", CheckpointConfig(directory=self.checkpoint)
            )

    @property
    def is_default(self) -> bool:
        """True for the paper-scale scenario: everyone, every round."""
        return (
            self.client_fraction >= 1.0
            and self.failure_rate == 0.0
            and self.straggler_rate == 0.0
            and not self.arrivals
            and self.staleness_decay == 0.0
            and self.compute_budget is None
            and not self.departures
            and self.trace is None
            and self.async_config is None
            and (self.corruption is None or self.corruption.rate == 0.0)
            and self.robust_agg == "none"
            and self.norm_bound is None
            and self.min_survivors == 0
            and self.checkpoint is None
        )

    def validate_for(self, n_clients: int) -> None:
        """Reject client ids outside ``[0, n_clients)`` in any schedule.

        Called by the engine at construction (the config itself cannot
        know the federation size): a trace, arrival or departure that
        names an unknown client is a configuration error, not a client
        that silently never materialises.
        """
        for name, ids in (
            ("arrivals", self.arrivals or {}),
            ("departures", self.departures or {}),
            ("trace", self.trace.clients if self.trace is not None else ()),
        ):
            bad = sorted(int(c) for c in ids if not 0 <= int(c) < n_clients)
            if bad:
                raise ValueError(
                    f"{name} references unknown client ids {bad} — this "
                    f"federation has clients 0..{n_clients - 1}"
                )


@dataclass
class DispatchOutcome:
    """What came back from one dispatched task list.

    ``late`` holds the straggler updates themselves — populated only
    when stale folding is on (the default path must not keep dead
    updates alive across the next round's cohort allocation).
    ``quarantined`` holds the admission rejects as ``(client id,
    reason)`` pairs; the same pairs are appended to the engine's
    ``quarantine_log``.
    """

    survivors: list[ClientUpdate]
    failed: np.ndarray
    stragglers: np.ndarray
    late: list[ClientUpdate] = field(default_factory=list)
    quarantined: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class RoundOutcome:
    """Everything that happened in one engine round."""

    round_index: int
    participants: np.ndarray
    survivors: list[ClientUpdate]
    failed: np.ndarray
    stragglers: np.ndarray
    arrived: np.ndarray
    train_loss: float
    evaluated: bool
    mean_accuracy: float
    #: Client ids whose stale (previous-round) updates were folded into
    #: this round's aggregation.
    stale: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Client ids that departed at the start of this round.
    departed: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))


class RoundStrategy(abc.ABC):
    """An algorithm's per-round behaviour, driven by the engine.

    The engine owns participant selection, failure/straggler injection,
    communication accounting, evaluation cadence and history logging;
    the strategy owns only what is genuinely algorithm-specific.
    """

    #: Registry/reporting name; subclasses override.
    name: str = "abstract"
    #: False for methods with no server round-trip (local-only); the
    #: engine then skips the per-round download/upload accounting.
    charges_communication: bool = True

    @abc.abstractmethod
    def broadcast_for(
        self, engine: "RoundEngine", round_index: int, participants: np.ndarray
    ) -> list[UpdateTask]:
        """Build this round's task list (packed-row payloads).

        Tasks for clients sharing a server model must share the payload
        *object* so executors encode it once (and the batched executor
        groups them into one lockstep cohort).  Any extra traffic beyond
        the engine's one-download-per-participant baseline (e.g. IFCA's
        ``k×`` broadcast) is recorded here by the strategy.
        """

    @abc.abstractmethod
    def aggregate(
        self, engine: "RoundEngine", round_index: int, survivors: list[ClientUpdate]
    ) -> float:
        """Fold the surviving updates into the server state.

        Returns the round's train-loss statistic for the history record
        (NaN when nothing survived — the strategy keeps its state).
        Weighting must renormalise over ``survivors``.
        """

    @abc.abstractmethod
    def evaluate(
        self, engine: "RoundEngine", round_index: int
    ) -> tuple[float, np.ndarray]:
        """Table-I metric of the current server state: (mean, per-client)."""

    def current_n_clusters(self) -> int:
        """Cluster count for the history record."""
        return 1

    def on_arrivals(
        self, engine: "RoundEngine", round_index: int, arrived: np.ndarray
    ) -> None:
        """Clients newly present this round (before participant selection)."""

    def on_departures(
        self, engine: "RoundEngine", round_index: int, departed: np.ndarray
    ) -> None:
        """Clients gone from this round on (before participant selection).

        The dual of :meth:`on_arrivals`.  Departed clients stay in the
        evaluation population (their data still benchmarks the served
        model); strategies that key per-client server state may want to
        freeze or archive it here.
        """

    def on_round_end(self, engine: "RoundEngine", outcome: RoundOutcome) -> None:
        """Post-round notification (after history logging)."""

    def checkpoint_payload(
        self, engine: "RoundEngine"
    ) -> tuple[dict, dict[str, np.ndarray]]:
        """Serialise the strategy's server state for a checkpoint.

        Returns ``(meta, arrays)``: JSON-ready scalars plus named numpy
        arrays.  Server model rows must be stored at the layout's wire
        dtype (``engine.env.layout.wire_dtype``) — every post-aggregate
        row is a ``round_trip`` result, so the narrow dtype round-trips
        it exactly and the file stays small.  The default refuses
        loudly: checkpointing a strategy that cannot rebuild its state
        would resume from garbage.
        """
        raise NotImplementedError(
            f"strategy {self.name!r} does not support checkpointing — "
            "it implements no checkpoint_payload()/restore_payload()"
        )

    def restore_payload(
        self, engine: "RoundEngine", meta: Mapping, arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Inverse of :meth:`checkpoint_payload`."""
        raise NotImplementedError(
            f"strategy {self.name!r} does not support checkpointing — "
            "it implements no checkpoint_payload()/restore_payload()"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class RoundEngine:
    """The shared server loop over a :class:`FederatedEnv`.

    One engine instance runs one (or several consecutive) training
    phases; it holds no model state — that lives in the strategy — only
    the environment, the scenario policy and the failure/straggler logs.
    """

    def __init__(
        self,
        env: "FederatedEnv",
        scenario: ScenarioConfig | None = None,
        phase: str = "training",
    ) -> None:
        self.env = env
        self.scenario = scenario or ScenarioConfig()
        self.phase = phase
        if self.scenario.min_clients > env.federation.n_clients:
            # Fail at construction, not rounds into the run: a floor
            # above the whole federation can never be met.
            raise ValueError(
                f"scenario min_clients ({self.scenario.min_clients}) exceeds "
                f"the federation size ({env.federation.n_clients})"
            )
        if self.scenario.min_survivors > env.federation.n_clients:
            raise ValueError(
                f"scenario min_survivors ({self.scenario.min_survivors}) "
                f"exceeds the federation size ({env.federation.n_clients}) "
                "— the quorum could never be met"
            )
        self.scenario.validate_for(env.federation.n_clients)
        #: (round, dropped client ids) — failure middleware log.
        self.drop_log: list[tuple[int, list[int]]] = []
        #: (round, straggler client ids) — straggler middleware log.
        self.straggler_log: list[tuple[int, list[int]]] = []
        #: (round, folded stale client ids) — stale-update middleware log.
        self.stale_log: list[tuple[int, list[int]]] = []
        #: (round, departed client ids) — departure middleware log.
        self.departure_log: list[tuple[int, list[int]]] = []
        #: (round, dispatched client ids) — every cohort the engine sent
        #: work to, including clients that then failed or straggled.
        #: Together with drop/straggler logs this is the realized
        #: schedule (:meth:`realized_trace`).
        self.participation_log: list[tuple[int, list[int]]] = []
        #: (round, [(client id, reason), ...]) — admission rejects.
        #: Reasons are the :mod:`repro.fl.defense` codes
        #: (``"non_finite"``, ``"norm_bound"``).  Retry dispatches log
        #: under their derived epoch (``round + 1_000_000 × attempt``),
        #: like the drop log.
        self.quarantine_log: list[tuple[int, list[tuple[int, str]]]] = []
        #: Admission rejects observed in the round currently running
        #: (feeds ``RoundRecord.n_quarantined``; reset per round).
        self._quarantined_this_round = 0
        #: client id → (round produced, late update) awaiting folding.
        self._stale_buffer: dict[int, tuple[int, ClientUpdate]] = {}
        #: Async mode: dispatched-but-undelivered work (durations drawn
        #: on the DURATION_TAG stream decide the delivery round).
        self._in_flight = InFlightBuffer()
        #: Async mode: (dispatch round, update) pairs arrived at the
        #: server but not yet aggregated.
        self._async_buffer: list[tuple[int, ClientUpdate]] = []
        #: Async throughput counters (updates-absorbed/sec benchmark).
        self.n_aggregation_events = 0
        self.n_updates_absorbed = 0
        #: Run-state stash so ``engine.checkpoint(path)`` works without
        #: arguments mid-run (e.g. from an ``on_round_end`` hook).
        self._run_strategy: RoundStrategy | None = None
        self._run_history: RunHistory | None = None
        self._next_round = 1
        self._last_eval: tuple[float, np.ndarray] = (
            float("nan"),
            np.full(env.federation.n_clients, np.nan),
        )

    @property
    def is_async(self) -> bool:
        """True when the scenario runs the event-stream (FedBuff) loop."""
        return self.scenario.async_config is not None

    @property
    def admission_active(self) -> bool:
        """True when updates pass the admission scan before aggregation.

        Admission guards are armed by any hardening knob — corruption
        injection (the scenario *creates* non-finite rows), a norm
        bound, a robust aggregation rule, or a survivor quorum.  The
        default scenario skips the scan: a full-cohort finiteness pass
        reads the whole ``(cohort, n_params)`` plane every round
        (~27 ms at 64 × 395k), which is pure overhead on the
        bit-identical fast path the engine-overhead gate pins.
        """
        s = self.scenario
        return (
            (s.corruption is not None and s.corruption.rate > 0.0)
            or s.norm_bound is not None
            or s.robust_agg != "none"
            or s.min_survivors > 0
        )

    @property
    def robust_kwargs(self) -> dict:
        """Keyword arguments carrying the scenario's aggregation rule.

        Strategies splat this into every
        :func:`repro.algorithms.base.survivor_weighted_average` call so
        the robust-aggregation policy reaches all choke-point call
        sites without each strategy growing its own plumbing.
        """
        return {
            "robust_agg": self.scenario.robust_agg,
            "trim_fraction": self.scenario.trim_fraction,
        }

    # ------------------------------------------------------------------
    # Scenario middleware
    # ------------------------------------------------------------------
    def eligible_clients(self, round_index: int) -> np.ndarray:
        """Clients present in the federation as of ``round_index``.

        Intersection of the three presence schedules: arrived (arrival
        round ≤ now), not yet departed (departure round > now), and
        available per the trace (unlisted clients are always on).
        """
        m = self.env.federation.n_clients
        scenario = self.scenario
        arrivals = scenario.arrivals
        departures = scenario.departures
        trace = scenario.trace
        if not arrivals and not departures and trace is None:
            return np.arange(m)
        eligible = []
        for cid in range(m):
            if arrivals and int(arrivals.get(cid, 1)) > round_index:
                continue
            if departures and cid in departures and int(departures[cid]) <= round_index:
                continue
            if trace is not None and not trace.available(cid, round_index):
                continue
            eligible.append(cid)
        return np.array(eligible, dtype=np.int64)

    def arrivals_at(self, round_index: int) -> np.ndarray:
        """Clients whose arrival round is exactly ``round_index``."""
        arrivals = self.scenario.arrivals
        if not arrivals:
            return np.empty(0, dtype=np.int64)
        return np.array(
            sorted(cid for cid, r in arrivals.items() if int(r) == round_index),
            dtype=np.int64,
        )

    def departures_at(self, round_index: int) -> np.ndarray:
        """Clients whose departure round is exactly ``round_index``."""
        departures = self.scenario.departures
        if not departures:
            return np.empty(0, dtype=np.int64)
        return np.array(
            sorted(cid for cid, r in departures.items() if int(r) == round_index),
            dtype=np.int64,
        )

    def select_participants(
        self, round_index: int, exclude: Sequence[int] | None = None
    ) -> np.ndarray:
        """This round's participant set (sorted client ids).

        Full participation returns the eligible set unchanged; otherwise
        sampling draws from ``env.server_rng(round_index)`` — the same
        stream (and, with every client eligible, the same call) FedAvg's
        historical ``_participants`` used, so seeded sampled runs are
        reproduced exactly.

        ``exclude`` removes clients from the eligible pool before
        sampling — the async loop passes the in-flight set so a client
        is never dispatched twice concurrently.  An empty/None exclusion
        leaves the synchronous draw sequence untouched.
        """
        eligible = self.eligible_clients(round_index)
        if exclude is not None and len(exclude) and eligible.size:
            gone = np.asarray(sorted(int(c) for c in exclude), dtype=np.int64)
            eligible = eligible[~np.isin(eligible, gone)]
        fraction = self.scenario.client_fraction
        if fraction >= 1.0 or eligible.size <= 1:
            return eligible
        rng = self.env.server_rng(round_index)
        if eligible.size == self.env.federation.n_clients:
            return uniform_sample(
                eligible.size, fraction, rng, self.scenario.min_clients
            )
        return sample_from(eligible, fraction, rng, self.scenario.min_clients)

    def _apply_failures(
        self, tasks: Sequence[UpdateTask], round_index: int
    ) -> tuple[list[UpdateTask], list[int]]:
        """Seeded pre-training drops (legacy ``FaultyExecutor`` stream)."""
        rate = self.scenario.failure_rate
        if rate <= 0.0 or not tasks:
            return list(tasks), []
        alive, failed = [], []
        for task in tasks:
            u = rng_for(
                self.env.seed, FAILURE_TAG, round_index, task.client_id
            ).random()
            (alive if u >= rate else failed).append(task)
        if not alive:
            # Guarantee progress: keep the deterministically-first client.
            keep = min(failed, key=lambda t: t.client_id)
            alive = [keep]
            failed = [t for t in failed if t is not keep]
        return alive, sorted(t.client_id for t in failed)

    def _apply_stragglers(
        self, updates: list[ClientUpdate], round_index: int
    ) -> tuple[list[ClientUpdate], list[ClientUpdate]]:
        """Seeded post-training deadline misses (independent stream)."""
        rate = self.scenario.straggler_rate
        if rate <= 0.0 or not updates:
            return updates, []
        on_time, late = [], []
        for update in updates:
            u = rng_for(
                self.env.seed, STRAGGLER_TAG, round_index, update.client_id
            ).random()
            (on_time if u >= rate else late).append(update)
        if not on_time:
            keep = min(late, key=lambda u: u.client_id)
            on_time = [keep]
            late = [u for u in late if u is not keep]
        return on_time, late

    def _apply_budgets(self, tasks: Sequence[UpdateTask], round_index: int) -> None:
        """Stamp each task with its seeded per-(round, client) step cap.

        Draws are uniform over the configured ``[lo, hi]`` on an
        independent stream (tag :data:`BUDGET_TAG`), so the budget
        schedule is reproducible across executors and compositions.  A
        caller-set ``max_steps`` on a task is only ever tightened.
        """
        budget = self.scenario.compute_budget
        if budget is None:
            return
        lo, hi = budget
        for task in tasks:
            drawn = int(
                rng_for(
                    self.env.seed, BUDGET_TAG, round_index, task.client_id
                ).integers(lo, hi + 1)
            )
            task.max_steps = (
                drawn if task.max_steps is None else min(task.max_steps, drawn)
            )

    def _fold_stale(
        self, round_index: int, dispatched: DispatchOutcome
    ) -> list[int]:
        """Stale-update middleware: fold buffered late work, buffer new.

        Every buffered update either folds into this round's survivor
        list (weight × ``decay ** age``) or is dropped because its
        client delivered a fresh update this round; the buffer then
        takes on this round's stragglers for a future round.  Returns
        the folded client ids (sorted).
        """
        decay = self.scenario.staleness_decay
        if decay <= 0.0:
            return []
        folded: list[int] = []
        fresh = {u.client_id for u in dispatched.survivors}
        for cid in sorted(self._stale_buffer):
            produced, update = self._stale_buffer.pop(cid)
            if cid in fresh:
                continue  # superseded: one update per client per round
            age = round_index - produced
            # Fold a discounted *copy*: the buffered object stays
            # pristine, so a path that observes the same update twice
            # can never compound the decay.
            dispatched.survivors.append(discounted_update(update, decay, age))
            folded.append(cid)
        for update in dispatched.late:
            self._stale_buffer[update.client_id] = (round_index, update)
        if folded:
            self.stale_log.append((round_index, folded))
        return folded

    # ------------------------------------------------------------------
    # Dispatch: broadcast accounting + middleware + executor
    # ------------------------------------------------------------------
    def dispatch(
        self,
        tasks: Sequence[UpdateTask],
        round_index: int,
        phase: str | None = None,
        charge_download: bool = True,
        charge_upload: bool = True,
    ) -> DispatchOutcome:
        """Run one task list through failure/straggler middleware.

        Downloads are charged for **every** task — a client that fails
        mid-round already consumed the broadcast — while uploads are
        charged only for clients that finished training (stragglers
        uploaded too, just late).  ``charge_upload=False`` lets callers
        with partial-weight uploads (FedClust's clustering round)
        account the upload themselves.

        Corruption events fire on the returned updates (after the
        upload charge — the corrupted bytes crossed the network), then
        — when any hardening knob arms :attr:`admission_active` —
        every update passes admission before the straggler split:
        quarantined clients are neither survivors nor stale candidates,
        and a quarantined straggler never reaches the stale buffer.
        Because admission runs here, the downstream buffers (stale,
        async in-flight delivery aside) only ever hold admitted rows.
        """
        env = self.env
        phase = self.phase if phase is None else phase
        if charge_download and tasks:
            env.tracker.record_download(env.n_params * len(tasks), phase)
        alive, failed_ids = self._apply_failures(tasks, round_index)
        self._apply_budgets(alive, round_index)
        updates = env.run_updates(alive, round_index)
        updates = self._apply_corruption(updates, round_index)
        if charge_upload and updates:
            env.tracker.record_upload(env.n_params * len(updates), phase)
        if self.scenario.compute_budget is not None:
            # FedNova-style renormalisation: weight by steps actually
            # taken, so a budget-truncated client counts for what it
            # computed and a zero-step client counts for nothing.
            for update in updates:
                update.weight = float(update.n_batches)
        updates, quarantined = self._admit(updates, round_index)
        survivors, late = self._apply_stragglers(updates, round_index)
        straggler_ids = sorted(u.client_id for u in late)
        if failed_ids:
            self.drop_log.append((round_index, failed_ids))
        if straggler_ids:
            self.straggler_log.append((round_index, straggler_ids))
        return DispatchOutcome(
            survivors=survivors,
            failed=np.array(failed_ids, dtype=np.int64),
            stragglers=np.array(straggler_ids, dtype=np.int64),
            # Keep the late updates alive only when stale folding wants
            # them — otherwise they must die here (buffer-lifetime
            # hygiene: dead cohort-sized buffers cost page faults).
            late=late if self.scenario.staleness_decay > 0.0 else [],
            quarantined=quarantined,
        )

    def _apply_corruption(
        self, updates: list[ClientUpdate], round_index: int
    ) -> list[ClientUpdate]:
        """Corruption middleware: seeded per-(round, client) mangling."""
        corruption = self.scenario.corruption
        if corruption is None or corruption.rate <= 0.0 or not updates:
            return updates
        env = self.env
        return [
            maybe_corrupt(u, env.seed, round_index, corruption, env.layout)
            for u in updates
        ]

    def _admit(
        self, updates: list[ClientUpdate], round_index: int
    ) -> tuple[list[ClientUpdate], list[tuple[int, str]]]:
        """Admission middleware: quarantine rows the server won't fold."""
        if not self.admission_active:
            return updates, []
        admitted, rejected = admit_updates(
            updates, self.env.layout, self.scenario.norm_bound
        )
        if rejected:
            self.quarantine_log.append((round_index, rejected))
            self._quarantined_this_round += len(rejected)
        return admitted, rejected

    def dispatch_with_retry(
        self,
        make_tasks: "Callable[[list[int]], list[UpdateTask]]",
        targets: Sequence[int],
        round_index: int,
        max_attempts: int,
        phase: str | None = None,
        charge_download: bool = True,
        charge_upload: bool = True,
    ) -> tuple[dict[int, ClientUpdate], list[int]]:
        """Dispatch ``targets`` with up to ``max_attempts`` seeded epochs.

        The retry derivation FedClust's clustering round pioneered, as
        an engine primitive: attempt ``a`` dispatches the still-pending
        clients at epoch ``round_index + 1_000_000 × a``, so every
        attempt rolls fresh failure/straggler/budget/corruption dice on
        the stateless streams without colliding with any real round.
        ``make_tasks`` receives the pending client ids (in their
        original ``targets`` order) and builds the attempt's task list.

        Returns ``(collected, pending)``: one admitted update per
        responding client (first response wins) and the clients that
        never responded within the attempt budget.  Drop/straggler/
        quarantine events log under the derived epoch, exactly like a
        plain :meth:`dispatch`.
        """
        collected: dict[int, ClientUpdate] = {}
        pending = [int(c) for c in targets]
        for attempt in range(max_attempts):
            if not pending:
                break
            attempt_round = round_index + 1_000_000 * attempt
            outcome = self.dispatch(
                make_tasks(pending),
                attempt_round,
                phase=phase,
                charge_download=charge_download,
                charge_upload=charge_upload,
            )
            for update in outcome.survivors:
                collected[update.client_id] = update
            pending = [cid for cid in pending if cid not in collected]
        return collected, pending

    # ------------------------------------------------------------------
    # The round lifecycle
    # ------------------------------------------------------------------
    def run(
        self,
        strategy: RoundStrategy,
        n_rounds: int,
        history: RunHistory,
        first_round: int = 1,
        eval_every: int = 1,
    ) -> tuple[float, np.ndarray]:
        """Run ``n_rounds`` engine rounds, appending to ``history``.

        Returns the last evaluation ``(mean accuracy, per-client
        accuracies)``; the final round is always evaluated.  Rounds off
        the ``eval_every`` cadence record ``mean_local_accuracy`` as NaN
        with ``evaluated=False`` — a history distinguishes "measured"
        from "not measured this round" instead of silently carrying the
        previous evaluation forward.

        With an :class:`AsyncConfig` on the scenario the engine runs the
        event-stream loop (:meth:`_run_async`) instead; the synchronous
        path below is byte-for-byte the PR-5 loop.
        """
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        if self.is_async:
            return self._run_async(
                strategy, n_rounds, history, first_round, eval_every
            )
        env = self.env
        m = env.federation.n_clients
        mean_acc, per_client = float("nan"), np.full(m, np.nan)
        last_round = first_round + n_rounds - 1
        start_round, restored = self._maybe_resume(strategy, history, first_round)
        if restored is not None:
            mean_acc, per_client = restored
            if start_round > last_round:
                return mean_acc, per_client

        for round_index in range(start_round, last_round + 1):
            t0 = time.perf_counter()
            self._quarantined_this_round = 0
            departed = self.departures_at(round_index)
            if departed.size:
                self.departure_log.append((round_index, departed.tolist()))
                strategy.on_departures(self, round_index, departed)
            arrived = self.arrivals_at(round_index)
            if arrived.size:
                strategy.on_arrivals(self, round_index, arrived)
            participants = self.select_participants(round_index)
            if participants.size:
                self.participation_log.append(
                    (round_index, [int(c) for c in participants])
                )
            tasks = strategy.broadcast_for(self, round_index, participants)
            charge = strategy.charges_communication
            dispatched = self.dispatch(
                tasks,
                round_index,
                charge_download=charge,
                charge_upload=charge,
            )
            quorum = self.scenario.min_survivors
            if (
                quorum > 0
                and participants.size
                and len(dispatched.survivors) < quorum
            ):
                self._retry_for_quorum(
                    strategy, round_index, participants, dispatched, charge
                )
            quorum_failed = bool(
                quorum > 0
                and participants.size
                and len(dispatched.survivors) < quorum
            )
            if quorum_failed:
                # Graceful degradation: never aggregate a cohort below
                # quorum.  State stays frozen and buffered stale work
                # stays buffered (it would only fold at an aggregation
                # that is not happening), but this round's own late
                # work is still banked for a future healthy round.
                if self.scenario.staleness_decay > 0.0:
                    for update in dispatched.late:
                        self._stale_buffer[update.client_id] = (
                            round_index,
                            update,
                        )
                stale_ids: list[int] = []
                train_loss = float("nan")
            else:
                stale_ids = self._fold_stale(round_index, dispatched)
                train_loss = strategy.aggregate(
                    self, round_index, dispatched.survivors
                )
            evaluated = round_index == last_round or round_index % eval_every == 0
            if evaluated:
                mean_acc, per_client = strategy.evaluate(self, round_index)
            self._next_round = round_index + 1
            self._last_eval = (mean_acc, per_client)
            history.append(
                RoundRecord(
                    round_index=round_index,
                    mean_train_loss=train_loss,
                    mean_local_accuracy=mean_acc if evaluated else float("nan"),
                    n_participants=len(participants),
                    n_clusters=strategy.current_n_clusters(),
                    uploaded_params=env.tracker.total_uploaded,
                    downloaded_params=env.tracker.total_downloaded,
                    wall_seconds=time.perf_counter() - t0,
                    n_stale=len(stale_ids),
                    n_departed=int(departed.size),
                    n_quarantined=self._quarantined_this_round,
                    quorum_failed=quorum_failed,
                    evaluated=evaluated,
                )
            )
            strategy.on_round_end(
                self,
                RoundOutcome(
                    round_index=round_index,
                    participants=participants,
                    survivors=dispatched.survivors,
                    failed=dispatched.failed,
                    stragglers=dispatched.stragglers,
                    arrived=arrived,
                    train_loss=train_loss,
                    evaluated=evaluated,
                    mean_accuracy=mean_acc,
                    stale=np.array(stale_ids, dtype=np.int64),
                    departed=departed,
                ),
            )
            self._maybe_checkpoint(round_index, last_round)
        return mean_acc, per_client

    def _retry_for_quorum(
        self,
        strategy: RoundStrategy,
        round_index: int,
        participants: np.ndarray,
        dispatched: DispatchOutcome,
        charge: bool,
    ) -> None:
        """Redispatch the failed/quarantined remainder toward quorum.

        Each attempt re-broadcasts (download re-charged — a retry is a
        real network event) to the participants that have delivered
        nothing yet — neither an admitted update nor a buffered late
        one — on the fresh seeded epoch ``round + 1_000_000 × attempt``
        (attempt ≥ 1; the original dispatch was attempt 0).  Responses
        merge into ``dispatched`` in place.  Retry dispatches do not
        join the participation log: :meth:`realized_trace` captures the
        primary schedule, not the recovery traffic (the drop/straggler/
        quarantine logs hold the derived epochs).
        """
        scenario = self.scenario
        delivered = {u.client_id for u in dispatched.survivors}
        delivered |= {u.client_id for u in dispatched.late}
        for attempt in range(1, scenario.max_retries + 1):
            if len(dispatched.survivors) >= scenario.min_survivors:
                break
            remainder = np.array(
                [int(c) for c in participants if int(c) not in delivered],
                dtype=np.int64,
            )
            if not remainder.size:
                break
            retry_round = round_index + 1_000_000 * attempt
            tasks = strategy.broadcast_for(self, retry_round, remainder)
            outcome = self.dispatch(
                tasks,
                retry_round,
                charge_download=charge,
                charge_upload=charge,
            )
            dispatched.survivors.extend(outcome.survivors)
            dispatched.late.extend(outcome.late)
            dispatched.quarantined.extend(outcome.quarantined)
            dispatched.failed = np.union1d(dispatched.failed, outcome.failed)
            dispatched.stragglers = np.union1d(
                dispatched.stragglers, outcome.stragglers
            )
            delivered |= {u.client_id for u in outcome.survivors}
            delivered |= {u.client_id for u in outcome.late}

    # ------------------------------------------------------------------
    # The async event-stream lifecycle (FedBuff-style)
    # ------------------------------------------------------------------
    def _run_async(
        self,
        strategy: RoundStrategy,
        n_rounds: int,
        history: RunHistory,
        first_round: int,
        eval_every: int,
    ) -> tuple[float, np.ndarray]:
        """Dispatch and aggregation as separate event streams.

        Per server step: deliver due in-flight updates into the buffer,
        dispatch fresh work to free clients (failures and budgets apply
        at dispatch; each dispatch draws a seeded duration), and fire an
        aggregation event when the buffer holds ``buffer_size`` updates
        — every buffered update folds at ``decay ** age`` into a *copy*
        (:func:`discounted_update`), so strategies see one survivor list
        exactly as in the synchronous loop.  Client results are computed
        eagerly at dispatch time (they depend only on the seeded
        (dispatch round, client) stream and the broadcast payload, so
        executor kind cannot change them) and merely *delivered* late.

        Steps without an aggregation event log a NaN train loss with
        ``aggregation_event=False``; evaluation runs on its usual
        cadence against whatever state the strategy currently holds.
        The final round flushes a partially-filled buffer; work still in
        flight at the end of the run is abandoned (server shutdown).
        """
        cfg = self.scenario.async_config
        assert cfg is not None
        lo, hi = cfg.duration_range
        env = self.env
        m = env.federation.n_clients
        decay = self.scenario.staleness_decay
        mean_acc, per_client = float("nan"), np.full(m, np.nan)
        last_round = first_round + n_rounds - 1
        budget = self.scenario.compute_budget
        start_round, restored = self._maybe_resume(strategy, history, first_round)
        if restored is not None:
            mean_acc, per_client = restored
            if start_round > last_round:
                return mean_acc, per_client

        for round_index in range(start_round, last_round + 1):
            t0 = time.perf_counter()
            self._quarantined_this_round = 0
            departed = self.departures_at(round_index)
            if departed.size:
                self.departure_log.append((round_index, departed.tolist()))
                strategy.on_departures(self, round_index, departed)
            arrived = self.arrivals_at(round_index)
            if arrived.size:
                strategy.on_arrivals(self, round_index, arrived)

            # --- dispatch stream: fresh work for free clients ---------
            participants = self.select_participants(
                round_index, exclude=self._in_flight.client_ids
            )
            if cfg.max_concurrency is not None:
                slots = cfg.max_concurrency - len(self._in_flight)
                participants = participants[: max(0, slots)]
            if participants.size:
                self.participation_log.append(
                    (round_index, [int(c) for c in participants])
                )
            tasks = strategy.broadcast_for(self, round_index, participants)
            charge = strategy.charges_communication
            if charge and tasks:
                env.tracker.record_download(
                    env.n_params * len(tasks), self.phase
                )
            alive, failed_ids = self._apply_failures(tasks, round_index)
            if failed_ids:
                self.drop_log.append((round_index, failed_ids))
            self._apply_budgets(alive, round_index)
            updates = env.run_updates(alive, round_index)
            # Corruption fires at dispatch (keyed by the dispatch
            # round, like the duration draw), so the in-flight buffer
            # carries the corrupted row and admission catches it at
            # delivery — after the upload is charged, exactly as in the
            # synchronous path.
            updates = self._apply_corruption(updates, round_index)
            if budget is not None:
                for update in updates:
                    update.weight = float(update.n_batches)
            completes_at = [
                round_index
                - 1
                + int(
                    rng_for(
                        env.seed, DURATION_TAG, round_index, task.client_id
                    ).integers(lo, hi + 1)
                )
                for task in alive
            ]
            self._in_flight.add(updates, round_index, completes_at)

            # --- arrival stream: absorb due updates into the buffer ---
            due = self._in_flight.collect_due(round_index)
            if charge and due:
                env.tracker.record_upload(env.n_params * len(due), self.phase)
            if due:
                # Admission at delivery: the upload was charged (the
                # bytes arrived), but a corrupted row never enters the
                # aggregation buffer.  A client is never in flight
                # twice, so rejected ids map back unambiguously.
                _, rejected = self._admit(
                    [update for _, update in due], round_index
                )
                if rejected:
                    rejected_ids = {cid for cid, _ in rejected}
                    due = [
                        entry
                        for entry in due
                        if entry[1].client_id not in rejected_ids
                    ]
            for dispatch_round, update in due:
                # One update per client per aggregation: a newer arrival
                # supersedes an older buffered one (the old upload was
                # still charged — it did cross the network).
                self._async_buffer = [
                    entry
                    for entry in self._async_buffer
                    if entry[1].client_id != update.client_id
                ]
                self._async_buffer.append((dispatch_round, update))

            # --- aggregation event at K buffered (final round flushes)
            aggregation_event = len(self._async_buffer) >= cfg.buffer_size or (
                round_index == last_round and bool(self._async_buffer)
            )
            train_loss = float("nan")
            stale_ids: list[int] = []
            folded: list[ClientUpdate] = []
            if aggregation_event:
                folded = [
                    update
                    if round_index == dispatch_round
                    else discounted_update(
                        update, decay if decay > 0.0 else 1.0, round_index - dispatch_round
                    )
                    for dispatch_round, update in self._async_buffer
                ]
                stale_ids = sorted(
                    update.client_id
                    for dispatch_round, update in self._async_buffer
                    if round_index > dispatch_round
                )
                if stale_ids:
                    self.stale_log.append((round_index, stale_ids))
                self._async_buffer = []
                train_loss = strategy.aggregate(self, round_index, folded)
                self.n_aggregation_events += 1
                self.n_updates_absorbed += len(folded)

            evaluated = round_index == last_round or round_index % eval_every == 0
            if evaluated:
                mean_acc, per_client = strategy.evaluate(self, round_index)
            self._next_round = round_index + 1
            self._last_eval = (mean_acc, per_client)
            history.append(
                RoundRecord(
                    round_index=round_index,
                    mean_train_loss=train_loss,
                    mean_local_accuracy=mean_acc if evaluated else float("nan"),
                    n_participants=len(participants),
                    n_clusters=strategy.current_n_clusters(),
                    uploaded_params=env.tracker.total_uploaded,
                    downloaded_params=env.tracker.total_downloaded,
                    wall_seconds=time.perf_counter() - t0,
                    n_stale=len(stale_ids),
                    n_departed=int(departed.size),
                    n_buffered=len(self._async_buffer),
                    n_quarantined=self._quarantined_this_round,
                    aggregation_event=aggregation_event,
                    evaluated=evaluated,
                )
            )
            strategy.on_round_end(
                self,
                RoundOutcome(
                    round_index=round_index,
                    participants=participants,
                    survivors=folded,
                    failed=np.array(failed_ids, dtype=np.int64),
                    stragglers=np.empty(0, dtype=np.int64),
                    arrived=arrived,
                    train_loss=train_loss,
                    evaluated=evaluated,
                    mean_accuracy=mean_acc,
                    stale=np.array(stale_ids, dtype=np.int64),
                    departed=departed,
                ),
            )
            self._maybe_checkpoint(round_index, last_round)
        return mean_acc, per_client

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _maybe_resume(
        self, strategy: RoundStrategy, history: RunHistory, first_round: int
    ) -> tuple[int, tuple[float, np.ndarray] | None]:
        """Resume from the configured checkpoint file if asked and present.

        Returns ``(start round, restored last-eval or None)``.  A
        missing file is not an error: the same invocation then runs
        from scratch, which is what a crash-restart wrapper wants.
        """
        self._run_strategy, self._run_history = strategy, history
        ckpt = self.scenario.checkpoint
        if ckpt is None or not ckpt.resume or not ckpt.path.exists():
            return first_round, None
        next_round, mean_acc, per_client = self.resume(
            ckpt.path, strategy, history
        )
        return max(first_round, next_round), (mean_acc, per_client)

    def _maybe_checkpoint(self, round_index: int, last_round: int) -> None:
        """Write the configured checkpoint on its cadence (final round
        always writes)."""
        ckpt = self.scenario.checkpoint
        if ckpt is None:
            return
        if round_index % ckpt.every == 0 or round_index == last_round:
            self.checkpoint(ckpt.path)

    def checkpoint(
        self,
        path: "str | Path | None" = None,
        strategy: RoundStrategy | None = None,
        history: RunHistory | None = None,
    ) -> "Path":
        """Write a resumable checkpoint of the whole run state.

        Serialised: the strategy's server rows (at wire dtype, via its
        :meth:`RoundStrategy.checkpoint_payload` hook), the round
        counter, every middleware log, the communication tracker's
        per-phase counters, the history records, the last evaluation,
        and all three update buffers (stale, async in-flight, async
        aggregation) — buffered update *rows* at float64, because a
        corrupted row awaiting admission need not survive a wire-dtype
        round-trip.  The rng "state" is just the seed and the round
        counter: every stream is stateless in (seed, tag, round,
        client), so resuming re-derives identical draws.

        Called automatically on the :class:`CheckpointConfig` cadence
        during :meth:`run`; callable directly mid-run (the strategy and
        history default to the ones of the active run) or standalone
        with explicit arguments.
        """
        strategy = strategy if strategy is not None else self._run_strategy
        history = history if history is not None else self._run_history
        if strategy is None or history is None:
            raise ValueError(
                "checkpoint() outside an active run needs explicit "
                "strategy/history arguments"
            )
        if path is None:
            if self.scenario.checkpoint is None:
                raise ValueError(
                    "checkpoint() needs a path: pass one or configure "
                    "ScenarioConfig.checkpoint"
                )
            path = self.scenario.checkpoint.path
        env = self.env
        layout = env.layout
        meta, strategy_arrays = strategy.checkpoint_payload(self)
        arrays: dict[str, np.ndarray] = {
            f"strategy/{name}": array for name, array in strategy_arrays.items()
        }

        def buffer_rows(rows: list[np.ndarray]) -> np.ndarray:
            if rows:
                return np.stack(rows)
            return np.empty((0, env.n_params), dtype=np.float64)

        stale_meta: list[dict] = []
        stale_rows: list[np.ndarray] = []
        for cid in sorted(self._stale_buffer):
            produced, update = self._stale_buffer[cid]
            entry = update_to_meta(update)
            entry["produced_round"] = int(produced)
            stale_meta.append(entry)
            stale_rows.append(update_row(update, layout))
        flight_meta: list[dict] = []
        flight_rows: list[np.ndarray] = []
        for done, seq, dispatch_round, update in self._in_flight.snapshot():
            entry = update_to_meta(update)
            entry.update(
                done=int(done), seq=int(seq), dispatch_round=int(dispatch_round)
            )
            flight_meta.append(entry)
            flight_rows.append(update_row(update, layout))
        async_meta: list[dict] = []
        async_rows: list[np.ndarray] = []
        for dispatch_round, update in self._async_buffer:
            entry = update_to_meta(update)
            entry["dispatch_round"] = int(dispatch_round)
            async_meta.append(entry)
            async_rows.append(update_row(update, layout))
        arrays["stale_rows"] = buffer_rows(stale_rows)
        arrays["in_flight_rows"] = buffer_rows(flight_rows)
        arrays["async_rows"] = buffer_rows(async_rows)
        mean_acc, per_client = self._last_eval
        arrays["per_client_accuracy"] = np.asarray(per_client, dtype=np.float64)

        header = {
            "seed": int(env.seed),
            "strategy": strategy.name,
            "n_clients": int(env.federation.n_clients),
            "n_params": int(env.n_params),
            "next_round": int(self._next_round),
            "mean_accuracy": float(mean_acc),
            "strategy_meta": meta,
            "logs": {
                "drop": [[r, list(ids)] for r, ids in self.drop_log],
                "straggler": [[r, list(ids)] for r, ids in self.straggler_log],
                "stale": [[r, list(ids)] for r, ids in self.stale_log],
                "departure": [[r, list(ids)] for r, ids in self.departure_log],
                "participation": [
                    [r, list(ids)] for r, ids in self.participation_log
                ],
                "quarantine": [
                    [r, [[cid, reason] for cid, reason in entries]]
                    for r, entries in self.quarantine_log
                ],
            },
            "counters": {
                "n_aggregation_events": int(self.n_aggregation_events),
                "n_updates_absorbed": int(self.n_updates_absorbed),
            },
            "traffic": {
                "uploads": {k: int(v) for k, v in env.tracker.uploads.items()},
                "downloads": {
                    k: int(v) for k, v in env.tracker.downloads.items()
                },
            },
            "history": {
                "algorithm": history.algorithm,
                "dataset": history.dataset,
                "seed": int(history.seed),
                "records": [asdict(record) for record in history.records],
            },
            "stale": stale_meta,
            "in_flight": flight_meta,
            "in_flight_seq": int(self._in_flight.next_seq),
            "async": async_meta,
        }
        return save_checkpoint(path, header, arrays)

    def resume(
        self,
        path: "str | Path",
        strategy: RoundStrategy,
        history: RunHistory,
    ) -> tuple[int, float, np.ndarray]:
        """Restore a checkpoint written by :meth:`checkpoint`.

        Validates that the file belongs to this run (seed, strategy
        name, federation size, parameter count — a mismatch raises
        :class:`repro.fl.defense.CheckpointError` quoting expected vs
        found), then restores the strategy state, engine logs and
        buffers, tracker counters and history records **in place** and
        returns ``(next round, last mean accuracy, last per-client
        accuracies)``.  ``history.records`` is replaced wholesale, so a
        caller that pre-seeded records (FedClust re-runs its round-1
        clustering deterministically before resuming) converges on the
        checkpointed truth.
        """
        header, arrays = load_checkpoint(path)
        env = self.env
        expectations = (
            ("seed", int(env.seed)),
            ("strategy", strategy.name),
            ("n_clients", int(env.federation.n_clients)),
            ("n_params", int(env.n_params)),
        )
        for key, want in expectations:
            found = header.get(key)
            if found != want:
                raise CheckpointError(
                    f"checkpoint {key} mismatch in {path}: this run expects "
                    f"{want!r}, the file holds {found!r}"
                )
        strategy.restore_payload(
            self,
            header.get("strategy_meta", {}),
            {
                name.split("/", 1)[1]: array
                for name, array in arrays.items()
                if name.startswith("strategy/")
            },
        )
        logs = header["logs"]

        def id_log(entries: list) -> list[tuple[int, list[int]]]:
            return [(int(r), [int(c) for c in ids]) for r, ids in entries]

        self.drop_log[:] = id_log(logs["drop"])
        self.straggler_log[:] = id_log(logs["straggler"])
        self.stale_log[:] = id_log(logs["stale"])
        self.departure_log[:] = id_log(logs["departure"])
        self.participation_log[:] = id_log(logs["participation"])
        self.quarantine_log[:] = [
            (int(r), [(int(cid), str(reason)) for cid, reason in entries])
            for r, entries in logs["quarantine"]
        ]
        counters = header["counters"]
        self.n_aggregation_events = int(counters["n_aggregation_events"])
        self.n_updates_absorbed = int(counters["n_updates_absorbed"])
        tracker = env.tracker
        tracker.uploads.clear()
        for phase, count in header["traffic"]["uploads"].items():
            tracker.uploads[phase] = int(count)
        tracker.downloads.clear()
        for phase, count in header["traffic"]["downloads"].items():
            tracker.downloads[phase] = int(count)
        history.records[:] = [
            RoundRecord(**record) for record in header["history"]["records"]
        ]
        layout = env.layout
        self._stale_buffer.clear()
        for entry, row in zip(header["stale"], arrays["stale_rows"]):
            self._stale_buffer[int(entry["client_id"])] = (
                int(entry["produced_round"]),
                rebuild_update(entry, row, layout),
            )
        self._in_flight.restore(
            [
                (
                    int(entry["done"]),
                    int(entry["seq"]),
                    int(entry["dispatch_round"]),
                    rebuild_update(entry, row, layout),
                )
                for entry, row in zip(
                    header["in_flight"], arrays["in_flight_rows"]
                )
            ],
            int(header["in_flight_seq"]),
        )
        self._async_buffer[:] = [
            (int(entry["dispatch_round"]), rebuild_update(entry, row, layout))
            for entry, row in zip(header["async"], arrays["async_rows"])
        ]
        mean_acc = float(header["mean_accuracy"])
        per_client = arrays["per_client_accuracy"].astype(np.float64)
        self._next_round = int(header["next_round"])
        self._last_eval = (mean_acc, per_client)
        return self._next_round, mean_acc, per_client

    # ------------------------------------------------------------------
    # Realized-schedule capture
    # ------------------------------------------------------------------
    def realized_trace(self) -> AvailabilityTrace:
        """The schedule this engine actually executed, as a trace.

        Per client, the rounds in which it *delivered on time*:
        dispatched (participation log) minus seeded failures and
        deadline misses (drop/straggler logs).  Every client of the
        federation is listed — including never-dispatched ones with an
        empty round set — so replaying the trace through a fresh
        ``ScenarioConfig(trace=..., client_fraction=1.0)`` reproduces
        exactly the original survivor cohorts without re-rolling any
        failure/straggler/sampling dice.  (Replay equivalence covers
        the aggregation stream; scenarios that *fold* straggler work
        late — ``staleness_decay > 0`` — deliver extra stale updates
        the trace deliberately does not re-create.)
        """
        m = self.env.federation.n_clients
        rounds: dict[int, set[int]] = {cid: set() for cid in range(m)}
        for round_index, ids in self.participation_log:
            for cid in ids:
                rounds[cid].add(round_index)
        for log in (self.drop_log, self.straggler_log):
            for round_index, ids in log:
                for cid in ids:
                    rounds.get(cid, set()).discard(round_index)
        return AvailabilityTrace(rounds)

    # ------------------------------------------------------------------
    # Run-record export
    # ------------------------------------------------------------------
    def run_record(self) -> dict:
        """Versioned JSON-ready summary of the engine's scenario counters.

        The export hook the ablation harness
        (:mod:`repro.experiments.ablation`) records per run: total events
        per middleware log (the logs themselves stay on the engine for
        callers that need the per-round detail), the quarantine reasons
        broken out by code, async throughput counters, and the traffic
        totals.  Algorithms attach it to ``RunResult.extras
        ["engine_record"]`` so every run — regardless of strategy —
        reports the same counter schema.
        """
        reasons: dict[str, int] = {}
        for _, entries in self.quarantine_log:
            for _, reason in entries:
                reasons[reason] = reasons.get(reason, 0) + 1
        return {
            "schema": 1,
            "async": self.is_async,
            "n_dispatched": sum(
                len(ids) for _, ids in self.participation_log
            ),
            "n_dropped": sum(len(ids) for _, ids in self.drop_log),
            "n_stragglers": sum(len(ids) for _, ids in self.straggler_log),
            "n_stale_folded": sum(len(ids) for _, ids in self.stale_log),
            "n_departed": sum(len(ids) for _, ids in self.departure_log),
            "n_quarantined": sum(
                len(entries) for _, entries in self.quarantine_log
            ),
            "quarantine_reasons": reasons,
            "n_aggregation_events": int(self.n_aggregation_events),
            "n_updates_absorbed": int(self.n_updates_absorbed),
            "uploaded_params": int(self.env.tracker.total_uploaded),
            "downloaded_params": int(self.env.tracker.total_downloaded),
        }
