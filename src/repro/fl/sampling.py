"""Client participation sampling."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_fraction, check_positive

__all__ = ["full_participation", "uniform_sample"]


def full_participation(n_clients: int) -> np.ndarray:
    """Every client participates (the default at paper scale)."""
    check_positive("n_clients", n_clients)
    return np.arange(n_clients)


def uniform_sample(
    n_clients: int,
    fraction: float,
    rng: np.random.Generator,
    min_clients: int = 1,
) -> np.ndarray:
    """Sample ``max(min_clients, round(fraction * n))`` clients uniformly.

    FedAvg's client fraction ``C``; returned ids are sorted for
    deterministic downstream iteration.
    """
    check_positive("n_clients", n_clients)
    check_fraction("fraction", fraction)
    check_positive("min_clients", min_clients)
    n_pick = max(min_clients, int(round(fraction * n_clients)))
    n_pick = min(n_pick, n_clients)
    return np.sort(rng.choice(n_clients, size=n_pick, replace=False))
