"""Client participation sampling."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_fraction, check_positive

__all__ = ["full_participation", "uniform_sample", "sample_from"]


def full_participation(n_clients: int) -> np.ndarray:
    """Every client participates (the default at paper scale)."""
    check_positive("n_clients", n_clients)
    return np.arange(n_clients)


def uniform_sample(
    n_clients: int,
    fraction: float,
    rng: np.random.Generator,
    min_clients: int = 1,
) -> np.ndarray:
    """Sample ``max(min_clients, round(fraction * n))`` clients uniformly.

    FedAvg's client fraction ``C``; returned ids are sorted for
    deterministic downstream iteration.  ``min_clients`` is a floor, not
    a clamp target: asking for a floor above the population is a
    configuration error and raises instead of silently degrading to
    full participation.
    """
    check_positive("n_clients", n_clients)
    check_fraction("fraction", fraction)
    check_positive("min_clients", min_clients)
    if min_clients > n_clients:
        raise ValueError(
            f"min_clients ({min_clients}) exceeds n_clients ({n_clients})"
        )
    n_pick = max(min_clients, int(round(fraction * n_clients)))
    n_pick = min(n_pick, n_clients)
    return np.sort(rng.choice(n_clients, size=n_pick, replace=False))


def sample_from(
    eligible: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
    min_clients: int = 1,
) -> np.ndarray:
    """:func:`uniform_sample` over an explicit id subset.

    Used by the round engine when arrival events make only part of the
    federation eligible; with every client eligible it reduces to
    ``uniform_sample`` (same draw, same ordering).  One deliberate
    difference: a ``min_clients`` floor above the *eligible* subset is
    clamped to the subset, not raised — eligibility shrinking mid-run is
    runtime dynamics, not a configuration error (the engine validates
    the floor against the full federation up front).
    """
    eligible = np.asarray(eligible)
    check_positive("n_eligible", eligible.size)
    check_fraction("fraction", fraction)
    check_positive("min_clients", min_clients)
    n_pick = max(min_clients, int(round(fraction * eligible.size)))
    n_pick = min(n_pick, eligible.size)
    return np.sort(rng.choice(eligible, size=n_pick, replace=False))
