"""Grouped, fused evaluation on the flat parameter plane.

The Table-I metric (mean local test accuracy) asks every client to
evaluate the model that serves it on its own held-out split.  At most
``k`` *distinct* models serve the ``n`` clients — the global model
(FedAvg/FedProx: ``k = 1``), or one model per cluster (FedClust, IFCA,
CFL, PACFL: ``k`` = cluster count) — yet the reference protocol
(:func:`repro.fl.evaluation.mean_local_accuracy`) loads one state per
client and runs each client's split as its own serial batch loop.

This module collapses that n-fold loop to a k-fold one:

* **Deduplicated loads** — clients are grouped by the model that serves
  them (an explicit label vector, or object identity for the dict API),
  and each distinct model is loaded exactly once per evaluation, via
  :meth:`repro.nn.module.Module.load_flat` when it lives as a packed row.
* **Fused forward passes** — the test splits of all clients sharing a
  model are streamed through the scratch model in shared, full-size
  batches (batch boundaries ignore client boundaries), and per-client
  accuracy/loss are recovered afterwards by segment reductions
  (``np.add.reduceat``) over the client-offset index.
* **Packed input** — :func:`evaluate_packed` accepts the serving models
  as rows of a ``(k, n_params)`` float64 matrix, so clustered algorithms
  evaluate straight from the flat plane without materialising dicts.

Exactness contract
------------------
Per-client **accuracy is bit-identical** to the per-client reference
loop: correctness is an integer count of argmax matches, and the fused
pass feeds the model the same rows in the same order (only batch
*composition* changes, which the forward pass is row-independent under).
Per-client **loss** is the same quantity summed in a different order
(per-sample instead of per-batch-mean), so it matches to float64
round-off, not bitwise.  ``benchmarks/bench_eval.py`` records both the
speedup and the accuracy bit-identity flag per PR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.nn.functional import log_softmax
from repro.nn.module import Module

__all__ = [
    "CohortEval",
    "fused_evaluate",
    "group_by_identity",
    "members_of_labels",
    "evaluate_grouped",
    "evaluate_packed",
    "mean_local_accuracy_grouped",
]


@dataclass
class CohortEval:
    """Per-client accuracy/loss vectors from one grouped evaluation.

    Arrays are indexed by client (or by dataset, for
    :func:`fused_evaluate`), in the order the caller supplied them.
    """

    accuracy: np.ndarray
    loss: np.ndarray
    n_samples: np.ndarray
    n_correct: np.ndarray

    @property
    def mean_accuracy(self) -> float:
        """Mean over clients — the Table-I statistic."""
        return float(self.accuracy.mean())


def _fused_batches(
    datasets: Sequence[ArrayDataset], batch_size: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield full-size ``(images, labels)`` batches across dataset bounds.

    Rows stream in dataset order; each batch is assembled from at most a
    few contiguous spans, so peak extra memory is one batch, not the
    concatenation of the whole group.
    """
    img_parts: list[np.ndarray] = []
    lab_parts: list[np.ndarray] = []
    filled = 0
    for dataset in datasets:
        start, size = 0, len(dataset)
        while start < size:
            take = min(batch_size - filled, size - start)
            img_parts.append(dataset.images[start : start + take])
            lab_parts.append(dataset.labels[start : start + take])
            filled += take
            start += take
            if filled == batch_size:
                yield (
                    img_parts[0] if len(img_parts) == 1 else np.concatenate(img_parts),
                    lab_parts[0] if len(lab_parts) == 1 else np.concatenate(lab_parts),
                )
                img_parts, lab_parts, filled = [], [], 0
    if filled:
        yield (
            img_parts[0] if len(img_parts) == 1 else np.concatenate(img_parts),
            lab_parts[0] if len(lab_parts) == 1 else np.concatenate(lab_parts),
        )


def fused_evaluate(
    model: Module, datasets: Sequence[ArrayDataset], batch_size: int = 512
) -> CohortEval:
    """Evaluate one model on several datasets in shared batches.

    The fused replacement for ``[evaluate_model(model, d) for d in
    datasets]``: rows from consecutive datasets share batches, and the
    per-dataset statistics are recovered by segment reductions over the
    dataset-offset index.  Runs in eval mode and restores the model's
    training flag, exactly like the reference loop.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    datasets = list(datasets)
    if not datasets:
        raise ValueError("need at least one dataset to evaluate")
    sizes = np.array([len(d) for d in datasets], dtype=np.int64)
    if (sizes == 0).any():
        raise ValueError("cannot evaluate on an empty dataset")
    was_training = model.training
    model.eval()
    total = int(sizes.sum())
    correct = np.empty(total, dtype=np.int64)
    nll = np.empty(total, dtype=np.float64)
    pos = 0
    for images, labels in _fused_batches(datasets, batch_size):
        logits = model.forward(images)
        log_probs = log_softmax(logits, axis=1)
        n = len(labels)
        nll[pos : pos + n] = -log_probs[np.arange(n), labels]
        correct[pos : pos + n] = logits.argmax(axis=1) == labels
        pos += n
    if was_training:
        model.train()
    offsets = np.zeros(len(sizes), dtype=np.intp)
    np.cumsum(sizes[:-1], out=offsets[1:])
    n_correct = np.add.reduceat(correct, offsets)
    return CohortEval(
        accuracy=n_correct / sizes,
        loss=np.add.reduceat(nll, offsets) / sizes,
        n_samples=sizes,
        n_correct=n_correct,
    )


def group_by_identity(
    states_per_client: Sequence[Mapping[str, np.ndarray]],
) -> tuple[list[Mapping[str, np.ndarray]], np.ndarray]:
    """Collapse a per-client state list to (distinct states, labels).

    Dedup is by *object identity* — exactly the sharing the algorithms
    produce (``[state] * m`` for a global model, ``cluster_states[g]``
    repeated per member for clustered methods).  Distinct-but-equal
    dicts simply stay in separate groups; correctness never depends on
    the grouping, only the amount of fusion does.
    """
    distinct: list[Mapping[str, np.ndarray]] = []
    index_of: dict[int, int] = {}
    labels = np.empty(len(states_per_client), dtype=np.int64)
    for i, state in enumerate(states_per_client):
        g = index_of.get(id(state))
        if g is None:
            g = len(distinct)
            index_of[id(state)] = g
            distinct.append(state)
        labels[i] = g
    return distinct, labels


def members_of_labels(labels: np.ndarray, n_groups: int) -> list[np.ndarray]:
    """Member-index arrays per group (possibly empty) with validation."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_groups):
        raise ValueError(f"labels reference groups outside [0, {n_groups})")
    return [np.flatnonzero(labels == g) for g in range(n_groups)]


def _evaluate_members(
    model: Module,
    load_group: Callable[[int], None],
    members_of: Sequence[np.ndarray],
    testsets: Sequence[ArrayDataset],
    batch_size: int,
) -> CohortEval:
    """Shared core: load each non-empty group once, fuse its members."""
    m = len(testsets)
    accuracy = np.zeros(m)
    loss = np.zeros(m)
    n_samples = np.zeros(m, dtype=np.int64)
    n_correct = np.zeros(m, dtype=np.int64)
    for g, members in enumerate(members_of):
        if members.size == 0:
            continue  # empty cluster: nothing to load, nothing to score
        load_group(g)
        part = fused_evaluate(
            model, [testsets[i] for i in members], batch_size=batch_size
        )
        accuracy[members] = part.accuracy
        loss[members] = part.loss
        n_samples[members] = part.n_samples
        n_correct[members] = part.n_correct
    return CohortEval(accuracy, loss, n_samples, n_correct)


def evaluate_grouped(
    model: Module,
    group_states: Sequence[Mapping[str, np.ndarray]],
    labels: np.ndarray,
    testsets: Sequence[ArrayDataset],
    batch_size: int = 512,
) -> tuple[float, np.ndarray]:
    """Table-I metric with explicit grouping over dict states.

    ``group_states[labels[i]]`` serves client ``i``; each distinct state
    is loaded once and its members' splits are evaluated fused.  Returns
    ``(mean, per_client_accuracy)`` like the reference loop.
    """
    labels = np.asarray(labels)
    if labels.shape != (len(testsets),):
        raise ValueError(
            f"labels shape {labels.shape} mismatches {len(testsets)} test sets"
        )
    members = members_of_labels(labels, len(group_states))
    result = _evaluate_members(
        model,
        lambda g: model.load_state_dict(dict(group_states[g])),
        members,
        testsets,
        batch_size,
    )
    return result.mean_accuracy, result.accuracy


def evaluate_packed(
    env, matrix: np.ndarray, labels: np.ndarray, batch_size: int | None = None
) -> tuple[float, np.ndarray]:
    """Table-I metric straight from packed cohort rows.

    ``matrix`` holds the serving models as ``(k, n_params)`` float64 rows
    on the environment's layout (a single packed global vector may be
    passed as shape ``(n_params,)``); ``labels[i]`` names the row serving
    client ``i``.  Each referenced row is loaded once via
    :meth:`repro.nn.module.Module.load_flat` — no state dict is ever
    materialised.  Returns ``(mean, per_client_accuracy)``.
    """
    matrix = np.atleast_2d(np.asarray(matrix))
    if matrix.shape[1] != env.layout.n_params:
        raise ValueError(
            f"matrix has {matrix.shape[1]} columns, layout expects "
            f"{env.layout.n_params}"
        )
    testsets = [c.test for c in env.federation.clients]
    labels = np.asarray(labels)
    if labels.shape != (len(testsets),):
        raise ValueError(
            f"labels shape {labels.shape} mismatches {len(testsets)} clients"
        )
    members = members_of_labels(labels, matrix.shape[0])
    result = _evaluate_members(
        env.scratch_model,
        lambda g: env.scratch_model.load_flat(matrix[g], env.layout),
        members,
        testsets,
        batch_size if batch_size is not None else env.train_cfg.eval_batch_size,
    )
    return result.mean_accuracy, result.accuracy


def mean_local_accuracy_grouped(
    model: Module,
    states_per_client: Sequence[Mapping[str, np.ndarray]],
    testsets: Sequence[ArrayDataset],
    batch_size: int = 512,
) -> tuple[float, np.ndarray]:
    """Drop-in fused replacement for the per-client reference loop.

    Same signature and return as
    :func:`repro.fl.evaluation.mean_local_accuracy`; serving states are
    deduplicated by identity (see :func:`group_by_identity`) so the
    ``[state] * m`` idiom costs one load and ~``total/batch`` forwards.
    """
    if len(states_per_client) != len(testsets):
        raise ValueError(
            f"{len(states_per_client)} states but {len(testsets)} test sets"
        )
    distinct, labels = group_by_identity(states_per_client)
    return evaluate_grouped(model, distinct, labels, testsets, batch_size=batch_size)
