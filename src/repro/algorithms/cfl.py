"""CFL — Clustered Federated Learning (Sattler et al., TNNLS 2020).

The iterative baseline the paper criticises for needing many rounds to
form stable clusters.  CFL trains FedAvg-style inside each cluster and
**recursively bipartitions** a cluster when its aggregated update norm is
small (the cluster objective is near-stationary) while individual client
update norms stay large (the clients disagree) — the incongruence
signature of mixed data distributions.  The bipartition splits clients by
the pairwise cosine similarity of their weight updates.

Implementation notes
--------------------
* The split test uses Sattler's two-threshold criterion.  Because raw
  norm scales depend on model size and learning rate, the default mode is
  *relative*: the aggregated-update norm is compared to the largest
  individual update norm in the same cluster/round
  (``mean_rel = ||Σ wᵢΔᵢ|| / maxᵢ||Δᵢ|| < eps1`` signals incongruence),
  and ``maxᵢ||Δᵢ|| > eps2 × scale₀`` (with ``scale₀`` the cluster's
  first-round max norm) checks that clients are still actually moving.
  Absolute thresholds can be supplied instead (``norm_mode="absolute"``).
* The bipartition is computed with complete-linkage hierarchical
  clustering (k = 2) on cosine *distance* of updates — the same optimal
  max-cross-similarity split Sattler's reference implementation performs.
* Every round ships **full model updates** for every client, which is
  what makes CFL's communication cost high next to FedClust's one-shot
  partial-weight clustering (Table I / C1 experiment).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import (
    FLAlgorithm,
    RunResult,
    cohort_matrix,
    fedavg_round_flat,
)
from repro.cluster.distance import pairwise_cosine_distance
from repro.cluster.hierarchy import cut_by_k, linkage
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.simulation import FederatedEnv
from repro.utils.validation import check_in, check_positive

__all__ = ["CFL"]


@dataclass
class _Cluster:
    """Server-side cluster bookkeeping.

    ``state`` is the cluster model as a packed float64 row on the
    environment's layout — CFL rides the flat plane end to end, so the
    broadcast payload, the Δ baseline and the evaluation input are all
    this one buffer.
    """

    state: np.ndarray
    members: np.ndarray
    scale0: float | None = None  # first-round max update norm
    history_of_splits: list[int] = field(default_factory=list)


class CFL(FLAlgorithm):
    """Iterative bipartitioning clustered FL.

    Parameters
    ----------
    eps1:
        Incongruence threshold.  Relative mode: split candidates need
        ``||avg update|| / max ||update|| < eps1``.
    eps2:
        Progress threshold.  Relative mode: ``max ||update||`` must exceed
        ``eps2 × scale₀``.
    warmup_rounds:
        No splits before this round (clusters must first approach their
        joint stationary point).
    min_cluster_size:
        Never create a cluster smaller than this.
    norm_mode:
        ``"relative"`` (default, scale-free) or ``"absolute"``.
    """

    name = "cfl"

    def __init__(
        self,
        eps1: float = 0.4,
        eps2: float = 0.08,
        warmup_rounds: int = 3,
        min_cluster_size: int = 2,
        norm_mode: str = "relative",
    ) -> None:
        check_positive("eps1", eps1)
        check_positive("eps2", eps2)
        check_positive("warmup_rounds", warmup_rounds)
        check_positive("min_cluster_size", min_cluster_size)
        check_in("norm_mode", norm_mode, ("relative", "absolute"))
        self.eps1 = eps1
        self.eps2 = eps2
        self.warmup_rounds = warmup_rounds
        self.min_cluster_size = min_cluster_size
        self.norm_mode = norm_mode

    # ------------------------------------------------------------------
    def _should_split(
        self, cluster: _Cluster, mean_norm: float, max_norm: float, round_index: int
    ) -> bool:
        if round_index <= self.warmup_rounds:
            return False
        if len(cluster.members) < 2 * self.min_cluster_size:
            return False
        if self.norm_mode == "absolute":
            return mean_norm < self.eps1 and max_norm > self.eps2
        if max_norm <= 0:
            return False
        scale0 = cluster.scale0 if cluster.scale0 else max_norm
        return (mean_norm / max_norm) < self.eps1 and max_norm > self.eps2 * scale0

    @staticmethod
    def _bipartition(update_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split rows into two groups by cosine-distance complete linkage."""
        d = pairwise_cosine_distance(update_matrix)
        labels = cut_by_k(linkage(d, "complete"), 2)
        return np.flatnonzero(labels == 0), np.flatnonzero(labels == 1)

    # ------------------------------------------------------------------
    def run(self, env: FederatedEnv, n_rounds: int, eval_every: int = 1) -> RunResult:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        m = env.federation.n_clients
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        clusters: list[_Cluster] = [
            _Cluster(state=env.layout.pack(env.init_state()), members=np.arange(m))
        ]
        mean_acc, per_client = float("nan"), np.full(m, np.nan)

        for round_index in range(1, n_rounds + 1):
            t0 = time.perf_counter()
            losses = []
            next_clusters: list[_Cluster] = []
            for cluster in clusters:
                incoming = cluster.state
                new_state, loss, updates = fedavg_round_flat(
                    env, incoming, cluster.members, round_index
                )
                losses.append(loss)
                # Update vectors Δ_i = local − incoming on the flat
                # plane: one row-broadcast subtraction over the round's
                # packed cohort instead of a per-key dict loop.  The
                # subtraction happens in float64 (pack embeds float32
                # exactly), where the dict path subtracted in float32
                # first — norms and split margins agree to float32
                # round-off; the parity test pins the split decisions.
                deltas = cohort_matrix(env, updates) - incoming
                weights = np.array([u.n_samples for u in updates], dtype=np.float64)
                weights /= weights.sum()
                mean_norm = float(np.linalg.norm(weights @ deltas))
                norms = np.linalg.norm(deltas, axis=1)
                max_norm = float(norms.max())
                if cluster.scale0 is None:
                    cluster.scale0 = max_norm

                if self._should_split(cluster, mean_norm, max_norm, round_index):
                    left, right = self._bipartition(deltas)
                    if (
                        len(left) >= self.min_cluster_size
                        and len(right) >= self.min_cluster_size
                    ):
                        for side in (left, right):
                            next_clusters.append(
                                _Cluster(
                                    state=new_state.copy(),
                                    members=cluster.members[side],
                                    scale0=cluster.scale0,
                                    history_of_splits=cluster.history_of_splits
                                    + [round_index],
                                )
                            )
                        continue
                cluster.state = new_state
                next_clusters.append(cluster)
            clusters = next_clusters

            labels = self._labels(clusters, m)
            is_last = round_index == n_rounds
            if is_last or round_index % eval_every == 0:
                mean_acc, per_client = env.evaluate_packed(
                    np.stack([c.state for c in clusters]), labels
                )
            history.append(
                RoundRecord(
                    round_index=round_index,
                    mean_train_loss=float(np.mean(losses)),
                    mean_local_accuracy=mean_acc,
                    n_participants=m,
                    n_clusters=len(clusters),
                    uploaded_params=env.tracker.total_uploaded,
                    downloaded_params=env.tracker.total_downloaded,
                    wall_seconds=time.perf_counter() - t0,
                )
            )

        labels = self._labels(clusters, m)
        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=labels,
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
            extras={
                "split_rounds": sorted(
                    {r for c in clusters for r in c.history_of_splits}
                )
            },
        )

    @staticmethod
    def _labels(clusters: list[_Cluster], m: int) -> np.ndarray:
        labels = np.full(m, -1, dtype=np.int64)
        for g, cluster in enumerate(clusters):
            labels[cluster.members] = g
        assert (labels >= 0).all(), "every client must belong to a cluster"
        return labels
