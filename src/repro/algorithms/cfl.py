"""CFL — Clustered Federated Learning (Sattler et al., TNNLS 2020).

The iterative baseline the paper criticises for needing many rounds to
form stable clusters.  CFL trains FedAvg-style inside each cluster and
**recursively bipartitions** a cluster when its aggregated update norm is
small (the cluster objective is near-stationary) while individual client
update norms stay large (the clients disagree) — the incongruence
signature of mixed data distributions.  The bipartition splits clients by
the pairwise cosine similarity of their weight updates.

Implementation notes
--------------------
* The split test uses Sattler's two-threshold criterion.  Because raw
  norm scales depend on model size and learning rate, the default mode is
  *relative*: the aggregated-update norm is compared to the largest
  individual update norm in the same cluster/round
  (``mean_rel = ||Σ wᵢΔᵢ|| / maxᵢ||Δᵢ|| < eps1`` signals incongruence),
  and ``maxᵢ||Δᵢ|| > eps2 × scale₀`` (with ``scale₀`` the cluster's
  first-round max norm) checks that clients are still actually moving.
  Absolute thresholds can be supplied instead (``norm_mode="absolute"``).
* The bipartition is computed with complete-linkage hierarchical
  clustering (k = 2) on cosine *distance* of updates — the same optimal
  max-cross-similarity split Sattler's reference implementation performs.
* Every round ships **full model updates** for every client, which is
  what makes CFL's communication cost high next to FedClust's one-shot
  partial-weight clustering (Table I / C1 experiment).
* Under scenario policy (partial participation / failures / stragglers)
  a cluster only *considers* splitting in rounds where every member's
  update made the deadline — a bipartition over a partial cohort would
  leave the absentees unassignable.  Aggregation still renormalises
  over whatever subset survived.
* ``delta_window > 1`` relaxes that: each member's most recent update
  delta is cached for up to ``W`` rounds, and the split criterion runs
  on the union of cached deltas once every member is covered — so CFL
  can split clusters under partial participation, where a full-cohort
  round might never occur.  Cached deltas are taken against the cluster
  state of the round that produced them (the windowed approximation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import (
    FLAlgorithm,
    RunResult,
    cohort_matrix,
    survivor_mean_loss,
    survivor_weighted_average,
    tasks_for_groups,
)
from repro.cluster.distance import pairwise_cosine_distance
from repro.cluster.hierarchy import cut_by_k, linkage
from repro.fl.client import ClientUpdate
from repro.fl.history import RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import (
    RoundEngine,
    RoundStrategy,
    ScenarioConfig,
    aggregation_weights,
)
from repro.fl.simulation import FederatedEnv
from repro.utils.validation import check_in, check_positive

__all__ = ["CFL"]


@dataclass
class _Cluster:
    """Server-side cluster bookkeeping.

    ``state`` is the cluster model as a packed float64 row on the
    environment's layout — CFL rides the flat plane end to end, so the
    broadcast payload, the Δ baseline and the evaluation input are all
    this one buffer.

    ``delta_cache`` (windowed-split mode only, ``delta_window > 1``)
    holds each member's most recent update delta as
    ``client_id → (round, Δ row, sample count)``; entries age out of
    the window each round, and the split criterion runs on the union of
    cached deltas once every member is covered.
    """

    state: np.ndarray
    members: np.ndarray
    scale0: float | None = None  # first coverage's max update norm
    history_of_splits: list[int] = field(default_factory=list)
    delta_cache: dict[int, tuple[int, np.ndarray, float]] = field(
        default_factory=dict
    )


class _CFLRounds(RoundStrategy):
    """Per-cluster FedAvg plus the recursive bipartition test."""

    name = "cfl"

    def __init__(self, algo: "CFL", clusters: list[_Cluster]) -> None:
        self.algo = algo
        self.clusters = clusters

    def broadcast_for(
        self, engine: RoundEngine, round_index: int, participants: np.ndarray
    ) -> list[UpdateTask]:
        return tasks_for_groups(
            engine.env.federation.n_clients,
            participants,
            [(cluster.state, cluster.members) for cluster in self.clusters],
        )

    def aggregate(
        self, engine: RoundEngine, round_index: int, survivors: list[ClientUpdate]
    ) -> float:
        if not survivors:
            return float("nan")
        env = engine.env
        algo = self.algo
        by_client = {u.client_id: u for u in survivors}
        losses = []
        next_clusters: list[_Cluster] = []
        for cluster in self.clusters:
            mine = [by_client[cid] for cid in cluster.members if cid in by_client]
            if not mine:
                next_clusters.append(cluster)  # dark cluster keeps its model
                continue
            incoming = cluster.state
            cohort = cohort_matrix(env, mine)
            averaged = survivor_weighted_average(env, mine, **engine.robust_kwargs)
            new_state = (
                incoming if averaged is None else env.layout.round_trip(averaged)
            )
            cluster_loss = survivor_mean_loss(mine)
            if not np.isnan(cluster_loss):
                losses.append(cluster_loss)
            # Update vectors Δ_i = local − incoming on the flat plane:
            # one row-broadcast subtraction over the round's packed
            # cohort instead of a per-key dict loop.  The subtraction
            # happens in float64 (pack embeds float32 exactly), where
            # the dict path subtracted in float32 first — norms and
            # split margins agree to float32 round-off; the parity test
            # pins the split decisions.
            deltas = cohort - incoming
            if algo.delta_window > 1 or engine.is_async:
                # The classic full-house gate assumes one dispatch per
                # round; under async aggregation a buffer almost never
                # holds a whole cluster at once, so the gate would
                # silently disable splits forever.  Async engines route
                # through the windowed criterion with a horizon wide
                # enough to cover one dispatch-to-aggregation cycle.
                split = self._windowed_split_sides(
                    cluster, mine, deltas, round_index, engine
                )
            else:
                split = self._full_house_split_sides(
                    cluster, mine, deltas, round_index
                )
            if split is not None:
                left, right = split
                for side in (left, right):
                    next_clusters.append(
                        _Cluster(
                            state=new_state.copy(),
                            members=cluster.members[side],
                            scale0=cluster.scale0,
                            history_of_splits=cluster.history_of_splits
                            + [round_index],
                        )
                    )
                continue
            cluster.state = new_state
            next_clusters.append(cluster)
        self.clusters = next_clusters
        return float(np.mean(losses)) if losses else float("nan")

    # ------------------------------------------------------------------
    # Split candidates: one-round full cohort vs windowed delta cache
    # ------------------------------------------------------------------
    def _full_house_split_sides(
        self,
        cluster: _Cluster,
        mine: list[ClientUpdate],
        deltas: np.ndarray,
        round_index: int,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """The PR-4 criterion: split only on full-cohort rounds.

        Splits (and the scale₀ baseline the relative criterion compares
        against) need the full cohort: with absentees the max-norm is
        taken over a subset — a missing client could have carried the
        largest delta — and a bipartition would leave the absentees on
        neither side.
        """
        algo = self.algo
        weights = np.array([u.n_samples for u in mine], dtype=np.float64)
        weights /= weights.sum()
        mean_norm = float(np.linalg.norm(weights @ deltas))
        norms = np.linalg.norm(deltas, axis=1)
        max_norm = float(norms.max())
        full_house = len(mine) == len(cluster.members)
        if cluster.scale0 is None and full_house:
            cluster.scale0 = max_norm
        if not full_house or not algo._should_split(
            cluster, mean_norm, max_norm, round_index
        ):
            return None
        return self._admissible(algo._bipartition(deltas))

    def _effective_window(self, engine: RoundEngine) -> int:
        """The delta-cache horizon in rounds.

        The configured ``delta_window``, widened under async engines to
        cover at least one dispatch-to-aggregation cycle (maximum
        training duration plus the rounds the buffer takes to fill) —
        with the configured window alone, cache entries could age out
        faster than the event stream can ever cover a cluster.
        """
        window = self.algo.delta_window
        async_cfg = engine.scenario.async_config
        if async_cfg is not None:
            _, hi = async_cfg.duration_range
            window = max(window, hi + async_cfg.buffer_size)
        return window

    def _windowed_split_sides(
        self,
        cluster: _Cluster,
        mine: list[ClientUpdate],
        deltas: np.ndarray,
        round_index: int,
        engine: RoundEngine,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Split on the union of the last ``delta_window`` rounds' deltas.

        Under partial participation a full-cohort round may never happen,
        so each member's most recent Δ is cached for up to ``W`` rounds
        and the split criterion runs once the cache covers every member.
        The cached deltas are taken against the cluster state of the
        round they were produced in — the windowed approximation accepts
        that baseline drift in exchange for split decisions at low ``C``.
        Updates that carry no aggregation weight (zero-budget clients:
        zero steps, zero delta) contribute no signal and are not cached.
        """
        algo = self.algo
        wire_dtype = engine.env.layout.wire_dtype
        update_weights = aggregation_weights(mine)
        for update, row, weight in zip(mine, deltas, update_weights):
            if weight > 0.0:
                # Copy the row out of the round's (cohort × n_params)
                # delta matrix: caching the view would pin the whole
                # matrix alive until the entry ages out — W full cohort
                # matrices per cluster instead of one vector per member.
                # Stored at the wire dtype: a Δ already crossed the
                # network at that precision, and float64 rows cost 2×
                # the memory (~800 MB worst case at 64 × 1.6M × W=8)
                # for split margins the parity test pins either way.
                cluster.delta_cache[update.client_id] = (
                    round_index,
                    row.astype(wire_dtype),
                    float(update.n_samples),
                )
        horizon = round_index - self._effective_window(engine)
        cluster.delta_cache = {
            cid: entry
            for cid, entry in cluster.delta_cache.items()
            if entry[0] > horizon
        }
        if any(cid not in cluster.delta_cache for cid in cluster.members):
            return None  # window does not cover the cohort yet
        cached = [cluster.delta_cache[int(cid)] for cid in cluster.members]
        delta_mat = np.stack([entry[1] for entry in cached]).astype(np.float64)
        weights = np.array([entry[2] for entry in cached], dtype=np.float64)
        weights /= weights.sum()
        mean_norm = float(np.linalg.norm(weights @ delta_mat))
        max_norm = float(np.linalg.norm(delta_mat, axis=1).max())
        if cluster.scale0 is None:
            cluster.scale0 = max_norm
        if not algo._should_split(cluster, mean_norm, max_norm, round_index):
            return None
        return self._admissible(algo._bipartition(delta_mat))

    def _admissible(
        self, sides: tuple[np.ndarray, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """A bipartition both halves of which satisfy the size floor."""
        left, right = sides
        if (
            len(left) >= self.algo.min_cluster_size
            and len(right) >= self.algo.min_cluster_size
        ):
            return left, right
        return None

    def evaluate(
        self, engine: RoundEngine, round_index: int
    ) -> tuple[float, np.ndarray]:
        env = engine.env
        return env.evaluate_packed(
            np.stack([c.state for c in self.clusters]),
            self.labels(env.federation.n_clients),
        )

    def current_n_clusters(self) -> int:
        return len(self.clusters)

    def labels(self, m: int) -> np.ndarray:
        labels = np.full(m, -1, dtype=np.int64)
        for g, cluster in enumerate(self.clusters):
            labels[cluster.members] = g
        assert (labels >= 0).all(), "every client must belong to a cluster"
        return labels

    def checkpoint_payload(
        self, engine: RoundEngine
    ) -> tuple[dict, dict[str, np.ndarray]]:
        # Cluster states are round_trip results (or the packed initial
        # state) — exact at the wire dtype; cached deltas already live
        # at the wire dtype, so storing them there is lossless too.
        wire = engine.env.layout.wire_dtype
        meta_clusters: list[dict] = []
        cache_rows: list[np.ndarray] = []
        for cluster in self.clusters:
            cache_meta = []
            for cid in sorted(cluster.delta_cache):
                produced, row, weight = cluster.delta_cache[cid]
                cache_meta.append(
                    {
                        "client_id": int(cid),
                        "round": int(produced),
                        "weight": float(weight),
                    }
                )
                cache_rows.append(np.asarray(row, dtype=wire))
            meta_clusters.append(
                {
                    "members": [int(c) for c in cluster.members],
                    "scale0": (
                        None if cluster.scale0 is None else float(cluster.scale0)
                    ),
                    "splits": [int(r) for r in cluster.history_of_splits],
                    "cache": cache_meta,
                }
            )
        n_params = engine.env.n_params
        arrays = {
            "states": np.stack([c.state for c in self.clusters]).astype(wire),
            "cache_rows": (
                np.stack(cache_rows)
                if cache_rows
                else np.empty((0, n_params), dtype=wire)
            ),
        }
        return {"clusters": meta_clusters}, arrays

    def restore_payload(
        self, engine: RoundEngine, meta, arrays
    ) -> None:
        states = arrays["states"].astype(np.float64)
        cache_rows = arrays["cache_rows"]
        clusters: list[_Cluster] = []
        cursor = 0
        for g, entry in enumerate(meta["clusters"]):
            cache: dict[int, tuple[int, np.ndarray, float]] = {}
            for item in entry["cache"]:
                cache[int(item["client_id"])] = (
                    int(item["round"]),
                    cache_rows[cursor],
                    float(item["weight"]),
                )
                cursor += 1
            clusters.append(
                _Cluster(
                    state=states[g],
                    members=np.array(entry["members"], dtype=np.int64),
                    scale0=(
                        None if entry["scale0"] is None else float(entry["scale0"])
                    ),
                    history_of_splits=[int(r) for r in entry["splits"]],
                    delta_cache=cache,
                )
            )
        self.clusters = clusters


class CFL(FLAlgorithm):
    """Iterative bipartitioning clustered FL.

    Parameters
    ----------
    eps1:
        Incongruence threshold.  Relative mode: split candidates need
        ``||avg update|| / max ||update|| < eps1``.
    eps2:
        Progress threshold.  Relative mode: ``max ||update||`` must exceed
        ``eps2 × scale₀``.
    warmup_rounds:
        No splits before this round (clusters must first approach their
        joint stationary point).
    min_cluster_size:
        Never create a cluster smaller than this.
    norm_mode:
        ``"relative"`` (default, scale-free) or ``"absolute"``.
    delta_window:
        ``1`` (default) reproduces the classic criterion: a cluster only
        considers splitting in rounds where every member's update made
        the deadline — which under partial participation may be never.
        With ``W > 1`` the cluster caches each member's most recent
        update delta for up to ``W`` rounds and splits on the union of
        the cached deltas once every member is covered, restoring splits
        at low client fractions.  Each cached row costs one ``n_params``
        vector at the layout's wire dtype (float32 for float32 models)
        until it ages out.
    """

    name = "cfl"

    def __init__(
        self,
        eps1: float = 0.4,
        eps2: float = 0.08,
        warmup_rounds: int = 3,
        min_cluster_size: int = 2,
        norm_mode: str = "relative",
        delta_window: int = 1,
    ) -> None:
        check_positive("eps1", eps1)
        check_positive("eps2", eps2)
        check_positive("warmup_rounds", warmup_rounds)
        check_positive("min_cluster_size", min_cluster_size)
        check_in("norm_mode", norm_mode, ("relative", "absolute"))
        check_positive("delta_window", delta_window)
        self.eps1 = eps1
        self.eps2 = eps2
        self.warmup_rounds = warmup_rounds
        self.min_cluster_size = min_cluster_size
        self.norm_mode = norm_mode
        self.delta_window = int(delta_window)

    # ------------------------------------------------------------------
    def _should_split(
        self, cluster: _Cluster, mean_norm: float, max_norm: float, round_index: int
    ) -> bool:
        if round_index <= self.warmup_rounds:
            return False
        if len(cluster.members) < 2 * self.min_cluster_size:
            return False
        if self.norm_mode == "absolute":
            return mean_norm < self.eps1 and max_norm > self.eps2
        if max_norm <= 0:
            return False
        scale0 = cluster.scale0 if cluster.scale0 else max_norm
        return (mean_norm / max_norm) < self.eps1 and max_norm > self.eps2 * scale0

    @staticmethod
    def _bipartition(update_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split rows into two groups by cosine-distance complete linkage."""
        d = pairwise_cosine_distance(update_matrix)
        labels = cut_by_k(linkage(d, "complete"), 2)
        return np.flatnonzero(labels == 0), np.flatnonzero(labels == 1)

    # ------------------------------------------------------------------
    def run(
        self,
        env: FederatedEnv,
        n_rounds: int,
        eval_every: int = 1,
        scenario: ScenarioConfig | None = None,
    ) -> RunResult:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        m = env.federation.n_clients
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        strategy = _CFLRounds(
            self,
            [_Cluster(state=env.layout.pack(env.init_state()), members=np.arange(m))],
        )
        engine = RoundEngine(env, self._scenario(scenario))
        mean_acc, per_client = engine.run(
            strategy, n_rounds, history, eval_every=eval_every
        )
        labels = strategy.labels(m)
        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=labels,
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
            extras={
                "split_rounds": sorted(
                    {r for c in strategy.clusters for r in c.history_of_splits}
                ),
                "engine_record": engine.run_record(),
            },
        )
