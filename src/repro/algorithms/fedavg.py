"""FedAvg (McMahan et al., AISTATS 2017) — the reference baseline.

One global model; every round the participants train it locally and the
server averages the results weighted by local sample count (Eq. 1 of the
FedClust paper).  Under severe label skew the single global model fits
no client's distribution well — the failure mode every clustered method
in Table I is built to fix.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.base import FLAlgorithm, RunResult, fedavg_round_flat
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.simulation import FederatedEnv
from repro.utils.validation import check_fraction

__all__ = ["FedAvg"]


class FedAvg(FLAlgorithm):
    """Single-global-model federated averaging.

    Parameters
    ----------
    client_fraction:
        Fraction ``C`` of clients sampled per round (1.0 = full
        participation, the paper-scale default).
    """

    name = "fedavg"

    def __init__(self, client_fraction: float = 1.0) -> None:
        self.client_fraction = check_fraction("client_fraction", client_fraction)

    #: Proximal coefficient; 0 for FedAvg, overridden by FedProx.
    prox_mu: float = 0.0

    def run(self, env: FederatedEnv, n_rounds: int, eval_every: int = 1) -> RunResult:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        # The global model lives as one packed row for the whole run:
        # broadcast payload, aggregation result and evaluation input are
        # all the same buffer — no state dict on the round loop.
        vector = env.layout.pack(env.init_state())
        m = env.federation.n_clients
        mean_acc, per_client = float("nan"), np.full(m, np.nan)

        for round_index in range(1, n_rounds + 1):
            t0 = time.perf_counter()
            participants = self._participants(env, round_index, self.client_fraction)
            vector, mean_loss, _ = fedavg_round_flat(
                env, vector, participants, round_index, prox_mu=self.prox_mu
            )
            is_last = round_index == n_rounds
            if is_last or round_index % eval_every == 0:
                # Grouped eval: the one global model is loaded once and
                # every client's test split shares the fused batches.
                mean_acc, per_client = env.evaluate_packed(
                    vector, np.zeros(m, dtype=np.int64)
                )
            history.append(
                RoundRecord(
                    round_index=round_index,
                    mean_train_loss=mean_loss,
                    mean_local_accuracy=mean_acc,
                    n_participants=len(participants),
                    n_clusters=1,
                    uploaded_params=env.tracker.total_uploaded,
                    downloaded_params=env.tracker.total_downloaded,
                    wall_seconds=time.perf_counter() - t0,
                )
            )

        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=np.zeros(m, dtype=np.int64),
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
        )
