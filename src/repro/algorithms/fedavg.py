"""FedAvg (McMahan et al., AISTATS 2017) — the reference baseline.

One global model; every round the participants train it locally and the
server averages the results weighted by local sample count (Eq. 1 of the
FedClust paper).  Under severe label skew the single global model fits
no client's distribution well — the failure mode every clustered method
in Table I is built to fix.

The per-round lifecycle lives in :class:`repro.fl.rounds.RoundEngine`;
FedAvg is the engine driving :class:`repro.algorithms.base.GlobalModelRounds`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.algorithms.base import FLAlgorithm, GlobalModelRounds, RunResult
from repro.fl.history import RunHistory
from repro.fl.rounds import RoundEngine, ScenarioConfig
from repro.fl.simulation import FederatedEnv
from repro.utils.validation import check_fraction

__all__ = ["FedAvg"]


class FedAvg(FLAlgorithm):
    """Single-global-model federated averaging.

    Parameters
    ----------
    client_fraction:
        Fraction ``C`` of clients sampled per round (1.0 = full
        participation, the paper-scale default).  Legacy sugar for
        ``ScenarioConfig(client_fraction=...)``: a ``scenario`` passed
        to :meth:`run` that leaves participation at its default merges
        with this value; setting a *different* fraction in both places
        is a loud configuration error.
    """

    name = "fedavg"

    def __init__(self, client_fraction: float = 1.0) -> None:
        self.client_fraction = check_fraction("client_fraction", client_fraction)

    #: Proximal coefficient; 0 for FedAvg, overridden by FedProx.
    prox_mu: float = 0.0

    def _scenario(self, scenario: ScenarioConfig | None) -> ScenarioConfig:
        if scenario is None:
            return ScenarioConfig(client_fraction=self.client_fraction)
        if self.client_fraction >= 1.0:
            return scenario
        if scenario.client_fraction >= 1.0:
            # A scenario that leaves participation at its default merges
            # with the constructor fraction — adding failure injection
            # must not silently revert a configured C to 1.0.
            return dataclasses.replace(
                scenario, client_fraction=self.client_fraction
            )
        if scenario.client_fraction != self.client_fraction:
            raise ValueError(
                "conflicting client fractions: constructor set "
                f"{self.client_fraction}, scenario set "
                f"{scenario.client_fraction} — configure it in one place"
            )
        return scenario

    def run(
        self,
        env: FederatedEnv,
        n_rounds: int,
        eval_every: int = 1,
        scenario: ScenarioConfig | None = None,
    ) -> RunResult:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        # The global model lives as one packed row for the whole run:
        # broadcast payload, aggregation result and evaluation input are
        # all the same buffer — no state dict on the round loop.
        strategy = GlobalModelRounds(
            env.layout.pack(env.init_state()), prox_mu=self.prox_mu
        )
        engine = RoundEngine(env, self._scenario(scenario))
        mean_acc, per_client = engine.run(
            strategy, n_rounds, history, eval_every=eval_every
        )
        m = env.federation.n_clients
        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=np.zeros(m, dtype=np.int64),
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
            extras={
                "drop_log": engine.drop_log,
                "straggler_log": engine.straggler_log,
                "stale_log": engine.stale_log,
                "departure_log": engine.departure_log,
                "quarantine_log": engine.quarantine_log,
                # The schedule that actually happened (dispatches minus
                # seeded drops/deadline misses) — replayable through
                # ``ScenarioConfig(trace=...)``.
                "realized_trace": engine.realized_trace(),
                "engine_record": engine.run_record(),
            },
        )
