"""Algorithm registry: name → configured strategy.

The Table-I harness instantiates all six methods through this registry,
so a bench or example can sweep methods with plain strings.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.base import FLAlgorithm
from repro.algorithms.cfl import CFL
from repro.algorithms.fedavg import FedAvg
from repro.algorithms.fedprox import FedProx
from repro.algorithms.ifca import IFCA
from repro.algorithms.local_only import LocalOnly
from repro.algorithms.pacfl import PACFL
from repro.core.fedclust import FedClust, FedClustConfig

__all__ = ["ALGORITHMS", "available_algorithms", "make_algorithm"]

ALGORITHMS: dict[str, Callable[..., FLAlgorithm]] = {
    "fedavg": FedAvg,
    "fedprox": FedProx,
    "cfl": CFL,
    "ifca": IFCA,
    "pacfl": PACFL,
    "fedclust": FedClust,
    "local_only": LocalOnly,
}


def available_algorithms() -> list[str]:
    """Registry keys, Table-I order (``local_only`` is an extra
    no-collaboration reference beyond the paper's Table I)."""
    return ["fedavg", "fedprox", "cfl", "ifca", "pacfl", "fedclust"]


def make_algorithm(name: str, **kwargs) -> FLAlgorithm:
    """Instantiate a method by name with its own constructor kwargs.

    ``fedclust`` accepts either a ready ``config=FedClustConfig(...)`` or
    the config's keyword fields directly.
    """
    key = name.lower()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; options: {available_algorithms()}"
        )
    if key == "fedclust" and kwargs and "config" not in kwargs:
        return FedClust(FedClustConfig(**kwargs))
    return ALGORITHMS[key](**kwargs)
