"""Baseline federated-learning algorithms (Table I comparators)."""

from repro.algorithms.base import (
    ClusteredRounds,
    FLAlgorithm,
    GlobalModelRounds,
    RunResult,
    evaluate_assignment,
    fedavg_round,
    fedavg_round_flat,
    run_clustered_training,
    states_for_clients,
)
from repro.algorithms.cfl import CFL
from repro.algorithms.fedavg import FedAvg
from repro.algorithms.fedprox import FedProx
from repro.algorithms.ifca import IFCA
from repro.algorithms.local_only import LocalOnly
from repro.algorithms.pacfl import PACFL
from repro.algorithms.registry import (
    ALGORITHMS,
    available_algorithms,
    make_algorithm,
)

__all__ = [
    "ClusteredRounds",
    "FLAlgorithm",
    "GlobalModelRounds",
    "RunResult",
    "evaluate_assignment",
    "fedavg_round",
    "fedavg_round_flat",
    "run_clustered_training",
    "states_for_clients",
    "CFL",
    "FedAvg",
    "FedProx",
    "IFCA",
    "LocalOnly",
    "PACFL",
    "ALGORITHMS",
    "available_algorithms",
    "make_algorithm",
]
