"""Algorithm interface and shared round machinery.

Every method in the paper's Table I — FedAvg, FedProx, CFL, IFCA, PACFL
and FedClust — is a strategy object with a single entry point,
``run(env, n_rounds)``.  The helpers here implement the two recurring
building blocks so each algorithm file only contains what is genuinely
different about it:

* :func:`fedavg_round` — broadcast a state to a member set, train
  locally, aggregate by sample count, account the traffic;
* :func:`run_clustered_training` — the per-cluster FedAvg loop that
  one-shot methods (FedClust, PACFL) enter after clustering.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.fl.aggregation import packed_weighted_average
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.sampling import full_participation, uniform_sample
from repro.fl.simulation import FederatedEnv
from repro.nn.state_flat import unpack_state

__all__ = [
    "RunResult",
    "FLAlgorithm",
    "fedavg_round",
    "fedavg_round_flat",
    "cohort_matrix",
    "states_for_clients",
    "evaluate_assignment",
    "run_clustered_training",
]


def cohort_matrix(env: FederatedEnv, updates: Sequence) -> np.ndarray:
    """Stack a round's client updates into one ``(m, n_params)`` matrix.

    Uses each update's ``flat`` vector (populated by every executor);
    updates built by hand without one are packed here, so external
    executors that only fill ``state`` still work.
    """
    return np.stack(
        [
            u.flat if u.flat is not None else env.layout.pack(u.state)
            for u in updates
        ]
    )


@dataclass
class RunResult:
    """End-of-run artefacts shared by all algorithms.

    ``final_accuracy``/``accuracy_std`` are the Table-I statistics *within*
    a run (mean/std over clients); the cross-seed std the paper reports is
    computed by the experiment driver over several ``RunResult``s.
    """

    history: RunHistory
    final_accuracy: float
    accuracy_std: float
    per_client_accuracy: np.ndarray
    cluster_labels: np.ndarray | None = None
    comm: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        if self.cluster_labels is None:
            return 1
        return int(np.max(self.cluster_labels)) + 1


class FLAlgorithm(abc.ABC):
    """A federated training strategy."""

    #: Registry/reporting name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, env: FederatedEnv, n_rounds: int, eval_every: int = 1) -> RunResult:
        """Train for ``n_rounds`` communication rounds on ``env``.

        ``eval_every`` throttles the (per-client) evaluation pass; the
        final round is always evaluated.
        """

    def _participants(
        self, env: FederatedEnv, round_index: int, fraction: float
    ) -> np.ndarray:
        """Sample this round's participants (full participation if 1.0)."""
        if fraction >= 1.0:
            return full_participation(env.federation.n_clients)
        return uniform_sample(
            env.federation.n_clients, fraction, env.server_rng(round_index)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def fedavg_round_flat(
    env: FederatedEnv,
    vector: np.ndarray,
    members: Sequence[int],
    round_index: int,
    prox_mu: float = 0.0,
    phase: str = "training",
) -> tuple[np.ndarray, float, list]:
    """One FedAvg round entirely on the flat plane.

    ``vector`` is the packed broadcast state (one float64 row on the
    environment's layout); every member receives it as its task payload
    — no state dict exists at any point of the round.  Returns
    ``(aggregated_vector, mean_train_loss, updates)`` where the
    aggregated vector is rounded through the parameter dtypes
    (:meth:`repro.nn.state_flat.StateLayout.round_trip`), so carrying it
    into the next round is bit-identical to the dict path's
    unpack → load → repack cycle.  Traffic: every member downloads the
    full model and uploads its full update.
    """
    if len(members) == 0:
        raise ValueError("fedavg_round needs at least one member")
    vector = np.asarray(vector, dtype=np.float64)
    tasks = [
        UpdateTask(int(cid), flat=vector, prox_mu=prox_mu) for cid in members
    ]
    env.tracker.record_download(env.n_params * len(members), phase)
    updates = env.run_updates(tasks, round_index)
    env.tracker.record_upload(env.n_params * len(members), phase)
    # Aggregate on the flat plane: one GEMV over the stacked updates
    # instead of a per-key loop over state dicts.
    new_vector = packed_weighted_average(
        cohort_matrix(env, updates), [u.n_samples for u in updates]
    )
    mean_loss = float(np.mean([u.mean_loss for u in updates]))
    return env.layout.round_trip(new_vector), mean_loss, updates


def fedavg_round(
    env: FederatedEnv,
    state: Mapping[str, np.ndarray],
    members: Sequence[int],
    round_index: int,
    prox_mu: float = 0.0,
    phase: str = "training",
) -> tuple[dict[str, np.ndarray], float, list]:
    """Dict-API view of :func:`fedavg_round_flat`.

    Packs ``state`` once, runs the flat round, and unpacks the result —
    numbers are identical to the historical dict implementation (packing
    is exact and the flat round rounds its output through the parameter
    dtypes).  Kept for external callers; the in-tree algorithms ride the
    flat version directly.
    """
    vector, mean_loss, updates = fedavg_round_flat(
        env,
        env.layout.pack(state),
        members,
        round_index,
        prox_mu=prox_mu,
        phase=phase,
    )
    return dict(unpack_state(vector, env.layout)), mean_loss, updates


def states_for_clients(
    cluster_states: Sequence[Mapping[str, np.ndarray]], labels: np.ndarray
) -> list[Mapping[str, np.ndarray]]:
    """Expand per-cluster states to a per-client list via ``labels``."""
    labels = np.asarray(labels)
    if labels.min() < 0 or labels.max() >= len(cluster_states):
        raise ValueError(
            f"labels reference clusters outside [0, {len(cluster_states)})"
        )
    return [cluster_states[int(g)] for g in labels]


def evaluate_assignment(
    env: FederatedEnv,
    cluster_states: Sequence[Mapping[str, np.ndarray]],
    labels: np.ndarray,
) -> tuple[float, np.ndarray]:
    """Mean local accuracy when each client is served its cluster model.

    Grouped evaluation: each cluster model is loaded once and its
    members' test splits share forward batches (no per-client state
    list is ever expanded).
    """
    return env.evaluate_assignment(cluster_states, labels)


def run_clustered_training(
    env: FederatedEnv,
    labels: np.ndarray,
    cluster_states: list[dict[str, np.ndarray]],
    history: RunHistory,
    n_rounds: int,
    first_round: int,
    eval_every: int = 1,
    client_fraction: float = 1.0,
) -> tuple[list[dict[str, np.ndarray]], float, np.ndarray]:
    """Per-cluster FedAvg for rounds ``first_round .. first_round+n_rounds-1``.

    Used by the one-shot methods after their clustering step.  Returns the
    final cluster states and the last evaluation (mean, per-client vector).

    Internally the cluster models live as rows of one packed
    ``(n_clusters, n_params)`` matrix: broadcasts are row payloads,
    aggregation writes rows back, and evaluation consumes the matrix
    directly (:meth:`FederatedEnv.evaluate_packed`).  The dict states in
    ``cluster_states`` are packed once on entry and unpacked once on
    return — numbers match the historical per-round dict cycle exactly.
    """
    labels = np.asarray(labels)
    n_clusters = len(cluster_states)
    members_of = [np.flatnonzero(labels == g) for g in range(n_clusters)]
    mean_acc, per_client = float("nan"), np.full(env.federation.n_clients, np.nan)
    matrix = np.stack([env.layout.pack(state) for state in cluster_states])

    for offset in range(n_rounds):
        round_index = first_round + offset
        t0 = time.perf_counter()
        losses = []
        rng = env.server_rng(round_index)
        for g in range(n_clusters):
            members = members_of[g]
            if len(members) == 0:
                continue
            if client_fraction < 1.0 and len(members) > 1:
                n_pick = max(1, int(round(client_fraction * len(members))))
                members = np.sort(rng.choice(members, size=n_pick, replace=False))
            new_vector, loss, _ = fedavg_round_flat(
                env, matrix[g], members, round_index
            )
            matrix[g] = new_vector
            losses.append(loss)

        is_last = offset == n_rounds - 1
        if is_last or (round_index % eval_every == 0):
            mean_acc, per_client = env.evaluate_packed(matrix, labels)
        history.append(
            RoundRecord(
                round_index=round_index,
                mean_train_loss=float(np.mean(losses)) if losses else float("nan"),
                mean_local_accuracy=mean_acc,
                n_participants=int(sum(len(m) for m in members_of)),
                n_clusters=n_clusters,
                uploaded_params=env.tracker.total_uploaded,
                downloaded_params=env.tracker.total_downloaded,
                wall_seconds=time.perf_counter() - t0,
            )
        )
    cluster_states = [dict(unpack_state(row, env.layout)) for row in matrix]
    return cluster_states, mean_acc, per_client
