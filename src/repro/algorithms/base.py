"""Algorithm interface and shared round machinery.

Every method in the paper's Table I — FedAvg, FedProx, CFL, IFCA, PACFL
and FedClust — is a strategy object with a single entry point,
``run(env, n_rounds)``.  Since the round-engine refactor the per-round
lifecycle (participant selection, broadcast, dispatch, failure and
straggler injection, aggregation over survivors, evaluation cadence,
history logging) lives once in :class:`repro.fl.rounds.RoundEngine`;
this module contributes the building blocks the algorithms plug into it:

* :class:`GlobalModelRounds` — the single-global-model strategy
  (FedAvg/FedProx);
* :class:`ClusteredRounds` — per-cluster FedAvg over a packed
  ``(n_clusters, n_params)`` matrix, used by the one-shot methods
  (FedClust, PACFL) after clustering;
* :func:`fedavg_round` / :func:`fedavg_round_flat` — the one-round
  primitive, kept as the reference kernel for external callers, tests
  and the engine-overhead benchmark.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.fl.aggregation import packed_weighted_average
from repro.fl.client import ClientUpdate
from repro.fl.defense import robust_weighted_average
from repro.fl.history import RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import (
    RoundEngine,
    RoundStrategy,
    ScenarioConfig,
    aggregation_weights,
)
from repro.fl.simulation import FederatedEnv
from repro.fl.store import tiered_weighted_average
from repro.nn.state_flat import unpack_state

__all__ = [
    "RunResult",
    "FLAlgorithm",
    "GlobalModelRounds",
    "ClusteredRounds",
    "fedavg_round",
    "fedavg_round_flat",
    "cohort_matrix",
    "states_for_clients",
    "survivor_mean_loss",
    "survivor_weighted_average",
    "tasks_for_groups",
    "evaluate_assignment",
    "run_clustered_training",
]


def tasks_for_groups(
    n_clients: int,
    participants: np.ndarray,
    groups: Sequence[tuple[np.ndarray, Sequence[int]]],
) -> list[UpdateTask]:
    """Broadcast tasks for participating members of packed-row groups.

    ``groups`` is ``(row, members)`` per server model.  Each group's
    participants share the row *object* as their payload — the invariant
    executors rely on to encode a broadcast once and the batched
    executor relies on to form one lockstep cohort per group.  Task
    order is group-major, members ascending: the order the historical
    per-cluster dispatch produced, which keeps per-cluster aggregation
    summation bit-identical.
    """
    present = np.zeros(n_clients, dtype=bool)
    present[participants] = True
    tasks: list[UpdateTask] = []
    for row, members in groups:
        tasks.extend(
            UpdateTask(int(cid), flat=row) for cid in members if present[cid]
        )
    return tasks


def cohort_matrix(env: FederatedEnv, updates: Sequence) -> np.ndarray:
    """Stack a round's client updates into one ``(m, n_params)`` matrix.

    Uses each update's ``flat`` vector (populated by every executor);
    updates built by hand without one are packed here, so external
    executors that only fill ``state`` still work.
    """
    return np.stack(
        [
            u.flat if u.flat is not None else env.layout.pack(u.state)
            for u in updates
        ]
    )


def survivor_mean_loss(survivors: Sequence[ClientUpdate]) -> float:
    """Mean train loss over the survivors that actually trained.

    A zero-budget client reports a fabricated ``0.0`` loss over zero
    batches; averaging it in would bias the round statistic toward zero
    (``compute_budget=(0, 0)`` would log perfect convergence while the
    model never moves).  NaN when nobody took a step.
    """
    losses = [u.mean_loss for u in survivors if u.n_batches > 0]
    return float(np.mean(losses)) if losses else float("nan")


def survivor_weighted_average(
    env: FederatedEnv,
    updates: Sequence[ClientUpdate],
    robust_agg: str = "none",
    trim_fraction: float = 0.1,
) -> np.ndarray | None:
    """FedAvg rule over a round's survivors, scenario-middleware aware.

    The staleness-aware aggregation primitive every strategy shares:
    weights come from :func:`repro.fl.rounds.aggregation_weights`
    (sample counts by default; steps-taken under compute budgets;
    discounted for stale arrivals) and renormalise over whatever subset
    was passed in.  Zero-weight updates — e.g. a zero-budget client that
    took no step — are excluded from the average entirely, so they
    provably contribute nothing; returns ``None`` when no positive
    weight remains (the caller keeps its model, as for a dark round).

    ``robust_agg``/``trim_fraction`` select the aggregation rule at
    this choke point (see
    :func:`repro.fl.defense.robust_weighted_average`); strategies
    splat ``engine.robust_kwargs`` here so the scenario's policy
    reaches every call site.  Under ``"none"`` — and the default
    scenario — every weight is the sample count, so the result is
    bit-identical to the historical
    ``packed_weighted_average(cohort, [u.n_samples ...])`` call.

    When the environment's store config enables tiered aggregation
    (``edge_size > 0``) and the rule is the plain weighted average, the
    GEMV is split across edge aggregators
    (:func:`repro.fl.store.tiered_weighted_average`); a single edge —
    and the default ``edge_size = 0`` — is bit-identical to the flat
    kernel, so every seeded pin runs unchanged.
    """
    if not updates:
        return None
    weights = aggregation_weights(updates)
    keep = weights > 0.0
    if not keep.any():
        return None
    if keep.all():
        live, live_weights = updates, weights
    else:
        live = [u for u, k in zip(updates, keep) if k]
        live_weights = weights[keep]
    store_config = getattr(env, "store_config", None)
    if robust_agg == "none" and store_config is not None and store_config.edge_size > 0:
        return tiered_weighted_average(
            cohort_matrix(env, live), live_weights, store_config.edge_size
        )
    return robust_weighted_average(
        cohort_matrix(env, live), live_weights, robust_agg, trim_fraction
    )


@dataclass
class RunResult:
    """End-of-run artefacts shared by all algorithms.

    ``final_accuracy``/``accuracy_std`` are the Table-I statistics *within*
    a run (mean/std over clients); the cross-seed std the paper reports is
    computed by the experiment driver over several ``RunResult``s.
    """

    history: RunHistory
    final_accuracy: float
    accuracy_std: float
    per_client_accuracy: np.ndarray
    cluster_labels: np.ndarray | None = None
    comm: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        if self.cluster_labels is None:
            return 1
        return int(np.max(self.cluster_labels)) + 1


class FLAlgorithm(abc.ABC):
    """A federated training strategy."""

    #: Registry/reporting name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        env: FederatedEnv,
        n_rounds: int,
        eval_every: int = 1,
        scenario: ScenarioConfig | None = None,
    ) -> RunResult:
        """Train for ``n_rounds`` communication rounds on ``env``.

        ``eval_every`` throttles the (per-client) evaluation pass; the
        final round is always evaluated.  ``scenario`` sets the
        system-heterogeneity policy (participation fraction, failures,
        stragglers, arrivals); ``None`` is the paper-scale default —
        every client, every round.
        """

    def _scenario(self, scenario: ScenarioConfig | None) -> ScenarioConfig:
        """Resolve the effective scenario (default: full participation)."""
        return scenario if scenario is not None else ScenarioConfig()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Shared strategies
# ----------------------------------------------------------------------
class GlobalModelRounds(RoundStrategy):
    """One global model as a packed row: FedAvg's (and FedProx's) round.

    The broadcast payload, the aggregation result and the evaluation
    input are all the same buffer — no state dict on the round loop.
    """

    name = "global"

    def __init__(self, vector: np.ndarray, prox_mu: float = 0.0) -> None:
        self.vector = np.asarray(vector, dtype=np.float64)
        self.prox_mu = prox_mu

    def broadcast_for(
        self, engine: RoundEngine, round_index: int, participants: np.ndarray
    ) -> list[UpdateTask]:
        return [
            UpdateTask(int(cid), flat=self.vector, prox_mu=self.prox_mu)
            for cid in participants
        ]

    def aggregate(
        self, engine: RoundEngine, round_index: int, survivors: list[ClientUpdate]
    ) -> float:
        if not survivors:
            return float("nan")
        env = engine.env
        # One GEMV over the stacked survivor updates; weights
        # renormalise over whoever made the deadline (plus any stale
        # arrivals, at their discounted weight).
        new_vector = survivor_weighted_average(
            env, survivors, **engine.robust_kwargs
        )
        if new_vector is not None:
            self.vector = env.layout.round_trip(new_vector)
        return survivor_mean_loss(survivors)

    def evaluate(
        self, engine: RoundEngine, round_index: int
    ) -> tuple[float, np.ndarray]:
        env = engine.env
        # Grouped eval: the one global model is loaded once and every
        # client's test split shares the fused batches.
        return env.evaluate_packed(
            self.vector,
            np.zeros(env.federation.n_clients, dtype=np.int64),
        )

    def checkpoint_payload(
        self, engine: RoundEngine
    ) -> tuple[dict, dict[str, np.ndarray]]:
        # The vector is always a round_trip result (or the packed
        # initial state), so the wire dtype stores it exactly.
        wire = engine.env.layout.wire_dtype
        return {"prox_mu": float(self.prox_mu)}, {
            "vector": self.vector.astype(wire)
        }

    def restore_payload(
        self, engine: RoundEngine, meta: Mapping, arrays: Mapping[str, np.ndarray]
    ) -> None:
        self.vector = arrays["vector"].astype(np.float64)
        self.prox_mu = float(meta["prox_mu"])


class ClusteredRounds(RoundStrategy):
    """Per-cluster FedAvg over one packed ``(n_clusters, n_params)`` matrix.

    Broadcasts are row payloads (each cluster's participants share the
    row object, so executors encode it once and the batched executor
    trains the cluster as one lockstep cohort), aggregation writes rows
    back, and evaluation consumes the matrix directly.  A cluster with
    no surviving participants this round keeps its model.
    """

    name = "clustered"

    def __init__(self, matrix: np.ndarray, labels: np.ndarray) -> None:
        self.matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        self.labels = np.asarray(labels).copy()
        self._rebuild_members()

    def _rebuild_members(self) -> None:
        self.members_of = [
            np.flatnonzero(self.labels == g) for g in range(len(self.matrix))
        ]

    def set_label(self, client_id: int, cluster: int) -> None:
        """Re-route one client (newcomer onboarding, straggler rescue)."""
        if not 0 <= cluster < len(self.matrix):
            raise ValueError(
                f"cluster {cluster} outside [0, {len(self.matrix)})"
            )
        self.labels[client_id] = cluster
        self._rebuild_members()

    def broadcast_for(
        self, engine: RoundEngine, round_index: int, participants: np.ndarray
    ) -> list[UpdateTask]:
        return tasks_for_groups(
            engine.env.federation.n_clients,
            participants,
            [(self.matrix[g], members) for g, members in enumerate(self.members_of)],
        )

    def aggregate(
        self, engine: RoundEngine, round_index: int, survivors: list[ClientUpdate]
    ) -> float:
        if not survivors:
            return float("nan")
        env = engine.env
        losses = []
        for g in range(len(self.matrix)):
            mine = [u for u in survivors if self.labels[u.client_id] == g]
            if not mine:
                continue  # cluster went dark this round: keep its model
            new_vector = survivor_weighted_average(
                env, mine, **engine.robust_kwargs
            )
            if new_vector is None:
                continue  # only zero-weight work arrived: keep its model
            self.matrix[g] = env.layout.round_trip(new_vector)
            cluster_loss = survivor_mean_loss(mine)
            if not np.isnan(cluster_loss):
                losses.append(cluster_loss)
        return float(np.mean(losses)) if losses else float("nan")

    def evaluate(
        self, engine: RoundEngine, round_index: int
    ) -> tuple[float, np.ndarray]:
        return engine.env.evaluate_packed(self.matrix, self.labels)

    def current_n_clusters(self) -> int:
        return len(self.matrix)

    def checkpoint_payload(
        self, engine: RoundEngine
    ) -> tuple[dict, dict[str, np.ndarray]]:
        # Every row is a round_trip result (or a packed initial state):
        # exact at the wire dtype.
        wire = engine.env.layout.wire_dtype
        return {}, {
            "matrix": self.matrix.astype(wire),
            "labels": self.labels.astype(np.int64),
        }

    def restore_payload(
        self, engine: RoundEngine, meta: Mapping, arrays: Mapping[str, np.ndarray]
    ) -> None:
        self.matrix = np.ascontiguousarray(arrays["matrix"], dtype=np.float64)
        self.labels = arrays["labels"].astype(np.int64)
        self._rebuild_members()


# ----------------------------------------------------------------------
# One-round primitives (reference kernels; the engine composes these
# same pieces with scenario middleware in between)
# ----------------------------------------------------------------------
def fedavg_round_flat(
    env: FederatedEnv,
    vector: np.ndarray,
    members: Sequence[int],
    round_index: int,
    prox_mu: float = 0.0,
    phase: str = "training",
) -> tuple[np.ndarray, float, list]:
    """One FedAvg round entirely on the flat plane.

    ``vector`` is the packed broadcast state (one float64 row on the
    environment's layout); every member receives it as its task payload
    — no state dict exists at any point of the round.  Returns
    ``(aggregated_vector, mean_train_loss, updates)`` where the
    aggregated vector is rounded through the parameter dtypes
    (:meth:`repro.nn.state_flat.StateLayout.round_trip`), so carrying it
    into the next round is bit-identical to the dict path's
    unpack → load → repack cycle.  Traffic: every member downloads the
    full model and uploads its full update.
    """
    if len(members) == 0:
        raise ValueError("fedavg_round needs at least one member")
    vector = np.asarray(vector, dtype=np.float64)
    tasks = [
        UpdateTask(int(cid), flat=vector, prox_mu=prox_mu) for cid in members
    ]
    env.tracker.record_download(env.n_params * len(members), phase)
    updates = env.run_updates(tasks, round_index)
    env.tracker.record_upload(env.n_params * len(members), phase)
    # Aggregate on the flat plane: one GEMV over the stacked updates
    # instead of a per-key loop over state dicts.
    new_vector = packed_weighted_average(
        cohort_matrix(env, updates), [u.n_samples for u in updates]
    )
    mean_loss = float(np.mean([u.mean_loss for u in updates]))
    return env.layout.round_trip(new_vector), mean_loss, updates


def fedavg_round(
    env: FederatedEnv,
    state: Mapping[str, np.ndarray],
    members: Sequence[int],
    round_index: int,
    prox_mu: float = 0.0,
    phase: str = "training",
) -> tuple[dict[str, np.ndarray], float, list]:
    """Dict-API view of :func:`fedavg_round_flat`.

    Packs ``state`` once, runs the flat round, and unpacks the result —
    numbers are identical to the historical dict implementation (packing
    is exact and the flat round rounds its output through the parameter
    dtypes).  Kept for external callers; the in-tree algorithms ride the
    engine.
    """
    vector, mean_loss, updates = fedavg_round_flat(
        env,
        env.layout.pack(state),
        members,
        round_index,
        prox_mu=prox_mu,
        phase=phase,
    )
    return dict(unpack_state(vector, env.layout)), mean_loss, updates


def states_for_clients(
    cluster_states: Sequence[Mapping[str, np.ndarray]], labels: np.ndarray
) -> list[Mapping[str, np.ndarray]]:
    """Expand per-cluster states to a per-client list via ``labels``."""
    labels = np.asarray(labels)
    if labels.min() < 0 or labels.max() >= len(cluster_states):
        raise ValueError(
            f"labels reference clusters outside [0, {len(cluster_states)})"
        )
    return [cluster_states[int(g)] for g in labels]


def evaluate_assignment(
    env: FederatedEnv,
    cluster_states: Sequence[Mapping[str, np.ndarray]],
    labels: np.ndarray,
) -> tuple[float, np.ndarray]:
    """Mean local accuracy when each client is served its cluster model.

    Grouped evaluation: each cluster model is loaded once and its
    members' test splits share forward batches (no per-client state
    list is ever expanded).
    """
    return env.evaluate_assignment(cluster_states, labels)


def run_clustered_training(
    env: FederatedEnv,
    labels: np.ndarray,
    cluster_states: list[dict[str, np.ndarray]],
    history: RunHistory,
    n_rounds: int,
    first_round: int,
    eval_every: int = 1,
    client_fraction: float = 1.0,
    scenario: ScenarioConfig | None = None,
    engine: RoundEngine | None = None,
) -> tuple[list[dict[str, np.ndarray]], float, np.ndarray]:
    """Per-cluster FedAvg for rounds ``first_round .. first_round+n_rounds-1``.

    Used by the one-shot methods after their clustering step; a thin
    wrapper that runs :class:`ClusteredRounds` on the round engine.
    Returns the final cluster states and the last evaluation (mean,
    per-client vector).  The dict states in ``cluster_states`` are
    packed once on entry and unpacked once on return — numbers match
    the historical per-round dict cycle exactly.

    ``client_fraction`` is legacy sugar for
    ``ScenarioConfig(client_fraction=...)``; an explicit ``scenario``
    (or a ready ``engine``) takes precedence.  Sampling is engine-level
    — a fraction of all clients per round, not a fraction of each
    cluster — so a small cluster can sit a round out entirely (it then
    keeps its model).
    """
    if engine is None:
        if scenario is None:
            scenario = ScenarioConfig(client_fraction=client_fraction)
        engine = RoundEngine(env, scenario)
    matrix = np.stack([env.layout.pack(state) for state in cluster_states])
    strategy = ClusteredRounds(matrix, np.asarray(labels))
    mean_acc, per_client = engine.run(
        strategy, n_rounds, history, first_round=first_round, eval_every=eval_every
    )
    final_states = [
        dict(unpack_state(row, env.layout)) for row in strategy.matrix
    ]
    return final_states, mean_acc, per_client
