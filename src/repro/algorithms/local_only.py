"""Local-only training — the no-collaboration reference point.

Every client trains its own model on its own data and never
communicates.  Not in the paper's Table I, but the standard sanity
anchor for clustered-FL results: a clustered method is only interesting
where it beats *both* the single global model (FedAvg) and pure
personalisation (this baseline).  Under severe label skew with tiny
local datasets, local-only overfits; clustering wins by pooling
same-distribution clients.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.base import FLAlgorithm, RunResult
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.simulation import FederatedEnv

__all__ = ["LocalOnly"]


class LocalOnly(FLAlgorithm):
    """Per-client isolated training (zero communication)."""

    name = "local_only"

    def run(self, env: FederatedEnv, n_rounds: int, eval_every: int = 1) -> RunResult:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        m = env.federation.n_clients
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        # Every client starts from the shared init (fair comparison) and
        # keeps its own weights forever after.
        client_states = [env.init_state() for _ in range(m)]
        mean_acc, per_client = float("nan"), np.full(m, np.nan)

        for round_index in range(1, n_rounds + 1):
            t0 = time.perf_counter()
            tasks = [
                UpdateTask(cid, client_states[cid]) for cid in range(m)
            ]
            updates = env.run_updates(tasks, round_index)
            losses = []
            for update in updates:
                client_states[update.client_id] = dict(update.state)
                losses.append(update.mean_loss)
            # No tracker calls: nothing crosses the network.

            is_last = round_index == n_rounds
            if is_last or round_index % eval_every == 0:
                # Worst case for grouped eval — every client has its own
                # model, so identity-dedup finds m singleton groups and
                # the compat view degenerates to the per-client loop.
                mean_acc, per_client = env.mean_local_accuracy(client_states)
            history.append(
                RoundRecord(
                    round_index=round_index,
                    mean_train_loss=float(np.mean(losses)),
                    mean_local_accuracy=mean_acc,
                    n_participants=m,
                    n_clusters=m,  # every client is its own island
                    uploaded_params=env.tracker.total_uploaded,
                    downloaded_params=env.tracker.total_downloaded,
                    wall_seconds=time.perf_counter() - t0,
                )
            )

        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=np.arange(m, dtype=np.int64),
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
        )
