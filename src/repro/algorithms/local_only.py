"""Local-only training — the no-collaboration reference point.

Every client trains its own model on its own data and never
communicates.  Not in the paper's Table I, but the standard sanity
anchor for clustered-FL results: a clustered method is only interesting
where it beats *both* the single global model (FedAvg) and pure
personalisation (this baseline).  Under severe label skew with tiny
local datasets, local-only overfits; clustering wins by pooling
same-distribution clients.

Runs through the shared round engine like everything else — scenario
policy (participation, failures, stragglers) composes here too: a
client that fails or misses the deadline simply keeps last round's
weights — but with ``charges_communication = False``, so the engine
skips the per-round traffic accounting (nothing crosses the network).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FLAlgorithm, RunResult, survivor_mean_loss
from repro.fl.client import ClientUpdate
from repro.fl.history import RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import RoundEngine, RoundStrategy, ScenarioConfig
from repro.fl.simulation import FederatedEnv

__all__ = ["LocalOnly"]


class _LocalRounds(RoundStrategy):
    """Each client trains its own persistent state; no aggregation."""

    name = "local_only"
    charges_communication = False

    def __init__(self, env: FederatedEnv) -> None:
        # Every client starts from the shared init (fair comparison) and
        # keeps its own weights forever after.
        self.states = [env.init_state() for _ in range(env.federation.n_clients)]

    def broadcast_for(
        self, engine: RoundEngine, round_index: int, participants: np.ndarray
    ) -> list[UpdateTask]:
        return [UpdateTask(int(cid), self.states[cid]) for cid in participants]

    def aggregate(
        self, engine: RoundEngine, round_index: int, survivors: list[ClientUpdate]
    ) -> float:
        if not survivors:
            return float("nan")
        for update in survivors:
            self.states[update.client_id] = dict(update.state)
        return survivor_mean_loss(survivors)

    def evaluate(
        self, engine: RoundEngine, round_index: int
    ) -> tuple[float, np.ndarray]:
        # Worst case for grouped eval — every client has its own model,
        # so identity-dedup finds m singleton groups and the compat view
        # degenerates to the per-client loop.
        return engine.env.mean_local_accuracy(self.states)

    def current_n_clusters(self) -> int:
        return len(self.states)  # every client is its own island

    def checkpoint_payload(
        self, engine: RoundEngine
    ) -> tuple[dict, dict[str, np.ndarray]]:
        # Per-client states are trained parameter dicts at the model's
        # own dtypes: packing is exact and the wire dtype stores the
        # packed rows exactly.
        layout = engine.env.layout
        wire = layout.wire_dtype
        return {}, {
            "states": np.stack(
                [layout.pack(state) for state in self.states]
            ).astype(wire)
        }

    def restore_payload(self, engine: RoundEngine, meta, arrays) -> None:
        layout = engine.env.layout
        self.states = [
            dict(layout.unpack(row.astype(np.float64)))
            for row in arrays["states"]
        ]


class LocalOnly(FLAlgorithm):
    """Per-client isolated training (zero communication)."""

    name = "local_only"

    def run(
        self,
        env: FederatedEnv,
        n_rounds: int,
        eval_every: int = 1,
        scenario: ScenarioConfig | None = None,
    ) -> RunResult:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        m = env.federation.n_clients
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        strategy = _LocalRounds(env)
        engine = RoundEngine(env, self._scenario(scenario))
        mean_acc, per_client = engine.run(
            strategy, n_rounds, history, eval_every=eval_every
        )
        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=np.arange(m, dtype=np.int64),
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
        )
