"""Local-only training — the no-collaboration reference point.

Every client trains its own model on its own data and never
communicates.  Not in the paper's Table I, but the standard sanity
anchor for clustered-FL results: a clustered method is only interesting
where it beats *both* the single global model (FedAvg) and pure
personalisation (this baseline).  Under severe label skew with tiny
local datasets, local-only overfits; clustering wins by pooling
same-distribution clients.

Runs through the shared round engine like everything else — scenario
policy (participation, failures, stragglers) composes here too: a
client that fails or misses the deadline simply keeps last round's
weights — but with ``charges_communication = False``, so the engine
skips the per-round traffic accounting (nothing crosses the network).

Per-client weights live in the environment's client-state store
(:mod:`repro.fl.store`): the default dense store is bit-identical to
the historical per-client dict list, and ``--store sharded`` keeps
resident memory proportional to the clients actually touched — the
population-scale path, since this is the one algorithm whose state is
O(population) rather than O(clusters).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FLAlgorithm, RunResult, survivor_mean_loss
from repro.fl.client import ClientUpdate
from repro.fl.history import RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import RoundEngine, RoundStrategy, ScenarioConfig
from repro.fl.simulation import FederatedEnv

__all__ = ["LocalOnly"]


class _LocalRounds(RoundStrategy):
    """Each client trains its own persistent state; no aggregation."""

    name = "local_only"
    charges_communication = False

    def __init__(self, env: FederatedEnv) -> None:
        # Every client starts from the shared init (fair comparison) and
        # keeps its own weights forever after, in the environment's
        # client-state store — rows rest at the wire dtype, exactly what
        # the historical per-client dict list held after an unpack.
        self.store = env.make_store()

    def broadcast_for(
        self, engine: RoundEngine, round_index: int, participants: np.ndarray
    ) -> list[UpdateTask]:
        # Only the cohort's rows are ever widened to float64: the long
        # tail of unsampled clients stays at rest in the store.
        return [
            UpdateTask(int(cid), flat=self.store.get(int(cid)))
            for cid in participants
        ]

    def aggregate(
        self, engine: RoundEngine, round_index: int, survivors: list[ClientUpdate]
    ) -> float:
        if not survivors:
            return float("nan")
        layout = engine.env.layout
        for update in survivors:
            row = (
                update.flat
                if update.flat is not None
                else layout.pack(update.state)
            )
            self.store.set(update.client_id, row)
        return survivor_mean_loss(survivors)

    def evaluate(
        self, engine: RoundEngine, round_index: int
    ) -> tuple[float, np.ndarray]:
        # Worst case for grouped eval — every client has its own model,
        # so identity-dedup finds m singleton groups and the compat view
        # degenerates to the per-client loop.  O(population): the
        # population-scale bench overrides this hook.
        return engine.env.mean_local_accuracy(
            [self.store.state_view(cid) for cid in range(self.store.n_clients)]
        )

    def current_n_clusters(self) -> int:
        return self.store.n_clients  # every client is its own island

    def checkpoint_payload(
        self, engine: RoundEngine
    ) -> tuple[dict, dict[str, np.ndarray]]:
        # The store already rests at the wire dtype; the dense kind's
        # array is byte-identical to the pre-store payload
        # (stack of packed rows, cast to wire).
        meta, arrays = self.store.checkpoint_payload()
        return {"store": meta}, arrays

    def restore_payload(self, engine: RoundEngine, meta, arrays) -> None:
        # Cross-kind and legacy-compatible: checkpoints written before
        # the store carried a bare dense matrix and no store meta.
        self.store.restore_from(meta.get("store", {}), arrays)


class LocalOnly(FLAlgorithm):
    """Per-client isolated training (zero communication)."""

    name = "local_only"

    def run(
        self,
        env: FederatedEnv,
        n_rounds: int,
        eval_every: int = 1,
        scenario: ScenarioConfig | None = None,
    ) -> RunResult:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        m = env.federation.n_clients
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        strategy = _LocalRounds(env)
        engine = RoundEngine(env, self._scenario(scenario))
        mean_acc, per_client = engine.run(
            strategy, n_rounds, history, eval_every=eval_every
        )
        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=np.arange(m, dtype=np.int64),
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
            extras={"engine_record": engine.run_record()},
        )
