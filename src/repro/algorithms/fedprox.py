"""FedProx (Li et al., MLSys 2020).

Identical to FedAvg except for the local objective: each client minimises
``F_i(w) + (mu/2)·||w − w_global||²``, pulling local iterates toward the
round's global model and damping client drift under heterogeneity.  The
proximal gradient term is implemented in
:class:`repro.nn.optim.ProximalSGD`; everything else reuses FedAvg.

On the flat transport the anchor ``w_global`` is the packed broadcast
vector itself: executors hand it to
:meth:`repro.nn.optim.ProximalSGD.set_anchor_flat` (via
:func:`repro.fl.client.run_client_update_flat`), so no per-parameter
anchor copies of the incoming dict are materialised.  The anchor values
— and therefore the trajectory — are identical to the dict path.
"""

from __future__ import annotations

from repro.algorithms.fedavg import FedAvg
from repro.utils.validation import check_non_negative

__all__ = ["FedProx"]


class FedProx(FedAvg):
    """FedAvg with a proximal local objective.

    Parameters
    ----------
    mu:
        Proximal coefficient (paper-standard grid is {0.001 .. 1}; 0.1 is
        a common default for severe heterogeneity).
    client_fraction:
        As in FedAvg.
    """

    name = "fedprox"

    def __init__(self, mu: float = 0.1, client_fraction: float = 1.0) -> None:
        super().__init__(client_fraction=client_fraction)
        check_non_negative("mu", mu)
        self.prox_mu = float(mu)
