"""PACFL (Vahidian et al., AAAI 2022) — one-shot clustering by principal
angles between client **data** subspaces.

Like FedClust, PACFL clusters in a single communication round and then
trains per-cluster FedAvg.  The difference is *what* is uploaded: each
client sends the top-``p`` left singular vectors of its local data
matrix (a ``d × p`` orthonormal basis), and the server clusters clients
by the sum of principal angles between those subspaces using
average-linkage hierarchical clustering.

FedClust's pitch against PACFL is not communication volume (both are
one-shot) but that weight-based signatures come *for free* from the
training the clients already do, whereas SVD bases are an extra
data-dependent computation whose dimension ``d × p`` scales with input
size (for 3×32×32 images and p = 3, the basis is 9 216 floats — larger
than LeNet-5's whole final layer).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    FLAlgorithm,
    RunResult,
    evaluate_assignment,
    run_clustered_training,
)
from repro.cluster.hierarchy import auto_cut_gap, cut_by_distance, cut_by_k, linkage
from repro.cluster.subspace import data_subspace, pairwise_subspace_distances
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.rounds import RoundEngine, ScenarioConfig
from repro.fl.simulation import FederatedEnv
from repro.utils.validation import check_in, check_positive

__all__ = ["PACFL"]


class PACFL(FLAlgorithm):
    """One-shot subspace-angle clustering, then per-cluster FedAvg.

    Parameters
    ----------
    n_components:
        ``p``, the per-client subspace rank (paper uses 3–5).
    linkage_method:
        HC linkage over the principal-angle proximity matrix.
    cut:
        ``"auto"`` (largest dendrogram gap), ``"k"`` (fixed count via
        ``n_clusters``) or ``"distance"`` (threshold in summed radians
        via ``cut_threshold``).
    """

    name = "pacfl"

    def __init__(
        self,
        n_components: int = 3,
        linkage_method: str = "average",
        cut: str = "auto",
        n_clusters: int | None = None,
        cut_threshold: float | None = None,
        max_clusters: int | None = None,
    ) -> None:
        check_positive("n_components", n_components)
        check_in("cut", cut, ("auto", "k", "distance"))
        if cut == "k" and n_clusters is None:
            raise ValueError("cut='k' requires n_clusters")
        if cut == "distance" and cut_threshold is None:
            raise ValueError("cut='distance' requires cut_threshold")
        self.n_components = n_components
        self.linkage_method = linkage_method
        self.cut = cut
        self.n_clusters = n_clusters
        self.cut_threshold = cut_threshold
        self.max_clusters = max_clusters

    # ------------------------------------------------------------------
    def cluster_clients(self, env: FederatedEnv) -> tuple[np.ndarray, np.ndarray]:
        """The one-shot clustering step; returns (labels, proximity)."""
        bases = []
        d = int(np.prod(env.federation.input_shape))
        for client in env.federation.clients:
            flat = client.train.images.reshape(len(client.train), d)
            bases.append(data_subspace(flat, self.n_components))
            env.tracker.record_upload(bases[-1].size, phase="clustering")
        proximity = pairwise_subspace_distances(bases)
        z = linkage(proximity, self.linkage_method)
        if self.cut == "k":
            labels = cut_by_k(z, int(self.n_clusters))  # type: ignore[arg-type]
        elif self.cut == "distance":
            labels = cut_by_distance(z, float(self.cut_threshold))  # type: ignore[arg-type]
        else:
            labels = auto_cut_gap(z, max_clusters=self.max_clusters)
        return labels, proximity

    # ------------------------------------------------------------------
    def run(
        self,
        env: FederatedEnv,
        n_rounds: int,
        eval_every: int = 1,
        scenario: ScenarioConfig | None = None,
    ) -> RunResult:
        if n_rounds < 2:
            raise ValueError("PACFL needs >= 2 rounds (1 clustering + training)")
        m = env.federation.n_clients
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        engine = RoundEngine(env, self._scenario(scenario))

        # Round 1: the one-shot clustering round (basis upload only).
        # PACFL's signatures are data subspaces the server computes from
        # the one-off basis upload, so clustering covers every client up
        # front; scenario policy shapes the training rounds that follow.
        labels, proximity = self.cluster_clients(env)
        n_clusters = int(labels.max()) + 1
        init = env.init_state()
        cluster_states = [
            {k: v.copy() for k, v in init.items()} for _ in range(n_clusters)
        ]
        mean_acc, _ = evaluate_assignment(env, cluster_states, labels)
        history.append(
            RoundRecord(
                round_index=1,
                mean_train_loss=float("nan"),
                mean_local_accuracy=mean_acc,
                n_participants=m,
                n_clusters=n_clusters,
                uploaded_params=env.tracker.total_uploaded,
                downloaded_params=env.tracker.total_downloaded,
            )
        )

        cluster_states, mean_acc, per_client = run_clustered_training(
            env,
            labels,
            cluster_states,
            history,
            n_rounds=n_rounds - 1,
            first_round=2,
            eval_every=eval_every,
            engine=engine,
        )
        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=labels,
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
            extras={
                "proximity": proximity,
                "n_clusters": n_clusters,
                "engine_record": engine.run_record(),
            },
        )
