"""IFCA — the Iterative Federated Clustering Algorithm (Ghosh et al.,
NeurIPS 2020).

The server maintains ``k`` cluster models (``k`` **predefined** — the
paper's first criticism of existing CFL).  Every round it broadcasts all
``k`` models to every participant; each participant evaluates its local
training loss under each and adopts the argmin, trains that model
locally, and the server aggregates per cluster.  The ``k×`` download is
IFCA's characteristic communication overhead (the C1 experiment).

Under partial participation only the round's participants re-probe
their assignment; everyone else keeps the label from the last round
they participated in (evaluation always serves each client its current
label's model).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    FLAlgorithm,
    RunResult,
    survivor_mean_loss,
    survivor_weighted_average,
)
from repro.fl.client import ClientUpdate
from repro.fl.eval_flat import fused_evaluate
from repro.fl.history import RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import RoundEngine, RoundStrategy, ScenarioConfig
from repro.fl.simulation import FederatedEnv
from repro.nn.models import build_model
from repro.utils.rng import rng_for
from repro.utils.validation import check_positive

__all__ = ["IFCA"]

_IFCA_INIT_TAG = 7


class _IFCARounds(RoundStrategy):
    """k packed cluster rows + per-client loss-argmin assignment."""

    name = "ifca"

    def __init__(self, algo: "IFCA", env: FederatedEnv, states: list[np.ndarray]) -> None:
        self.algo = algo
        self.states = states
        self.labels = np.zeros(env.federation.n_clients, dtype=np.int64)

    def broadcast_for(
        self, engine: RoundEngine, round_index: int, participants: np.ndarray
    ) -> list[UpdateTask]:
        env = engine.env
        if participants.size == 0:
            # A trace can schedule a fully-dark round: nothing to probe,
            # nothing to broadcast, every label and model stays put.
            return []
        # Broadcast all k models to every participant (the k× download;
        # the engine charges the 1× baseline in dispatch, the k−1 extra
        # probe copies are recorded here).  Task payloads are the packed
        # rows themselves — each cluster's row object is shared by its
        # members, so executors encode it once at the layout's wire dtype.
        extra = (self.algo.n_clusters - 1) * env.n_params * len(participants)
        if extra:
            env.tracker.record_download(extra, engine.phase)
        self.labels[participants] = self.algo._assign(env, self.states, participants)
        return [
            UpdateTask(int(cid), flat=self.states[self.labels[cid]])
            for cid in participants
        ]

    def aggregate(
        self, engine: RoundEngine, round_index: int, survivors: list[ClientUpdate]
    ) -> float:
        if not survivors:
            return float("nan")
        env = engine.env
        losses = []
        for j in range(self.algo.n_clusters):
            mine = [u for u in survivors if self.labels[u.client_id] == j]
            if not mine:
                continue  # empty cluster keeps its previous model
            # Per-cluster FedAvg on the flat plane: row-gather + GEMV;
            # weights are staleness/budget-aware (see
            # survivor_weighted_average).
            vector = survivor_weighted_average(env, mine, **engine.robust_kwargs)
            if vector is not None:
                self.states[j] = env.layout.round_trip(vector)
            losses.extend(u.mean_loss for u in mine if u.n_batches > 0)
        return float(np.mean(losses)) if losses else float("nan")

    def evaluate(
        self, engine: RoundEngine, round_index: int
    ) -> tuple[float, np.ndarray]:
        return engine.env.evaluate_packed(np.stack(self.states), self.labels)

    def current_n_clusters(self) -> int:
        return len(np.unique(self.labels))

    def checkpoint_payload(
        self, engine: RoundEngine
    ) -> tuple[dict, dict[str, np.ndarray]]:
        # Rows are round_trip results (or packed fresh initialisations):
        # exact at the wire dtype.
        wire = engine.env.layout.wire_dtype
        return {}, {
            "states": np.stack(self.states).astype(wire),
            "labels": self.labels.astype(np.int64),
        }

    def restore_payload(self, engine: RoundEngine, meta, arrays) -> None:
        self.states = [
            row.astype(np.float64) for row in arrays["states"]
        ]
        self.labels = arrays["labels"].astype(np.int64)


class IFCA(FLAlgorithm):
    """Loss-based iterative clustered FL with a fixed cluster count.

    Parameters
    ----------
    n_clusters:
        The predefined ``k``.  IFCA's accuracy is sensitive to this
        matching the true group count — exactly the flexibility problem
        FedClust removes.
    assignment_batches:
        Batches of local train data used for the per-model loss probe
        (caps the cost of the k-way evaluation on large clients).
    """

    name = "ifca"

    def __init__(self, n_clusters: int = 2, assignment_batches: int = 4) -> None:
        check_positive("n_clusters", n_clusters)
        check_positive("assignment_batches", assignment_batches)
        self.n_clusters = n_clusters
        self.assignment_batches = assignment_batches

    # ------------------------------------------------------------------
    def _initial_states(self, env: FederatedEnv) -> list[np.ndarray]:
        """k independently-initialised cluster models as packed rows.

        IFCA's cluster models live on the flat plane for the whole run:
        the k× broadcast ships the rows (the layout's wire encoding over
        transport), assignment probing loads them via ``load_flat``, and
        aggregation writes rows back — the state-dict hop is gone.
        """
        states = []
        for j in range(self.n_clusters):
            model = build_model(
                env.model_name,
                env.federation.input_shape,
                env.federation.n_classes,
                rng_for(env.seed, _IFCA_INIT_TAG, j),
                **env.model_kwargs,
            )
            states.append(env.layout.pack(model.state_dict(copy=False)))
        return states

    def _assign(
        self,
        env: FederatedEnv,
        states: list[np.ndarray],
        clients: np.ndarray,
    ) -> np.ndarray:
        """Each probed client picks the cluster model with lowest local loss.

        Fused on the flat plane's eval path: each of the ``k`` candidate
        rows is loaded once (no dict materialised) and probed against
        the probed clients' capped train splits in shared batches (k
        fused sweeps instead of ``k × m`` per-client loops), with
        per-client losses recovered by segment reduction.
        """
        losses = np.zeros((len(clients), self.n_clusters))
        cap = self.assignment_batches * env.train_cfg.batch_size
        probes = []
        for cid in clients:
            train = env.federation.clients[int(cid)].train
            probes.append(train if len(train) <= cap else train.subset(np.arange(cap)))
        for j, vector in enumerate(states):
            env.scratch_model.load_flat(vector, env.layout)
            losses[:, j] = fused_evaluate(
                env.scratch_model, probes, batch_size=env.train_cfg.eval_batch_size
            ).loss
        return losses.argmin(axis=1)

    # ------------------------------------------------------------------
    def run(
        self,
        env: FederatedEnv,
        n_rounds: int,
        eval_every: int = 1,
        scenario: ScenarioConfig | None = None,
    ) -> RunResult:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        strategy = _IFCARounds(self, env, self._initial_states(env))
        engine = RoundEngine(env, self._scenario(scenario))
        mean_acc, per_client = engine.run(
            strategy, n_rounds, history, eval_every=eval_every
        )
        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=strategy.labels,
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
            extras={
                "k": self.n_clusters,
                "engine_record": engine.run_record(),
            },
        )
