"""Synthetic stand-ins for CIFAR-10, Fashion-MNIST and SVHN.

The execution environment has no network access, so the paper's public
datasets cannot be downloaded.  The substitution (documented in DESIGN.md)
is a family of **class-conditional generators**: each class ``c`` owns a
smooth random "template" image, and samples are drawn as

    sample = template[c] (+ small random shift) + smooth per-sample
             deformation + white noise,

all standardised to zero mean / unit variance at the dataset level.  This
preserves exactly the properties the paper's experiments rely on:

* every class is *learnable* by a small CNN (templates are separable),
* **label skew across clients induces weight divergence** — the phenomenon
  FedClust's Fig. 1 observes and its clustering exploits, and
* per-dataset difficulty can be calibrated (template-to-noise ratio), so
  the relative task ordering of the paper (FMNIST easiest, CIFAR-10
  hardest) is preserved.

Shapes match the real datasets: CIFAR-10-like and SVHN-like are
``3×32×32``; FMNIST-like is ``1×28×28``; all have 10 classes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import make_rng

__all__ = [
    "DatasetSpec",
    "SPECS",
    "available_datasets",
    "get_spec",
    "class_templates",
    "generate_dataset",
    "make_dataset",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Generator parameters for one synthetic dataset family.

    Attributes
    ----------
    name:
        Registry key (also the default ``ArrayDataset.name``).
    shape:
        Per-sample ``(C, H, W)``.
    n_classes:
        Label cardinality.
    template_grid:
        Coarse grid extent ``g``; templates are ``g×g`` fields upsampled to
        ``H×W``, giving smooth low-frequency class signatures.
    template_scale:
        Amplitude of the class template — the "signal".
    deform_scale:
        Amplitude of the smooth per-sample deformation (intra-class
        variability that is *not* noise).
    noise_std:
        White-noise amplitude — the main difficulty knob.
    shift_max:
        Samples are randomly rolled by up to this many pixels in each
        spatial direction (cheap translation variability).
    n_archetypes:
        If positive, classes share ``n_archetypes`` "superclass" fields
        (class ``c`` belongs to archetype ``c % n_archetypes``) mixed in
        with weight ``archetype_weight``.  This mimics the confusable
        superclass structure of natural datasets (cat/dog, car/truck in
        CIFAR-10): the global 10-way task must separate near-identical
        siblings and is *hard*, while a typical client's restricted label
        subset rarely contains both siblings and is *easy*.  That
        contrast — global-hard, local-easy — is what makes clustered FL
        outperform a single global model under label skew, so preserving
        it is essential for reproducing Table I's shape.
    archetype_weight:
        Mixing weight of the shared archetype field in [0, 1).
    template_seed:
        Fixed seed for the class templates so that every generated split
        of a family shares the same class signatures (train/test and all
        clients see the same concept of "class 3").
    """

    name: str
    shape: tuple[int, int, int]
    n_classes: int = 10
    template_grid: int = 4
    template_scale: float = 1.0
    deform_scale: float = 0.35
    noise_std: float = 0.6
    shift_max: int = 1
    n_archetypes: int = 0
    archetype_weight: float = 0.75
    template_seed: int = 20240327

    def __post_init__(self) -> None:
        c, h, w = self.shape
        if min(c, h, w) <= 0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if h % self.template_grid or w % self.template_grid:
            raise ValueError(
                f"template_grid {self.template_grid} must divide H={h} and W={w}"
            )
        if self.n_classes <= 0:
            raise ValueError("n_classes must be positive")
        if self.n_archetypes < 0:
            raise ValueError("n_archetypes must be >= 0")
        if not 0.0 <= self.archetype_weight < 1.0:
            raise ValueError(
                f"archetype_weight must be in [0, 1), got {self.archetype_weight}"
            )


#: Difficulty calibration (measured with centralized LeNet-5 training):
#: the global 10-way accuracy ceiling decreases from FMNIST-like (~0.93)
#: through SVHN-like (~0.78) to CIFAR-10-like (~0.59), matching the paper's
#: Table-I ordering, while restricted local label subsets remain easy
#: (archetype siblings are the hard pairs — see ``n_archetypes``).
SPECS: dict[str, DatasetSpec] = {
    "fmnist_like": DatasetSpec(
        name="fmnist_like",
        shape=(1, 28, 28),
        template_grid=4,
        template_scale=1.3,
        deform_scale=0.25,
        noise_std=0.5,
        n_archetypes=5,
        archetype_weight=0.85,
    ),
    "svhn_like": DatasetSpec(
        name="svhn_like",
        shape=(3, 32, 32),
        template_grid=4,
        template_scale=1.0,
        deform_scale=0.35,
        noise_std=0.7,
        n_archetypes=5,
        archetype_weight=0.8,
    ),
    "cifar10_like": DatasetSpec(
        name="cifar10_like",
        shape=(3, 32, 32),
        template_grid=4,
        template_scale=0.9,
        deform_scale=0.45,
        noise_std=0.8,
        n_archetypes=5,
        archetype_weight=0.9,
    ),
}

_ALIASES = {
    "cifar10": "cifar10_like",
    "cifar-10": "cifar10_like",
    "fmnist": "fmnist_like",
    "fashion-mnist": "fmnist_like",
    "svhn": "svhn_like",
}


def available_datasets() -> list[str]:
    """Canonical dataset names accepted by :func:`make_dataset`."""
    return sorted(SPECS)


def get_spec(name: str) -> DatasetSpec:
    """Resolve ``name`` (or a real-dataset alias) to its spec."""
    key = _ALIASES.get(name.lower(), name.lower())
    if key not in SPECS:
        raise ValueError(
            f"unknown dataset {name!r}; options: {available_datasets()} "
            f"(aliases: {sorted(_ALIASES)})"
        )
    return SPECS[key]


def _upsample(coarse: np.ndarray, factor_h: int, factor_w: int) -> np.ndarray:
    """Nearest-neighbour upsample of the last two axes (vectorised)."""
    out = np.repeat(coarse, factor_h, axis=-2)
    return np.repeat(out, factor_w, axis=-1)


def class_templates(spec: DatasetSpec) -> np.ndarray:
    """The fixed class signature images, shape ``(n_classes, C, H, W)``.

    Deterministic in ``spec.template_seed`` — independent of the sampling
    seed, so all splits of a family share class identities.
    """
    rng = make_rng(spec.template_seed)
    c, h, w = spec.shape
    g = spec.template_grid
    coarse = rng.standard_normal((spec.n_classes, c, g, g))
    if spec.n_archetypes > 0:
        # Blend each class with its superclass field: siblings (classes
        # with equal c % n_archetypes) become deliberately confusable.
        arch = rng.standard_normal((spec.n_archetypes, c, g, g))
        mix = spec.archetype_weight
        arch_of_class = np.arange(spec.n_classes) % spec.n_archetypes
        coarse = (1.0 - mix) * coarse + mix * arch[arch_of_class]
    templates = _upsample(coarse, h // g, w // g)
    # Per-template standardisation keeps class signal amplitudes comparable.
    flat = templates.reshape(spec.n_classes, -1)
    flat = (flat - flat.mean(axis=1, keepdims=True)) / (
        flat.std(axis=1, keepdims=True) + 1e-12
    )
    return (flat.reshape(templates.shape) * spec.template_scale).astype(np.float32)


def _random_shifts(
    images: np.ndarray, shift_max: int, rng: np.random.Generator
) -> np.ndarray:
    """Roll each image by a random (dy, dx) within ``±shift_max``.

    Vectorised by grouping samples that share the same shift — the number
    of distinct shifts is ``(2*shift_max+1)**2``, tiny next to N.
    """
    if shift_max == 0:
        return images
    n = images.shape[0]
    dy = rng.integers(-shift_max, shift_max + 1, size=n)
    dx = rng.integers(-shift_max, shift_max + 1, size=n)
    out = images
    for sy in range(-shift_max, shift_max + 1):
        for sx in range(-shift_max, shift_max + 1):
            if sy == 0 and sx == 0:
                continue
            mask = (dy == sy) & (dx == sx)
            if mask.any():
                out[mask] = np.roll(out[mask], shift=(sy, sx), axis=(2, 3))
    return out


def generate_dataset(
    spec: DatasetSpec,
    n_samples: int,
    seed: int | np.random.Generator,
    labels: np.ndarray | None = None,
) -> ArrayDataset:
    """Sample ``n_samples`` images from ``spec``.

    ``labels`` may pin the label sequence (used by tests); by default the
    labels are drawn uniformly, approximating the balanced classes of the
    real datasets.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    rng = make_rng(seed)
    templates = class_templates(spec)
    if labels is None:
        labels = rng.integers(0, spec.n_classes, size=n_samples)
    else:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (n_samples,):
            raise ValueError(
                f"labels must have shape ({n_samples},), got {labels.shape}"
            )
        if labels.min() < 0 or labels.max() >= spec.n_classes:
            raise ValueError("labels out of range for spec")

    c, h, w = spec.shape
    g = spec.template_grid
    images = templates[labels].copy()  # (N, C, H, W) class signal
    # Smooth intra-class deformation: per-sample coarse field, upsampled.
    coarse = rng.standard_normal((n_samples, c, g, g)).astype(np.float32)
    images += spec.deform_scale * _upsample(coarse, h // g, w // g)
    images = _random_shifts(images, spec.shift_max, rng)
    images += (
        rng.standard_normal(images.shape).astype(np.float32) * spec.noise_std
    )
    # Dataset-level standardisation (the usual normalising transform).
    images -= images.mean()
    images /= images.std() + 1e-12
    return ArrayDataset(images, labels, spec.n_classes, spec.name)


def make_dataset(
    name: str,
    n_samples: int,
    seed: int | np.random.Generator,
    **overrides: float,
) -> ArrayDataset:
    """Generate a dataset by registry name (aliases accepted).

    Keyword overrides patch spec fields, e.g. ``noise_std=0.2`` for an
    easier variant in tests.
    """
    spec = get_spec(name)
    if overrides:
        spec = replace(spec, **overrides)  # type: ignore[arg-type]
    return generate_dataset(spec, n_samples, seed)
