"""In-memory dataset container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ArrayDataset"]


@dataclass
class ArrayDataset:
    """Images + integer labels held as dense arrays.

    Attributes
    ----------
    images:
        ``(N, C, H, W)`` float32 array, already normalised by the generator.
    labels:
        ``(N,)`` int64 array with values in ``[0, n_classes)``.
    n_classes:
        Number of label categories (fixed at 10 for the paper's datasets).
    name:
        Provenance tag (e.g. ``"cifar10_like"``), carried through subsets.
    """

    images: np.ndarray
    labels: np.ndarray
    n_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.ascontiguousarray(self.images, dtype=np.float32)
        self.labels = np.ascontiguousarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got {self.images.shape}")
        if self.labels.shape != (self.images.shape[0],):
            raise ValueError(
                f"labels shape {self.labels.shape} mismatches "
                f"{self.images.shape[0]} images"
            )
        if self.n_classes <= 0:
            raise ValueError(f"n_classes must be positive, got {self.n_classes}")
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.n_classes
        ):
            raise ValueError(
                f"labels must lie in [0, {self.n_classes}), got "
                f"[{self.labels.min()}, {self.labels.max()}]"
            )

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """Per-sample ``(C, H, W)``."""
        return self.images.shape[1:]  # type: ignore[return-value]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """New dataset holding rows ``indices`` (copies, no aliasing)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(
            self.images[indices].copy(),
            self.labels[indices].copy(),
            self.n_classes,
            self.name,
        )

    def split(
        self, test_fraction: float, rng: np.random.Generator
    ) -> tuple["ArrayDataset", "ArrayDataset"]:
        """Random (train, test) split; test gets ``ceil(N * fraction)`` rows.

        Guarantees at least one row on each side when the dataset has ≥2
        rows, so client-local evaluation is always possible.
        """
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
        n = len(self)
        if n < 2:
            raise ValueError("need at least 2 samples to split")
        n_test = int(np.ceil(n * test_fraction))
        n_test = min(max(n_test, 1), n - 1)
        order = rng.permutation(n)
        return self.subset(order[n_test:]), self.subset(order[:n_test])

    def class_counts(self) -> np.ndarray:
        """Histogram of labels, length ``n_classes``."""
        return np.bincount(self.labels, minlength=self.n_classes)

    def label_distribution(self) -> np.ndarray:
        """Normalised class histogram (sums to 1; zeros if empty)."""
        counts = self.class_counts().astype(np.float64)
        total = counts.sum()
        return counts / total if total else counts
