"""Data substrate: synthetic datasets, partitioners, federation assembly."""

from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset
from repro.data.federation import ClientData, Federation, build_federation
from repro.data.partition import (
    check_partition,
    dirichlet_partition,
    iid_partition,
    label_cluster_partition,
    partition_report,
    shard_partition,
)
from repro.data.synthetic import (
    SPECS,
    DatasetSpec,
    available_datasets,
    class_templates,
    generate_dataset,
    get_spec,
    make_dataset,
)

__all__ = [
    "DataLoader",
    "ArrayDataset",
    "ClientData",
    "Federation",
    "build_federation",
    "check_partition",
    "dirichlet_partition",
    "iid_partition",
    "label_cluster_partition",
    "partition_report",
    "shard_partition",
    "SPECS",
    "DatasetSpec",
    "available_datasets",
    "class_templates",
    "generate_dataset",
    "get_spec",
    "make_dataset",
]
