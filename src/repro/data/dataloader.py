"""Minibatch iteration."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import make_rng

__all__ = ["DataLoader"]


class DataLoader:
    """Seeded minibatch iterator over an :class:`ArrayDataset`.

    Each full iteration ("epoch") draws a fresh permutation from the
    loader's generator, so epochs differ but runs are reproducible.

    Parameters
    ----------
    dataset:
        Source data.
    batch_size:
        Maximum rows per batch (the final batch may be smaller unless
        ``drop_last``).
    rng:
        Seed or generator for shuffling.
    shuffle:
        Randomise order every epoch (default ``True``); evaluation uses
        ``False`` for determinism.
    drop_last:
        Drop a trailing partial batch (default ``False``).
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        rng: int | np.random.Generator | None = None,
        shuffle: bool = True,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if len(dataset) == 0:
            raise ValueError("cannot iterate an empty dataset")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = make_rng(rng)

    def __len__(self) -> int:
        """Batches per epoch."""
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield self.dataset.images[batch], self.dataset.labels[batch]
