"""Federated partitioners: split a dataset's indices across clients.

All partitioners return ``list[np.ndarray]`` of **disjoint** index arrays
(one per client).  The Dirichlet partitioner implements the Non-IID
``Dir(alpha)`` protocol of Li et al., ICDE 2022 — the heterogeneity
setting used by the paper's Table I with ``alpha = 0.1``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import check_positive

__all__ = [
    "dirichlet_partition",
    "shard_partition",
    "label_cluster_partition",
    "iid_partition",
    "partition_report",
    "check_partition",
]


def check_partition(
    parts: list[np.ndarray], n_total: int, require_cover: bool = False
) -> None:
    """Validate disjointness (and optionally coverage) of a partition."""
    seen: set[int] = set()
    for i, part in enumerate(parts):
        ids = set(int(j) for j in part)
        if len(ids) != len(part):
            raise ValueError(f"client {i} has duplicate indices")
        overlap = seen & ids
        if overlap:
            raise ValueError(f"client {i} overlaps earlier clients: {sorted(overlap)[:5]}")
        if ids and (min(ids) < 0 or max(ids) >= n_total):
            raise ValueError(f"client {i} has out-of-range indices")
        seen |= ids
    if require_cover and len(seen) != n_total:
        raise ValueError(f"partition covers {len(seen)} of {n_total} samples")


def iid_partition(
    labels: np.ndarray, n_clients: int, seed: int | np.random.Generator
) -> list[np.ndarray]:
    """Uniformly shuffle and deal indices round-robin (the IID control)."""
    check_positive("n_clients", n_clients)
    rng = make_rng(seed)
    order = rng.permutation(len(labels))
    return [np.sort(order[i::n_clients]) for i in range(n_clients)]


def dirichlet_partition(
    labels: np.ndarray,
    n_clients: int,
    alpha: float,
    seed: int | np.random.Generator,
    min_samples: int = 2,
    max_retries: int = 100,
) -> list[np.ndarray]:
    """Label-skew partition via per-class Dirichlet proportions.

    For each class ``k``, draw ``p ~ Dir(alpha * 1_m)`` over the ``m``
    clients and split the class's indices proportionally.  Small ``alpha``
    (the paper uses 0.1) concentrates each class on few clients — extreme
    label skew; large ``alpha`` approaches IID.

    Resamples (up to ``max_retries``) until every client has at least
    ``min_samples`` samples, the standard fix-up in FL benchmarks so every
    client can hold a train/test split.
    """
    check_positive("n_clients", n_clients)
    check_positive("alpha", alpha)
    labels = np.asarray(labels)
    n = len(labels)
    if n < n_clients * min_samples:
        raise ValueError(
            f"{n} samples cannot give {n_clients} clients >= {min_samples} each"
        )
    rng = make_rng(seed)
    classes = np.unique(labels)

    for _ in range(max_retries):
        buckets: list[list[np.ndarray]] = [[] for _ in range(n_clients)]
        for k in classes:
            idx_k = np.flatnonzero(labels == k)
            rng.shuffle(idx_k)
            proportions = rng.dirichlet(np.full(n_clients, alpha))
            # Cumulative proportional cut points over this class's samples.
            cuts = (np.cumsum(proportions)[:-1] * len(idx_k)).astype(int)
            for client, chunk in enumerate(np.split(idx_k, cuts)):
                if len(chunk):
                    buckets[client].append(chunk)
        parts = [
            np.sort(np.concatenate(b)) if b else np.empty(0, dtype=np.int64)
            for b in buckets
        ]
        if min(len(p) for p in parts) >= min_samples:
            return parts
    raise RuntimeError(
        f"dirichlet_partition failed to give every client >= {min_samples} "
        f"samples after {max_retries} retries (alpha={alpha}, m={n_clients})"
    )


def shard_partition(
    labels: np.ndarray,
    n_clients: int,
    shards_per_client: int,
    seed: int | np.random.Generator,
) -> list[np.ndarray]:
    """McMahan et al.'s shard protocol: sort by label, deal shards.

    Sorting by label then dealing each client ``shards_per_client``
    contiguous shards gives each client at most that many classes — the
    original FedAvg pathological non-IID setting.
    """
    check_positive("n_clients", n_clients)
    check_positive("shards_per_client", shards_per_client)
    labels = np.asarray(labels)
    n = len(labels)
    n_shards = n_clients * shards_per_client
    if n < n_shards:
        raise ValueError(f"{n} samples cannot fill {n_shards} shards")
    rng = make_rng(seed)
    # Stable sort keeps within-class order random (we shuffle first).
    order = rng.permutation(n)
    order = order[np.argsort(labels[order], kind="stable")]
    shards = np.array_split(order, n_shards)
    shard_ids = rng.permutation(n_shards)
    parts = []
    for client in range(n_clients):
        mine = shard_ids[
            client * shards_per_client : (client + 1) * shards_per_client
        ]
        parts.append(np.sort(np.concatenate([shards[s] for s in mine])))
    return parts


def label_cluster_partition(
    labels: np.ndarray,
    n_clients: int,
    groups: list[list[int]],
    seed: int | np.random.Generator,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Planted-cluster partition: clients see only their group's labels.

    This is the paper's motivation setup (Fig. 1): e.g. two groups,
    ``G1 = {0..4}`` and ``G2 = {5..9}``, clients assigned round-robin.
    Returns ``(parts, group_of_client)`` — the second array is the ground
    truth that clustering metrics (ARI/NMI) are scored against.
    """
    check_positive("n_clients", n_clients)
    if not groups:
        raise ValueError("groups must be non-empty")
    flat = [label for group in groups for label in group]
    if len(set(flat)) != len(flat):
        raise ValueError("groups must have disjoint labels")
    if n_clients < len(groups):
        raise ValueError(f"need >= {len(groups)} clients for {len(groups)} groups")
    labels = np.asarray(labels)
    rng = make_rng(seed)
    group_of_client = np.array([i % len(groups) for i in range(n_clients)])

    parts: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n_clients
    for g, group_labels in enumerate(groups):
        members = np.flatnonzero(group_of_client == g)
        idx = np.flatnonzero(np.isin(labels, group_labels))
        rng.shuffle(idx)
        for j, client in enumerate(members):
            parts[client] = np.sort(idx[j :: len(members)])
    return parts, group_of_client


def partition_report(
    labels: np.ndarray, parts: list[np.ndarray], n_classes: int
) -> np.ndarray:
    """Per-client class histogram, shape ``(n_clients, n_classes)``.

    Row ``i`` is client ``i``'s label count vector — the quantity whose
    similarity across clients FedClust recovers from weight space.
    """
    labels = np.asarray(labels)
    out = np.zeros((len(parts), n_classes), dtype=np.int64)
    for i, part in enumerate(parts):
        if len(part):
            out[i] = np.bincount(labels[part], minlength=n_classes)
    return out
