"""Federation assembly: dataset + partitioner → per-client splits.

A :class:`Federation` is the complete data-side input to a federated
simulation: each client's local train/test datasets, the shared task
metadata, and (when the partition plants one) the ground-truth group of
every client for scoring cluster recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.partition import (
    check_partition,
    dirichlet_partition,
    iid_partition,
    label_cluster_partition,
    partition_report,
    shard_partition,
)
from repro.data.synthetic import make_dataset
from repro.utils.rng import spawn_rngs

__all__ = ["ClientData", "Federation", "build_federation"]


@dataclass
class ClientData:
    """One client's local data."""

    client_id: int
    train: ArrayDataset
    test: ArrayDataset

    @property
    def n_train(self) -> int:
        return len(self.train)

    @property
    def n_test(self) -> int:
        return len(self.test)


@dataclass
class Federation:
    """All clients plus shared task metadata."""

    clients: list[ClientData]
    n_classes: int
    input_shape: tuple[int, int, int]
    dataset_name: str
    true_groups: np.ndarray | None = None
    label_histograms: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))

    @property
    def n_clients(self) -> int:
        return len(self.clients)

    def client_sizes(self) -> np.ndarray:
        """Train-set size per client (the FedAvg aggregation weights)."""
        return np.array([c.n_train for c in self.clients], dtype=np.int64)

    def subset(self, client_ids: np.ndarray | list[int]) -> "Federation":
        """Federation restricted to ``client_ids`` (re-indexed 0..k-1).

        Used by the newcomer experiment: hold one client out of the
        initial federation and onboard it later via FedClust's step ⑥.
        """
        ids = [int(i) for i in client_ids]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate client ids: {ids}")
        bad = [i for i in ids if not 0 <= i < self.n_clients]
        if bad:
            raise ValueError(f"client ids out of range: {bad}")
        clients = [
            ClientData(new_id, self.clients[old_id].train, self.clients[old_id].test)
            for new_id, old_id in enumerate(ids)
        ]
        return Federation(
            clients=clients,
            n_classes=self.n_classes,
            input_shape=self.input_shape,
            dataset_name=self.dataset_name,
            true_groups=(
                self.true_groups[ids] if self.true_groups is not None else None
            ),
            label_histograms=(
                self.label_histograms[ids]
                if self.label_histograms.size
                else self.label_histograms
            ),
        )

    def summary(self) -> str:
        sizes = self.client_sizes()
        parts = [
            f"Federation({self.dataset_name}: {self.n_clients} clients, "
            f"{int(sizes.sum())} train samples, "
            f"sizes [{sizes.min()}..{sizes.max()}]"
        ]
        if self.true_groups is not None:
            n_groups = len(np.unique(self.true_groups))
            parts.append(f", {n_groups} planted groups")
        return "".join(parts) + ")"


def build_federation(
    dataset_name: str,
    n_clients: int,
    n_samples: int,
    seed: int,
    partition: str = "dirichlet",
    alpha: float = 0.1,
    shards_per_client: int = 2,
    groups: list[list[int]] | None = None,
    test_fraction: float = 0.2,
    dataset_overrides: dict[str, float] | None = None,
) -> Federation:
    """Generate a dataset and split it into a federation.

    Parameters
    ----------
    dataset_name:
        Registry name/alias (``"cifar10"``, ``"fmnist"``, ``"svhn"``, ...).
    n_clients:
        Number of participating clients.
    n_samples:
        Total pool size before partitioning.
    seed:
        Master seed; data generation, partitioning and per-client splits
        all derive independent streams from it.
    partition:
        ``"dirichlet"`` (paper's Table I, with ``alpha``), ``"shard"``,
        ``"label_cluster"`` (paper's Fig. 1, with ``groups``), or ``"iid"``.
    alpha:
        Dirichlet concentration (0.1 in the paper).
    groups:
        Label groups for ``label_cluster`` (default: two halves of the
        label set, the paper's G1/G2).
    test_fraction:
        Per-client local test split (local-accuracy protocol, DESIGN.md §5).
    dataset_overrides:
        Optional spec overrides forwarded to the generator.
    """
    rng_data, rng_part, *rng_clients = spawn_rngs(seed, 2 + n_clients)
    dataset = make_dataset(
        dataset_name, n_samples, rng_data, **(dataset_overrides or {})
    )

    true_groups: np.ndarray | None = None
    if partition == "dirichlet":
        parts = dirichlet_partition(dataset.labels, n_clients, alpha, rng_part)
    elif partition == "shard":
        parts = shard_partition(dataset.labels, n_clients, shards_per_client, rng_part)
    elif partition == "label_cluster":
        if groups is None:
            half = dataset.n_classes // 2
            groups = [list(range(half)), list(range(half, dataset.n_classes))]
        parts, true_groups = label_cluster_partition(
            dataset.labels, n_clients, groups, rng_part
        )
    elif partition == "iid":
        parts = iid_partition(dataset.labels, n_clients, rng_part)
    else:
        raise ValueError(
            f"unknown partition {partition!r}; options: dirichlet, shard, "
            "label_cluster, iid"
        )
    check_partition(parts, len(dataset))

    clients = []
    for cid, (part, rng_c) in enumerate(zip(parts, rng_clients)):
        local = dataset.subset(part)
        train, test = local.split(test_fraction, rng_c)
        clients.append(ClientData(cid, train, test))

    return Federation(
        clients=clients,
        n_classes=dataset.n_classes,
        input_shape=dataset.input_shape,
        dataset_name=dataset.name,
        true_groups=true_groups,
        label_histograms=partition_report(dataset.labels, parts, dataset.n_classes),
    )
