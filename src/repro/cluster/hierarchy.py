"""Agglomerative hierarchical clustering — built from scratch.

The paper's step ⑤ runs agglomerative HC on the proximity matrix; this
module implements it (rather than calling scipy) per the reproduction
mandate, producing **scipy-compatible linkage matrices** so the test
suite can cross-validate every linkage method against
``scipy.cluster.hierarchy.linkage``.

Supported linkages (Lance–Williams updates): ``single``, ``complete``,
``average``, ``ward``.  Cut strategies: fixed cluster count, distance
threshold, and the **largest-gap heuristic** — the piece that lets
FedClust avoid a predefined number of clusters.

Complexity is the textbook O(n³)/O(n²) masked-argmin formulation; the
"n" here is *clients*, which in FL experiments is tens to a few
thousand, far below where nearest-neighbour-chain implementations pay
off.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import validate_distance_matrix

__all__ = [
    "LINKAGE_METHODS",
    "linkage",
    "cut_by_k",
    "cut_by_distance",
    "auto_cut_gap",
    "merge_heights",
    "cophenetic_matrix",
    "canonical_labels",
]

LINKAGE_METHODS = ("single", "complete", "average", "ward")


def _lance_williams(
    method: str,
    d_ai: np.ndarray,
    d_bi: np.ndarray,
    d_ab: float,
    size_a: int,
    size_b: int,
    sizes_i: np.ndarray,
) -> np.ndarray:
    """Distance of the merged cluster (a∪b) to every other cluster i."""
    if method == "single":
        return np.minimum(d_ai, d_bi)
    if method == "complete":
        return np.maximum(d_ai, d_bi)
    if method == "average":
        return (size_a * d_ai + size_b * d_bi) / (size_a + size_b)
    if method == "ward":
        # Ward on Euclidean input distances; the standard LW form on the
        # distances themselves (scipy's convention).
        total = sizes_i + size_a + size_b
        return np.sqrt(
            (
                (sizes_i + size_a) * d_ai**2
                + (sizes_i + size_b) * d_bi**2
                - sizes_i * d_ab**2
            )
            / total
        )
    raise ValueError(f"unknown linkage method {method!r}; options: {LINKAGE_METHODS}")


def linkage(distance_matrix: np.ndarray, method: str = "average") -> np.ndarray:
    """Agglomerate ``n`` points given their square distance matrix.

    Returns an ``(n-1, 4)`` float array in scipy's format: columns are the
    two merged cluster ids (originals ``0..n-1``, merges ``n..2n-2``), the
    merge distance, and the merged cluster's size.  Ties are broken by the
    smallest pair of indices, matching a deterministic scan order.
    """
    if method not in LINKAGE_METHODS:
        raise ValueError(f"unknown linkage method {method!r}; options: {LINKAGE_METHODS}")
    d = validate_distance_matrix(distance_matrix)
    n = d.shape[0]
    if n < 2:
        raise ValueError("need at least 2 points to cluster")

    work = d.copy()
    np.fill_diagonal(work, np.inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    # current_id[i] = linkage id of the cluster whose row i currently stores.
    current_id = np.arange(n)
    out = np.zeros((n - 1, 4))

    for step in range(n - 1):
        # Masked argmin over active×active (diagonal and dead rows at +inf).
        masked = np.where(active[:, None] & active[None, :], work, np.inf)
        flat = int(np.argmin(masked))
        a, b = divmod(flat, n)
        if a > b:
            a, b = b, a
        dist = masked[a, b]
        if not np.isfinite(dist):
            raise RuntimeError("exhausted finite distances; matrix malformed?")

        others = active.copy()
        others[a] = others[b] = False
        idx = np.flatnonzero(others)
        if idx.size:
            work[a, idx] = _lance_williams(
                method, work[a, idx], work[b, idx], dist, int(sizes[a]),
                int(sizes[b]), sizes[idx],
            )
            work[idx, a] = work[a, idx]

        id_a, id_b = int(current_id[a]), int(current_id[b])
        lo, hi = (id_a, id_b) if id_a < id_b else (id_b, id_a)
        out[step] = (lo, hi, dist, sizes[a] + sizes[b])

        sizes[a] += sizes[b]
        active[b] = False
        work[b, :] = np.inf
        work[:, b] = np.inf
        current_id[a] = n + step
    return out


def merge_heights(linkage_matrix: np.ndarray) -> np.ndarray:
    """The sequence of merge distances (column 2), ascending for
    monotonic linkages."""
    z = np.asarray(linkage_matrix, dtype=np.float64)
    if z.ndim != 2 or z.shape[1] != 4:
        raise ValueError(f"linkage matrix must be (n-1, 4), got {z.shape}")
    return z[:, 2].copy()


def _labels_from_merge_prefix(linkage_matrix: np.ndarray, n_merges: int) -> np.ndarray:
    """Cluster labels after applying the first ``n_merges`` merges."""
    z = np.asarray(linkage_matrix)
    n = z.shape[0] + 1
    parent = np.arange(n + n_merges)

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    for step in range(n_merges):
        a, b = int(z[step, 0]), int(z[step, 1])
        new = n + step
        parent[find(a)] = new
        parent[find(b)] = new

    roots = np.array([find(i) for i in range(n)])
    return canonical_labels(roots)


def canonical_labels(raw: np.ndarray) -> np.ndarray:
    """Relabel arbitrary cluster ids to 0..k-1 by order of first appearance."""
    raw = np.asarray(raw)
    mapping: dict[int, int] = {}
    out = np.empty(len(raw), dtype=np.int64)
    for i, value in enumerate(raw):
        key = int(value)
        if key not in mapping:
            mapping[key] = len(mapping)
        out[i] = mapping[key]
    return out


def cut_by_k(linkage_matrix: np.ndarray, k: int) -> np.ndarray:
    """Labels for exactly ``k`` clusters (undo the last ``k-1`` merges)."""
    z = np.asarray(linkage_matrix)
    n = z.shape[0] + 1
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    return _labels_from_merge_prefix(z, n - k)


def cut_by_distance(linkage_matrix: np.ndarray, threshold: float) -> np.ndarray:
    """Labels after applying every merge with distance ≤ ``threshold``."""
    z = np.asarray(linkage_matrix)
    n_merges = int(np.searchsorted(z[:, 2], threshold, side="right"))
    return _labels_from_merge_prefix(z, n_merges)


def auto_cut_gap(
    linkage_matrix: np.ndarray,
    max_clusters: int | None = None,
    min_gap_ratio: float = 0.0,
) -> np.ndarray:
    """Cut at the largest gap between consecutive merge heights.

    This is FedClust's "no predefined cluster count" mechanism: if the
    federation has G well-separated groups, the dendrogram's first
    ``n − G`` merges happen at small (within-group) distances and the
    remaining ``G − 1`` at large (between-group) distances; the largest
    jump sits exactly at the boundary.  Cutting there yields G clusters
    without specifying G.

    Parameters
    ----------
    max_clusters:
        Optional ceiling on the returned cluster count (the gap is then
        searched only among cuts producing ≤ this many clusters).
    min_gap_ratio:
        If the largest gap is smaller than ``min_gap_ratio`` times the
        final merge height, the data is considered unclustered and a
        single cluster is returned.  ``0.0`` disables the guard.
    """
    z = np.asarray(linkage_matrix)
    n = z.shape[0] + 1
    heights = z[:, 2]
    if n == 2:
        return np.zeros(2, dtype=np.int64) if heights[0] == 0 else cut_by_k(z, 1)

    # Gap after merge t (between heights[t] and heights[t+1]) corresponds
    # to stopping after t+1 merges → n − (t+1) clusters.
    gaps = np.diff(heights)
    if max_clusters is not None:
        if max_clusters < 1:
            raise ValueError(f"max_clusters must be >= 1, got {max_clusters}")
        # n - (t+1) <= max_clusters  ⇔  t >= n - max_clusters - 1
        first_valid = max(n - max_clusters - 1, 0)
        if first_valid >= len(gaps):
            return cut_by_k(z, min(max_clusters, n))
        gaps = gaps.copy()
        gaps[:first_valid] = -np.inf

    best = int(np.argmax(gaps))
    scale = heights[-1] if heights[-1] > 0 else 1.0
    if gaps[best] < min_gap_ratio * scale:
        return _labels_from_merge_prefix(z, n - 1)  # one cluster
    return _labels_from_merge_prefix(z, best + 1)


def cophenetic_matrix(linkage_matrix: np.ndarray) -> np.ndarray:
    """Square matrix of cophenetic distances (merge height joining i, j).

    Used by tests to check the dendrogram structure against scipy.
    """
    z = np.asarray(linkage_matrix)
    n = z.shape[0] + 1
    members: dict[int, list[int]] = {i: [i] for i in range(n)}
    out = np.zeros((n, n))
    for step in range(n - 1):
        a, b = int(z[step, 0]), int(z[step, 1])
        left, right = members.pop(a), members.pop(b)
        h = z[step, 2]
        li = np.array(left)[:, None]
        ri = np.array(right)[None, :]
        out[li, ri] = h
        out[ri.T, li.T] = h
        members[n + step] = left + right
    return out
