"""Vectorised pairwise distances.

These are the server-side kernels behind every proximity matrix in the
library: FedClust's Euclidean matrix over final-layer weights, CFL's
cosine similarities over updates, and PACFL's principal-angle matrix
(in :mod:`repro.cluster.subspace`).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_square_matrix

__all__ = [
    "pairwise_sqeuclidean",
    "pairwise_euclidean",
    "pairwise_cosine_similarity",
    "pairwise_cosine_distance",
    "pairwise_distances",
    "condensed_from_square",
    "square_from_condensed",
    "validate_distance_matrix",
]


def pairwise_sqeuclidean(x: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``x``.

    Uses the Gram-matrix expansion ``|a|² + |b|² − 2a·b`` (one BLAS call
    instead of an O(n²·d) broadcast), clamped at zero against rounding.
    The expansion cancels catastrophically for near-identical rows far
    from the origin (a true distance of 1e-7 between norm-4 rows drowns
    in the norm terms and can come out exactly 0, breaking the triangle
    inequality — found by the hypothesis suite), so pairs whose computed
    value is within rounding noise of the norm scale are recomputed with
    the exact difference formula; everything else keeps the single-GEMM
    fast path.
    """
    x = np.asarray(check_array("x", x, ndim=2), dtype=np.float64)
    gram = x @ x.T
    sq = np.diag(gram)
    d2 = sq[:, None] + sq[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    # Cancellation repair: |a−b|² ≲ eps·(|a|²+|b|²) is below what the
    # expansion can resolve — recompute those pairs directly.
    scale = sq[:, None] + sq[None, :]
    suspect = d2 <= scale * 1e-10
    np.fill_diagonal(suspect, False)
    if suspect.any():
        rows, cols = np.nonzero(suspect)
        upper = rows < cols  # symmetric: compute each pair once
        for i, j in zip(rows[upper], cols[upper]):
            diff = x[i] - x[j]
            d2[i, j] = d2[j, i] = float(diff @ diff)
    return d2


def pairwise_euclidean(x: np.ndarray) -> np.ndarray:
    """Euclidean distances between rows of ``x`` (FedClust's metric)."""
    return np.sqrt(pairwise_sqeuclidean(x))


def pairwise_cosine_similarity(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity between rows of ``x`` (CFL's split criterion).

    Zero rows get zero similarity to everything (rather than NaN), which
    matches the "no update" semantics in CFL.
    """
    x = np.asarray(check_array("x", x, ndim=2), dtype=np.float64)
    norms = np.linalg.norm(x, axis=1)
    safe = np.where(norms > eps, norms, 1.0)
    unit = x / safe[:, None]
    unit[norms <= eps] = 0.0
    sim = unit @ unit.T
    np.clip(sim, -1.0, 1.0, out=sim)
    return sim


def pairwise_cosine_distance(x: np.ndarray) -> np.ndarray:
    """``1 − cosine similarity`` with an exact zero diagonal."""
    d = 1.0 - pairwise_cosine_similarity(x)
    np.fill_diagonal(d, 0.0)
    np.maximum(d, 0.0, out=d)
    return d


_METRICS = {
    "euclidean": pairwise_euclidean,
    "sqeuclidean": pairwise_sqeuclidean,
    "cosine": pairwise_cosine_distance,
}


def pairwise_distances(x: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Dispatch on ``metric`` ∈ {euclidean, sqeuclidean, cosine}."""
    if metric not in _METRICS:
        raise ValueError(f"unknown metric {metric!r}; options: {sorted(_METRICS)}")
    return _METRICS[metric](x)


def condensed_from_square(d: np.ndarray) -> np.ndarray:
    """Upper-triangle (scipy ``pdist``-style) vector of a square matrix."""
    d = validate_distance_matrix(d)
    iu = np.triu_indices(d.shape[0], k=1)
    return d[iu]


def square_from_condensed(condensed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`condensed_from_square`."""
    condensed = np.asarray(condensed, dtype=np.float64)
    expected = n * (n - 1) // 2
    if condensed.shape != (expected,):
        raise ValueError(
            f"condensed length {condensed.shape} mismatches n={n} "
            f"(expected {expected})"
        )
    out = np.zeros((n, n))
    iu = np.triu_indices(n, k=1)
    out[iu] = condensed
    out.T[iu] = condensed
    return out


def validate_distance_matrix(d: np.ndarray, atol: float = 1e-8) -> np.ndarray:
    """Require a finite symmetric non-negative square matrix, zero diagonal.

    Finiteness comes first and fails loudly naming the offending pair:
    a NaN/Inf distance means an upstream weight vector was already
    corrupt (e.g. a poisoned update that slipped past admission), and
    letting it reach the linkage merge loop would silently skew — or
    stall — the dendrogram instead of surfacing the real fault.
    """
    d = np.asarray(check_square_matrix("distance matrix", d), dtype=np.float64)
    finite = np.isfinite(d)
    if not finite.all():
        i, j = np.argwhere(~finite)[0]
        raise ValueError(
            f"distance matrix has a non-finite entry d[{i}, {j}] = {d[i, j]} "
            "(first offender); upstream weight vectors are corrupt — "
            "check the admission/quarantine pipeline before clustering"
        )
    if np.any(d < -atol):
        raise ValueError("distance matrix has negative entries")
    if not np.allclose(d, d.T, atol=atol):
        raise ValueError("distance matrix is not symmetric")
    if np.any(np.abs(np.diag(d)) > atol):
        raise ValueError("distance matrix diagonal is not zero")
    # Exact-ify the invariants so downstream code can rely on them.
    d = 0.5 * (d + d.T)
    np.fill_diagonal(d, 0.0)
    np.maximum(d, 0.0, out=d)
    return d
