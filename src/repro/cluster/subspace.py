"""Client data subspaces and principal angles — the PACFL substrate.

PACFL (Vahidian et al., AAAI 2022) has each client send the top-``p``
left singular vectors of its local data matrix; the server clusters
clients by the *principal angles* between those subspaces.  This module
implements both halves so :mod:`repro.algorithms.pacfl` is a faithful
baseline.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_positive

__all__ = [
    "data_subspace",
    "principal_angles",
    "subspace_distance",
    "pairwise_subspace_distances",
]


def data_subspace(samples: np.ndarray, p: int) -> np.ndarray:
    """Top-``p`` left singular vectors of the flattened sample matrix.

    ``samples`` is ``(n_i, d)`` (rows are flattened images); the returned
    basis is ``(d, p)`` with orthonormal columns.  ``p`` is capped at the
    matrix rank bound ``min(n_i, d)``.
    """
    x = np.asarray(check_array("samples", samples, ndim=2), dtype=np.float64)
    check_positive("p", p)
    p = min(p, *x.shape)
    # Economy SVD of x.T (d × n): left vectors of x.T's column space =
    # principal directions of the samples in feature space.
    u, _, _ = np.linalg.svd(x.T, full_matrices=False)
    return u[:, :p]


def principal_angles(basis_a: np.ndarray, basis_b: np.ndarray) -> np.ndarray:
    """Principal angles (radians, ascending) between two subspaces.

    Computed from the singular values of ``A.T @ B`` clipped into
    ``[0, 1]``; bases must share the ambient dimension but may differ in
    rank (the angle count is the smaller rank).
    """
    a = np.asarray(check_array("basis_a", basis_a, ndim=2), dtype=np.float64)
    b = np.asarray(check_array("basis_b", basis_b, ndim=2), dtype=np.float64)
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"bases live in different ambient dims: {a.shape[0]} vs {b.shape[0]}"
        )
    sigma = np.linalg.svd(a.T @ b, compute_uv=False)
    sigma = np.clip(sigma, 0.0, 1.0)
    return np.sort(np.arccos(sigma))


def subspace_distance(basis_a: np.ndarray, basis_b: np.ndarray) -> float:
    """PACFL's proximity: the sum of principal angles (radians).

    0 when the subspaces coincide; grows as they tilt apart.
    """
    return float(principal_angles(basis_a, basis_b).sum())


def pairwise_subspace_distances(bases: list[np.ndarray]) -> np.ndarray:
    """Square matrix of :func:`subspace_distance` over a basis list."""
    n = len(bases)
    if n < 2:
        raise ValueError("need at least 2 bases")
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            out[i, j] = out[j, i] = subspace_distance(bases[i], bases[j])
    return out
