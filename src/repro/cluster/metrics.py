"""Cluster-quality metrics, from scratch.

Used to score how well a CFL method's client grouping recovers planted
ground truth (ARI/NMI/purity) and to characterise proximity matrices
(silhouette, separability ratio — the quantity the paper's Fig. 1 shows
qualitatively).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import validate_distance_matrix

__all__ = [
    "contingency_table",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
    "silhouette_score",
    "group_separability",
]


def _as_labels(name: str, labels: np.ndarray) -> np.ndarray:
    arr = np.asarray(labels)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D array, got shape {arr.shape}")
    return arr


def contingency_table(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """Cross-tabulation ``n_ij`` = |cluster i of a ∩ cluster j of b|."""
    a = _as_labels("labels_a", labels_a)
    b = _as_labels("labels_b", labels_b)
    if a.shape != b.shape:
        raise ValueError(f"label arrays differ in length: {a.shape} vs {b.shape}")
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    table = np.zeros((ai.max() + 1, bi.max() + 1), dtype=np.int64)
    np.add.at(table, (ai, bi), 1)
    return table


def _comb2(x: np.ndarray) -> np.ndarray:
    """n choose 2, elementwise."""
    x = np.asarray(x, dtype=np.float64)
    return x * (x - 1) / 2.0


def adjusted_rand_index(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Hubert–Arabie adjusted Rand index in [-1, 1]; 1 = identical
    partitions (up to relabelling), ~0 = chance."""
    table = contingency_table(labels_true, labels_pred)
    n = table.sum()
    sum_comb = _comb2(table).sum()
    sum_a = _comb2(table.sum(axis=1)).sum()
    sum_b = _comb2(table.sum(axis=0)).sum()
    total = _comb2(np.array([n])).item()
    expected = sum_a * sum_b / total if total else 0.0
    max_index = 0.5 * (sum_a + sum_b)
    denom = max_index - expected
    if denom == 0:  # both partitions trivial (all-one-cluster or all-singletons)
        return 1.0 if sum_comb == sum_a == sum_b else 0.0
    return float((sum_comb - expected) / denom)


def normalized_mutual_information(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1]."""
    table = contingency_table(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    p_ij = table / n
    p_i = p_ij.sum(axis=1, keepdims=True)
    p_j = p_ij.sum(axis=0, keepdims=True)
    nz = p_ij > 0
    mi = float((p_ij[nz] * np.log(p_ij[nz] / (p_i @ p_j)[nz])).sum())

    def entropy(p: np.ndarray) -> float:
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    h_true, h_pred = entropy(p_i.ravel()), entropy(p_j.ravel())
    if h_true == 0.0 and h_pred == 0.0:
        return 1.0
    denom = 0.5 * (h_true + h_pred)
    if denom == 0.0:
        return 0.0
    # mi and denom are the same sums accumulated in different orders, so
    # identical labelings can land at mi/denom = 1 + O(eps); clamp to the
    # documented range.
    return float(min(max(mi, 0.0) / denom, 1.0))


def purity(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Fraction of points in the majority true class of their cluster."""
    table = contingency_table(labels_true, labels_pred)
    return float(table.max(axis=0).sum() / table.sum())


def silhouette_score(distance_matrix: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette over points, computed from a distance matrix.

    Singleton clusters contribute 0 (scikit-learn's convention).  Requires
    at least 2 clusters.
    """
    d = validate_distance_matrix(distance_matrix)
    labels = _as_labels("labels", labels)
    n = d.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels length {labels.shape} mismatches matrix ({n})")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least 2 clusters")
    if len(unique) >= n:
        raise ValueError("silhouette undefined when every point is a singleton")

    scores = np.zeros(n)
    masks = {c: labels == c for c in unique}
    for i in range(n):
        own = masks[labels[i]]
        n_own = own.sum()
        if n_own <= 1:
            scores[i] = 0.0
            continue
        a = d[i, own].sum() / (n_own - 1)  # exclude self (d[i,i]=0)
        b = min(d[i, masks[c]].mean() for c in unique if c != labels[i])
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def group_separability(distance_matrix: np.ndarray, groups: np.ndarray) -> float:
    """Mean between-group distance over mean within-group distance.

    The paper's Fig. 1 shows distance matrices where the planted two-group
    structure is visible for final-layer weights and invisible for early
    conv layers; this ratio quantifies that visibility (≫1 = clearly
    separated, ≈1 = structureless).  Returns ``inf`` when there are no
    within-group pairs and ``nan`` when there are no between-group pairs.
    """
    d = validate_distance_matrix(distance_matrix)
    groups = _as_labels("groups", groups)
    n = d.shape[0]
    if groups.shape != (n,):
        raise ValueError(f"groups length {groups.shape} mismatches matrix ({n})")
    same = groups[:, None] == groups[None, :]
    off_diag = ~np.eye(n, dtype=bool)
    within = d[same & off_diag]
    between = d[~same]
    if between.size == 0:
        return float("nan")
    if within.size == 0 or within.mean() == 0:
        return float("inf")
    return float(between.mean() / within.mean())
