"""Seeded k-means (Lloyd's algorithm with k-means++ init).

Not used by FedClust itself — it exists as a substrate utility: IFCA's
random cluster-model initialisation is compared against a k-means-style
warm start in the ablations, and the test suite uses k-means as an
independent clustering reference on planted data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import check_array, check_positive

__all__ = ["KMeansResult", "kmeans_plus_plus_init", "kmeans"]


@dataclass
class KMeansResult:
    """Fitted k-means state."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int
    converged: bool


def kmeans_plus_plus_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: iteratively sample centres ∝ squared distance."""
    x = np.asarray(check_array("x", x, ndim=2), dtype=np.float64)
    n = x.shape[0]
    check_positive("k", k)
    if k > n:
        raise ValueError(f"k={k} exceeds n={n}")
    centers = np.empty((k, x.shape[1]))
    centers[0] = x[rng.integers(n)]
    d2 = ((x - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = d2.sum()
        if total <= 0:  # all points coincide with chosen centres
            centers[j:] = x[rng.integers(n, size=k - j)]
            break
        probs = d2 / total
        centers[j] = x[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, ((x - centers[j]) ** 2).sum(axis=1))
    return centers


def kmeans(
    x: np.ndarray,
    k: int,
    seed: int | np.random.Generator,
    max_iter: int = 100,
    tol: float = 1e-7,
) -> KMeansResult:
    """Lloyd's algorithm; empty clusters are re-seeded at the farthest point."""
    x = np.asarray(check_array("x", x, ndim=2), dtype=np.float64)
    rng = make_rng(seed)
    centers = kmeans_plus_plus_init(x, k, rng)
    labels = np.zeros(x.shape[0], dtype=np.int64)
    converged = False
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        # Assignment step (vectorised distance to all centres).
        d2 = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        new_centers = centers.copy()
        for j in range(k):
            mask = labels == j
            if mask.any():
                new_centers[j] = x[mask].mean(axis=0)
            else:
                new_centers[j] = x[d2.min(axis=1).argmax()]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift <= tol:
            converged = True
            break
    d2 = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    labels = d2.argmin(axis=1)
    inertia = float(d2[np.arange(x.shape[0]), labels].sum())
    return KMeansResult(centers, labels, inertia, n_iter, converged)
