"""Clustering substrate: distances, hierarchical clustering, metrics."""

from repro.cluster.dendrogram import dendrogram_text, leaf_order
from repro.cluster.distance import (
    condensed_from_square,
    pairwise_cosine_distance,
    pairwise_cosine_similarity,
    pairwise_distances,
    pairwise_euclidean,
    pairwise_sqeuclidean,
    square_from_condensed,
    validate_distance_matrix,
)
from repro.cluster.hierarchy import (
    LINKAGE_METHODS,
    auto_cut_gap,
    canonical_labels,
    cophenetic_matrix,
    cut_by_distance,
    cut_by_k,
    linkage,
    merge_heights,
)
from repro.cluster.kmeans import KMeansResult, kmeans, kmeans_plus_plus_init
from repro.cluster.metrics import (
    adjusted_rand_index,
    contingency_table,
    group_separability,
    normalized_mutual_information,
    purity,
    silhouette_score,
)
from repro.cluster.subspace import (
    data_subspace,
    pairwise_subspace_distances,
    principal_angles,
    subspace_distance,
)

__all__ = [
    "dendrogram_text",
    "leaf_order",
    "condensed_from_square",
    "pairwise_cosine_distance",
    "pairwise_cosine_similarity",
    "pairwise_distances",
    "pairwise_euclidean",
    "pairwise_sqeuclidean",
    "square_from_condensed",
    "validate_distance_matrix",
    "LINKAGE_METHODS",
    "auto_cut_gap",
    "canonical_labels",
    "cophenetic_matrix",
    "cut_by_distance",
    "cut_by_k",
    "linkage",
    "merge_heights",
    "KMeansResult",
    "kmeans",
    "kmeans_plus_plus_init",
    "adjusted_rand_index",
    "contingency_table",
    "group_separability",
    "normalized_mutual_information",
    "purity",
    "silhouette_score",
    "data_subspace",
    "pairwise_subspace_distances",
    "principal_angles",
    "subspace_distance",
]
