"""Text dendrogram rendering.

The paper's step ⑤ is a dendrogram cut; this module draws the dendrogram
in plain text so examples and benchmark output can show *why* the
adaptive cut chose its cluster count — the merge heights and the gap are
visible at a glance in a terminal.

Example output for 2 planted groups of 3 clients::

    c0 ──┐
    c2 ──┤◄ 0.82
    c4 ──┤◄ 1.10                 ┐
    c1 ──┐                       │◄ 7.31
    c3 ──┤◄ 0.95                 │
    c5 ──┤◄ 1.21 ────────────────┘
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["dendrogram_text", "leaf_order"]


def leaf_order(linkage_matrix: np.ndarray) -> list[int]:
    """Left-to-right leaf order of the dendrogram (recursive traversal)."""
    z = np.asarray(linkage_matrix)
    n = z.shape[0] + 1

    def leaves(node: int) -> list[int]:
        if node < n:
            return [node]
        row = z[node - n]
        return leaves(int(row[0])) + leaves(int(row[1]))

    return leaves(2 * n - 2) if n > 1 else [0]


def dendrogram_text(
    linkage_matrix: np.ndarray,
    labels: Sequence[str] | None = None,
    width: int = 60,
) -> str:
    """Render a linkage matrix as an ASCII dendrogram.

    Each merge is drawn as a bracket at a column proportional to its
    merge height; leaves are listed top-to-bottom in dendrogram order.
    Suited to the tens-of-clients scale of FL experiments.
    """
    z = np.asarray(linkage_matrix, dtype=np.float64)
    if z.ndim != 2 or z.shape[1] != 4:
        raise ValueError(f"linkage matrix must be (n-1, 4), got {z.shape}")
    n = z.shape[0] + 1
    names = list(labels) if labels is not None else [f"c{i}" for i in range(n)]
    if len(names) != n:
        raise ValueError(f"need {n} labels, got {len(names)}")

    order = leaf_order(z)
    row_of_leaf = {leaf: row for row, leaf in enumerate(order)}
    label_w = max(len(s) for s in names)
    max_h = float(z[:, 2].max()) or 1.0

    def col(height: float) -> int:
        return label_w + 2 + int(round((width - 1) * height / max_h))

    canvas_w = label_w + 2 + width + 12
    grid = [[" "] * canvas_w for _ in range(n)]
    for row, leaf in enumerate(order):
        for i, ch in enumerate(names[leaf].rjust(label_w)):
            grid[row][i] = ch

    # Track, per active cluster, its (row, column reached so far).
    position: dict[int, tuple[int, int]] = {
        leaf: (row_of_leaf[leaf], label_w + 1) for leaf in range(n)
    }
    for step in range(n - 1):
        a, b = int(z[step, 0]), int(z[step, 1])
        height = float(z[step, 2])
        target = min(col(height), canvas_w - 9)
        (row_a, col_a), (row_b, col_b) = position.pop(a), position.pop(b)
        top, bottom = min(row_a, row_b), max(row_a, row_b)
        for row, start in ((row_a, col_a), (row_b, col_b)):
            for c in range(start, target):
                if grid[row][c] == " ":
                    grid[row][c] = "─"
        for row in range(top, bottom + 1):
            if grid[row][target] == " ":
                grid[row][target] = "│"
        grid[row_a][target] = "┐" if row_a == top else "┘"
        grid[row_b][target] = "┐" if row_b == top else "┘"
        mid = (row_a + row_b) // 2
        annotation = f"◄ {height:.2f}"
        for i, ch in enumerate(annotation):
            c = target + 1 + i
            if c < canvas_w and grid[mid][c] == " ":
                grid[mid][c] = ch
        position[n + step] = (mid, target + 1)

    return "\n".join("".join(row).rstrip() for row in grid)
