"""Real-time newcomer incorporation (step ⑥ of Fig. 2).

A client that joins after the one-shot clustering round does not trigger
re-clustering.  It receives the initial global model, trains briefly,
uploads its final-layer weights, and the server assigns it to the
cluster whose members' weight vectors are nearest — using a linkage-
consistent distance (mean distance to members for average linkage, min
for single, max for complete).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_array, check_in

__all__ = ["NewcomerAssignment", "assign_newcomer"]


@dataclass
class NewcomerAssignment:
    """Outcome of a newcomer assignment."""

    cluster: int
    distances: np.ndarray  # per-cluster linkage distance
    margin: float  # runner-up distance minus winner distance


def assign_newcomer(
    newcomer_vector: np.ndarray,
    member_matrix: np.ndarray,
    labels: np.ndarray,
    linkage_method: str = "average",
) -> NewcomerAssignment:
    """Assign a new client to the nearest existing cluster.

    Parameters
    ----------
    newcomer_vector:
        The newcomer's flattened final-layer weights, shape ``(d,)``.
    member_matrix:
        Existing clients' weight matrix, shape ``(m, d)`` — the same
        matrix the one-shot clustering used (the server retains it).
    labels:
        Existing cluster labels, shape ``(m,)``.
    linkage_method:
        Distance from a point to a cluster, consistent with the linkage
        used at clustering time: ``average`` → mean member distance,
        ``single`` → min, ``complete`` → max, ``ward`` → treated as
        ``average`` (standard practice for post-hoc assignment).
    """
    check_in("linkage_method", linkage_method, ("average", "single", "complete", "ward"))
    v = np.asarray(check_array("newcomer_vector", newcomer_vector, ndim=1), dtype=np.float64)
    w = np.asarray(check_array("member_matrix", member_matrix, ndim=2), dtype=np.float64)
    labels = np.asarray(labels)
    if w.shape[1] != v.shape[0]:
        raise ValueError(
            f"dimension mismatch: newcomer d={v.shape[0]}, members d={w.shape[1]}"
        )
    if labels.shape != (w.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} mismatches member count {w.shape[0]}"
        )

    member_dists = np.linalg.norm(w - v[None, :], axis=1)
    n_clusters = int(labels.max()) + 1
    reduce = {
        "average": np.mean,
        "ward": np.mean,
        "single": np.min,
        "complete": np.max,
    }[linkage_method]
    cluster_dists = np.array(
        [reduce(member_dists[labels == g]) for g in range(n_clusters)]
    )
    order = np.argsort(cluster_dists)
    winner = int(order[0])
    margin = (
        float(cluster_dists[order[1]] - cluster_dists[order[0]])
        if n_clusters > 1
        else float("inf")
    )
    return NewcomerAssignment(cluster=winner, distances=cluster_dists, margin=margin)
