"""FedClust — the paper's algorithm.

Workflow (paper Fig. 2):

① the server broadcasts the initial global model to all clients;
② clients train locally for a few epochs;
③ clients upload **only their final-layer weights** (partial weights);
④ the server computes the Euclidean proximity matrix between uploads;
⑤ the server runs agglomerative hierarchical clustering and cuts the
  dendrogram adaptively (no predefined cluster count);
⑥ newcomers are assigned to the nearest cluster in real time, with no
  re-clustering.

Steps ①–⑤ happen in **one communication round**; from the next round
FedClust trains FedAvg-style *within each cluster*.  The clustering
round's upload is just the classifier layer (for LeNet-5 on 10 classes:
850 of 61 706 parameters — 1.4 %), which is the source of the paper's
communication-cost advantage over iterative CFL/IFCA.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.algorithms.base import (
    ClusteredRounds,
    FLAlgorithm,
    RunResult,
    cohort_matrix,
)
from repro.core.clustering import ClusteringConfig, ClusteringResult, cluster_clients
from repro.core.newcomer import NewcomerAssignment, assign_newcomer
from repro.core.proximity import ProximityResult, proximity_matrix
from repro.core.weights import (
    final_layer_keys,
    layer_index_keys,
    layer_keys,
    packed_weight_matrix,
)
from repro.data.dataset import ArrayDataset
from repro.fl.aggregation import packed_weighted_average
from repro.fl.client import local_train
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import RoundEngine, ScenarioConfig
from repro.fl.simulation import FederatedEnv
from repro.nn.module import Module
from repro.nn.state import flatten_state
from repro.nn.state_flat import unpack_keys, unpack_state
from repro.utils.rng import rng_for
from repro.utils.validation import check_in, check_positive

__all__ = ["FedClustConfig", "FedClust", "FittedFedClust", "resolve_selection_keys"]

_NEWCOMER_TAG = 9


def resolve_selection_keys(model: Module, selection: str) -> list[str]:
    """Map a weight-selection spec to state-dict keys.

    * ``"final_layer"`` — the classifier (paper's choice);
    * ``"all"`` — every parameter (what CFL-style methods transfer; the
      A2 ablation baseline);
    * ``"layer:<name>"`` — one named layer (e.g. ``"layer:conv1"``);
    * ``"index:<i>"`` — the i-th weighted layer, 1-based, Fig. 1 style.
    """
    if selection == "final_layer":
        return final_layer_keys(model)
    if selection == "all":
        return [name for name, _ in model.named_parameters()]
    if selection.startswith("layer:"):
        return layer_keys(model, selection.split(":", 1)[1])
    if selection.startswith("index:"):
        return layer_index_keys(model, int(selection.split(":", 1)[1]))[1]
    raise ValueError(
        f"unknown weight selection {selection!r}; use 'final_layer', 'all', "
        "'layer:<name>' or 'index:<i>'"
    )


@dataclass(frozen=True)
class FedClustConfig:
    """FedClust hyper-parameters.

    Attributes
    ----------
    clustering:
        Dendrogram construction/cut settings (step ⑤).
    metric:
        Proximity metric over uploaded weights (paper: Euclidean).
    weight_selection:
        What clients upload in the clustering round (paper: final layer).
    warmup_epochs:
        Local epochs in the clustering round; ``None`` reuses the
        environment's ``local_epochs``.
    warmup_lr, warmup_momentum:
        Optimiser overrides for the clustering round only.  The paper does
        not specify the warm-up optimiser; empirically the weight
        signature is far sharper with a gentle, momentum-free pass
        (momentum amplifies last-batch noise in the classifier weights),
        so ``warmup_momentum`` defaults to 0.0 while ``warmup_lr = None``
        keeps the environment's learning rate.  Set either to ``None`` to
        inherit the environment's value.
    warmup_steps:
        If set, every client performs exactly this many SGD steps in the
        clustering round (epochs repeat as needed, capped at the step
        budget).  Equalising steps removes the dataset-size confound on
        Dirichlet splits: without it, clients with tiny shards barely
        move from the initial weights and cluster by update *magnitude*
        instead of data distribution.
    warm_start_final_layer:
        If True, each cluster's initial model replaces its classifier
        with the within-cluster average of the uploaded final layers.
        The paper does not specify this (default False); the A2 ablation
        measures its effect — it is free information the server already
        holds.
    max_clustering_attempts:
        Straggler tolerance for the one-shot round: clients that fail to
        report (e.g. under :class:`repro.fl.failures.FaultyExecutor`) are
        retried up to this many times; clients still dark afterwards are
        provisionally assigned to the largest cluster and recorded in
        ``FittedFedClust.stragglers`` (they can be re-routed later through
        the newcomer mechanism once they come back online).
    """

    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    metric: str = "euclidean"
    weight_selection: str = "final_layer"
    warmup_epochs: int | None = None
    warmup_lr: float | None = None
    warmup_momentum: float | None = 0.0
    warmup_steps: int | None = None
    warm_start_final_layer: bool = False
    max_clustering_attempts: int = 3

    def __post_init__(self) -> None:
        check_in("metric", self.metric, ("euclidean", "sqeuclidean", "cosine"))
        if self.warmup_epochs is not None:
            check_positive("warmup_epochs", self.warmup_epochs)
        if self.warmup_lr is not None:
            check_positive("warmup_lr", self.warmup_lr)
        if self.warmup_momentum is not None and self.warmup_momentum < 0:
            raise ValueError(f"warmup_momentum must be >= 0, got {self.warmup_momentum}")
        if self.warmup_steps is not None:
            check_positive("warmup_steps", self.warmup_steps)
        check_positive("max_clustering_attempts", self.max_clustering_attempts)

    def warmup_train_cfg(self, base: "TrainConfig") -> "TrainConfig":  # noqa: F821
        """The clustering-round training config derived from ``base``."""
        overrides: dict[str, object] = {}
        if self.warmup_epochs is not None:
            overrides["local_epochs"] = self.warmup_epochs
        if self.warmup_lr is not None:
            overrides["lr"] = self.warmup_lr
        if self.warmup_momentum is not None:
            overrides["momentum"] = self.warmup_momentum
        if self.warmup_steps is not None:
            # Enough epochs to hit the step budget even for one-batch
            # clients; max_steps enforces the exact count.
            overrides["local_epochs"] = self.warmup_steps
            overrides["max_steps"] = self.warmup_steps
        return dataclasses.replace(base, **overrides) if overrides else base


@dataclass
class FittedFedClust:
    """Server-side artefacts of the one-shot clustering round.

    Retained so newcomers can be assigned without re-clustering (step ⑥)
    and so diagnostics (proximity heat maps, dendrograms) can be produced
    after the run.
    """

    labels: np.ndarray
    weight_matrix: np.ndarray
    proximity: ProximityResult
    clustering: ClusteringResult
    selection_keys: list[str]
    config: FedClustConfig
    init_state: dict[str, np.ndarray]
    cluster_states: list[dict[str, np.ndarray]] = field(default_factory=list)
    #: Clients whose warm-up never arrived (assigned by fallback).
    stragglers: list[int] = field(default_factory=list)
    #: Clients not yet present at the clustering round (scenario arrival
    #: events); they hold the fallback label until onboarded as
    #: newcomers at their arrival round.
    absent: list[int] = field(default_factory=list)
    #: Client ids whose rows make up ``weight_matrix`` (all clients when
    #: nothing straggled).
    responders: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def n_clusters(self) -> int:
        return int(self.labels.max()) + 1

    def assign_newcomer_vector(self, vector: np.ndarray) -> NewcomerAssignment:
        """Step ⑥ for an already-extracted weight vector.

        Matches against the retained *responder* signatures — stragglers
        have no signature and never dilute the matching.
        """
        responder_labels = (
            self.labels[self.responders]
            if self.responders.size
            else self.labels
        )
        return assign_newcomer(
            vector,
            self.weight_matrix,
            responder_labels,
            linkage_method=self.config.clustering.linkage_method,
        )


class _FedClustRounds(ClusteredRounds):
    """Per-cluster training with arrival-driven newcomer onboarding.

    The engine notifies the strategy when scenario arrivals occur; each
    arriving client runs the paper's step ⑥ — warm up from the retained
    initial model, upload the partial-weight signature, match against
    the responders' weight matrix — and is re-routed from its fallback
    cluster *before* it first participates.

    Checkpointing rides on :class:`ClusteredRounds`' hooks (cluster
    matrix + labels).  The ``onboarded`` diagnostic dict is *not*
    serialised: a resumed run re-derives labels from the checkpoint,
    so ``RunResult.extras["onboarded"]`` only covers arrivals after
    the resume point.
    """

    name = "fedclust"

    def __init__(
        self, algo: "FedClust", fitted: FittedFedClust, matrix: np.ndarray
    ) -> None:
        super().__init__(matrix, fitted.labels)
        self.algo = algo
        self.fitted = fitted
        #: client id → NewcomerAssignment for arrivals onboarded mid-run.
        self.onboarded: dict[int, NewcomerAssignment] = {}

    def on_arrivals(
        self, engine: RoundEngine, round_index: int, arrived: np.ndarray
    ) -> None:
        env = engine.env
        for cid in arrived:
            cid = int(cid)
            env.tracker.record_download(env.n_params, phase="newcomer")
            model = env.scratch_model
            model.load_state_dict(self.fitted.init_state)
            cfg = self.algo.config.warmup_train_cfg(env.train_cfg)
            local_train(
                model,
                env.federation.clients[cid].train,
                cfg,
                rng_for(env.seed, _NEWCOMER_TAG, cid),
            )
            vector = flatten_state(
                model.state_dict(copy=False), self.fitted.selection_keys
            )
            env.tracker.record_upload(vector.shape[0], phase="newcomer")
            assignment = self.fitted.assign_newcomer_vector(vector)
            self.set_label(cid, assignment.cluster)
            self.onboarded[cid] = assignment


class FedClust(FLAlgorithm):
    """One-shot weight-driven clustered federated learning."""

    name = "fedclust"

    def __init__(self, config: FedClustConfig | None = None) -> None:
        self.config = config or FedClustConfig()

    # ------------------------------------------------------------------
    # Step ①–⑤: the clustering round
    # ------------------------------------------------------------------
    def clustering_round(
        self,
        env: FederatedEnv,
        round_index: int = 1,
        engine: RoundEngine | None = None,
        absent: Sequence[int] = (),
    ) -> FittedFedClust:
        """Run the one-shot clustering round and fit the cluster structure.

        ``engine`` supplies the scenario middleware (seeded failures and
        stragglers compose with the retry loop below); the default is a
        no-failure engine, which reproduces the historical behaviour
        exactly.  ``absent`` names clients not yet present (scenario
        arrival events): they receive no warm-up task and hold the
        fallback label until the newcomer path re-routes them.

        The clustering round is a synchronous barrier even under an
        async scenario: it runs through :meth:`RoundEngine.dispatch`
        (the lockstep primitive), because the one-shot signature
        clustering needs every responder's warm-up *before* any cluster
        model exists to train against — there is no model to aggregate
        into a buffer yet.  Only the training rounds that follow stream
        through the async engine.
        """
        m = env.federation.n_clients
        engine = engine or RoundEngine(env)
        init = env.init_state()
        selection = resolve_selection_keys(env.scratch_model, self.config.weight_selection)

        # ①–② broadcast + local warm-up, with straggler retries through the
        # engine's shared retry primitive (the seeded-epoch derivation this
        # loop pioneered now lives in RoundEngine.dispatch_with_retry).
        # Executors and scenarios that never fail respond fully on the
        # first attempt, so the retry loop is free in the common path.
        original = env.train_cfg
        warmup_cfg = self.config.warmup_train_cfg(original)
        absent = sorted(int(c) for c in absent)
        targets = [cid for cid in range(m) if cid not in set(absent)]
        # Broadcast payload: the packed init row (shared by every task,
        # so executors encode it once); no dict ships.
        init_vector = env.layout.pack(init)

        def warmup_tasks(pending: list[int]) -> list[UpdateTask]:
            return [UpdateTask(cid, flat=init_vector) for cid in pending]

        # Upload accounting stays with us: the clustering upload is the
        # partial-weight slice, not the full model (step ③).
        env.train_cfg = warmup_cfg
        try:
            updates_by_client, pending = engine.dispatch_with_retry(
                warmup_tasks,
                targets,
                round_index,
                self.config.max_clustering_attempts,
                phase="clustering",
                charge_upload=False,
            )
        finally:
            env.train_cfg = original
        stragglers = sorted(pending)
        responders = np.array(sorted(updates_by_client), dtype=np.int64)
        if responders.size < 2:
            raise RuntimeError(
                "clustering round needs >= 2 responding clients, got "
                f"{responders.size} (stragglers: {stragglers})"
            )

        # ③ upload only the selected partial weights (responders only).
        # The responders' states live as one packed cohort matrix; the
        # uploaded weight matrix is a column slice of it — no per-client
        # flatten.  (Materialised with a copy so retaining it in
        # FittedFedClust does not pin the full cohort buffer.)
        updates = [updates_by_client[cid] for cid in responders]
        cohort = cohort_matrix(env, updates)
        w = np.ascontiguousarray(
            packed_weight_matrix(cohort, env.layout, selection)
        )
        env.tracker.record_upload(int(w.shape[1]) * len(responders), phase="clustering")

        # ④ proximity matrix; ⑤ hierarchical clustering + adaptive cut.
        prox = proximity_matrix(w, metric=self.config.metric)
        clustering = cluster_clients(prox.matrix, self.config.clustering)

        # Expand responder labels to all clients; stragglers (and clients
        # not yet arrived) fall back to the largest cluster until they
        # can be onboarded as newcomers.
        labels = np.full(m, -1, dtype=np.int64)
        labels[responders] = clustering.labels
        if stragglers or absent:
            fallback = int(np.bincount(clustering.labels).argmax())
            labels[stragglers] = fallback
            labels[absent] = fallback

        # Initial per-cluster models.
        cluster_states = []
        for g in range(clustering.n_clusters):
            state = {k: v.copy() for k, v in init.items()}
            if self.config.warm_start_final_layer:
                # Within-cluster average of the uploaded rows: one GEMV
                # over the already-sliced weight matrix.
                members = clustering.members_of(g)
                sizes = [updates[i].n_samples for i in members]
                averaged = packed_weighted_average(w[np.asarray(members)], sizes)
                state.update(unpack_keys(averaged, env.layout, selection))
            cluster_states.append(state)

        return FittedFedClust(
            labels=labels,
            weight_matrix=w,
            proximity=prox,
            clustering=clustering,
            selection_keys=selection,
            config=self.config,
            init_state=init,
            cluster_states=cluster_states,
            stragglers=stragglers,
            absent=absent,
            responders=responders,
        )

    # ------------------------------------------------------------------
    # Full training run
    # ------------------------------------------------------------------
    def run(
        self,
        env: FederatedEnv,
        n_rounds: int,
        eval_every: int = 1,
        scenario: ScenarioConfig | None = None,
    ) -> RunResult:
        if n_rounds < 2:
            raise ValueError("FedClust needs >= 2 rounds (1 clustering + training)")
        m = env.federation.n_clients
        history = RunHistory(self.name, env.federation.dataset_name, env.seed)
        scenario = self._scenario(scenario)
        engine = RoundEngine(env, scenario)

        # Scenario arrivals after round 1 miss the one-shot clustering;
        # they are onboarded through the newcomer path (step ⑥) by the
        # training strategy at their arrival round.
        absent = [
            cid
            for cid, r in (scenario.arrivals or {}).items()
            if int(r) > 1
        ]
        fitted = self.clustering_round(env, round_index=1, engine=engine, absent=absent)
        # Grouped Table-I eval: each cluster model is loaded once and its
        # members' test splits share fused batches (repro.fl.eval_flat).
        mean_acc, _ = env.evaluate_assignment(fitted.cluster_states, fitted.labels)
        history.append(
            RoundRecord(
                round_index=1,
                mean_train_loss=float("nan"),
                mean_local_accuracy=mean_acc,
                n_participants=m - len(absent),
                n_clusters=fitted.n_clusters,
                uploaded_params=env.tracker.total_uploaded,
                downloaded_params=env.tracker.total_downloaded,
            )
        )

        matrix = np.stack([env.layout.pack(s) for s in fitted.cluster_states])
        strategy = _FedClustRounds(self, fitted, matrix)
        mean_acc, per_client = engine.run(
            strategy, n_rounds - 1, history, first_round=2, eval_every=eval_every
        )
        fitted.cluster_states = [
            dict(unpack_state(row, env.layout)) for row in strategy.matrix
        ]
        fitted.labels = strategy.labels.copy()
        return RunResult(
            history=history,
            final_accuracy=mean_acc,
            accuracy_std=float(np.std(per_client)),
            per_client_accuracy=per_client,
            cluster_labels=fitted.labels,
            comm=env.tracker.by_phase() | {"total": env.tracker.snapshot()},
            extras={
                "fitted": fitted,
                "proximity": fitted.proximity.matrix,
                "n_clusters": fitted.n_clusters,
                "onboarded": strategy.onboarded,
                "engine_record": engine.run_record(),
            },
        )

    # ------------------------------------------------------------------
    # Step ⑥: newcomers
    # ------------------------------------------------------------------
    def incorporate_newcomer(
        self,
        env: FederatedEnv,
        fitted: FittedFedClust,
        train_dataset: ArrayDataset,
        newcomer_id: int = 0,
    ) -> tuple[NewcomerAssignment, Mapping[str, np.ndarray]]:
        """Onboard a new client in real time.

        The newcomer downloads the *initial* global model, trains the same
        warm-up epochs the clustering round used, uploads its partial
        weights, and is matched against the retained weight matrix.
        Returns the assignment plus the cluster model it should now use.
        """
        env.tracker.record_download(env.n_params, phase="newcomer")
        model = env.scratch_model
        model.load_state_dict(fitted.init_state)
        cfg = self.config.warmup_train_cfg(env.train_cfg)
        local_train(
            model,
            train_dataset,
            cfg,
            rng_for(env.seed, _NEWCOMER_TAG, newcomer_id),
        )
        vector = flatten_state(model.state_dict(copy=False), fitted.selection_keys)
        env.tracker.record_upload(vector.shape[0], phase="newcomer")
        assignment = fitted.assign_newcomer_vector(vector)
        if fitted.cluster_states:
            env.tracker.record_download(env.n_params, phase="newcomer")
            serving_state = fitted.cluster_states[assignment.cluster]
        else:
            serving_state = fitted.init_state
        return assignment, serving_state
