"""Proximity-matrix construction (step ④ of Fig. 2).

The server computes pairwise distances between the clients' uploaded
partial weight vectors.  The paper uses Euclidean distance; cosine is
provided for the ablation study (A2/A1 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distance import pairwise_distances, validate_distance_matrix

__all__ = ["ProximityResult", "proximity_matrix"]


@dataclass
class ProximityResult:
    """A validated proximity matrix plus its provenance."""

    matrix: np.ndarray
    metric: str
    n_clients: int

    def normalized(self) -> np.ndarray:
        """Matrix scaled to [0, 1] by its max (for display/heat maps)."""
        peak = float(self.matrix.max())
        return self.matrix / peak if peak > 0 else self.matrix.copy()


def proximity_matrix(
    weight_matrix: np.ndarray, metric: str = "euclidean"
) -> ProximityResult:
    """Pairwise distances between client weight vectors.

    ``weight_matrix`` is the ``(m, d)`` stack from
    :func:`repro.core.weights.weight_matrix`; the result is symmetric,
    non-negative, zero-diagonal (validated).
    """
    w = np.asarray(weight_matrix, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"weight matrix must be (m, d), got {w.shape}")
    if w.shape[0] < 2:
        raise ValueError("need at least 2 clients for a proximity matrix")
    matrix = validate_distance_matrix(pairwise_distances(w, metric))
    return ProximityResult(matrix=matrix, metric=metric, n_clients=w.shape[0])
