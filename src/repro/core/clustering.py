"""One-shot client clustering (step ⑤ of Fig. 2).

Agglomerative hierarchical clustering over the proximity matrix, with
the adaptive largest-gap cut that frees FedClust from a predefined
cluster count — the flexibility the paper claims over IFCA/CFL.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.hierarchy import (
    LINKAGE_METHODS,
    auto_cut_gap,
    cut_by_distance,
    cut_by_k,
    linkage,
)
from repro.cluster.metrics import silhouette_score
from repro.utils.validation import check_in

__all__ = [
    "ClusteringConfig",
    "ClusteringResult",
    "cluster_clients",
    "silhouette_cut",
]


def silhouette_cut(
    proximity: np.ndarray,
    linkage_matrix: np.ndarray,
    max_clusters: int | None = None,
    tolerance: float = 0.05,
) -> np.ndarray:
    """Adaptive cut by silhouette: the finest k whose score is near-best.

    Like the largest-gap heuristic this needs **no predefined cluster
    count**; unlike it, it scores each candidate partition directly on
    the proximity matrix, which is markedly more robust when the
    between/within-group contrast is soft (Dirichlet label skew, where
    client similarity is continuous rather than block-structured).

    Among k ∈ [2, max], the cut picks the **largest k whose silhouette is
    within ``tolerance`` of the maximum**.  The asymmetry is deliberate
    and task-driven: in clustered FL, over-splitting a true group costs
    little (each sub-cluster still trains on clean same-distribution
    data) while under-splitting mixes distributions and poisons every
    member's model.  On crisp block structure the silhouette drops
    sharply past the true k, so the rule still recovers planted groups
    exactly; on soft structure it prefers the finer personalisation.
    """
    n = linkage_matrix.shape[0] + 1
    upper = min(max_clusters or n - 1, n - 1)
    if upper < 2:
        return cut_by_k(linkage_matrix, 1)
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    candidates: list[tuple[int, float, np.ndarray]] = []
    for k in range(2, upper + 1):
        labels = cut_by_k(linkage_matrix, k)
        if labels.max() == 0 or labels.max() + 1 >= n:
            continue
        candidates.append((k, silhouette_score(proximity, labels), labels))
    if not candidates:  # degenerate matrix; fall back to one cluster
        return cut_by_k(linkage_matrix, 1)
    best_score = max(score for _, score, _ in candidates)
    for k, score, labels in reversed(candidates):  # finest first
        if score >= best_score - tolerance:
            return labels
    return candidates[0][2]  # unreachable, but keeps the checker happy


@dataclass(frozen=True)
class ClusteringConfig:
    """How the dendrogram is built and cut.

    Attributes
    ----------
    linkage_method:
        Lance–Williams linkage over the proximity matrix (paper does not
        pin one down; ``average`` is the default and A1 ablates it).
    cut:
        ``"auto"`` — largest-gap heuristic (default; no predefined k);
        ``"silhouette"`` — adaptive silhouette-optimal k (no predefined
        k; preferred on soft, Dirichlet-style structure);
        ``"k"`` — fixed count (``n_clusters``);
        ``"distance"`` — threshold on merge height (``threshold``).
    n_clusters, threshold:
        Parameters for the respective cut modes.
    max_clusters:
        Optional ceiling for the auto cut (guards against degenerate
        all-singleton cuts on noisy proximity matrices).
    min_gap_ratio:
        Auto-cut guard: if the largest gap is below this fraction of the
        dendrogram height, the federation is declared homogeneous and a
        single cluster is returned.
    """

    linkage_method: str = "average"
    cut: str = "auto"
    n_clusters: int | None = None
    threshold: float | None = None
    max_clusters: int | None = None
    min_gap_ratio: float = 0.0

    def __post_init__(self) -> None:
        check_in("linkage_method", self.linkage_method, LINKAGE_METHODS)
        check_in("cut", self.cut, ("auto", "silhouette", "k", "distance"))
        if self.cut == "k" and (self.n_clusters is None or self.n_clusters < 1):
            raise ValueError("cut='k' requires n_clusters >= 1")
        if self.cut == "distance" and self.threshold is None:
            raise ValueError("cut='distance' requires threshold")
        if self.min_gap_ratio < 0:
            raise ValueError("min_gap_ratio must be >= 0")


@dataclass
class ClusteringResult:
    """Labels plus the dendrogram they came from."""

    labels: np.ndarray
    linkage_matrix: np.ndarray
    config: ClusteringConfig

    @property
    def n_clusters(self) -> int:
        return int(self.labels.max()) + 1

    def members_of(self, cluster: int) -> np.ndarray:
        """Client ids in ``cluster``."""
        if not 0 <= cluster < self.n_clusters:
            raise ValueError(f"cluster must be in [0, {self.n_clusters})")
        return np.flatnonzero(self.labels == cluster)

    def sizes(self) -> np.ndarray:
        """Cluster sizes, indexed by cluster id."""
        return np.bincount(self.labels, minlength=self.n_clusters)


def cluster_clients(
    proximity: np.ndarray, config: ClusteringConfig | None = None
) -> ClusteringResult:
    """Run HC on a proximity matrix and cut per ``config``."""
    config = config or ClusteringConfig()
    z = linkage(proximity, config.linkage_method)
    if config.cut == "k":
        labels = cut_by_k(z, int(config.n_clusters))  # type: ignore[arg-type]
    elif config.cut == "distance":
        labels = cut_by_distance(z, float(config.threshold))  # type: ignore[arg-type]
    elif config.cut == "silhouette":
        labels = silhouette_cut(proximity, z, max_clusters=config.max_clusters)
    else:
        labels = auto_cut_gap(
            z, max_clusters=config.max_clusters, min_gap_ratio=config.min_gap_ratio
        )
    return ClusteringResult(labels=labels, linkage_matrix=z, config=config)
