"""The paper's primary contribution: FedClust.

Weight-driven one-shot client clustering — partial-weight extraction,
proximity matrices, adaptive hierarchical clustering, real-time newcomer
incorporation, and the full training algorithm.
"""

from repro.core.clustering import ClusteringConfig, ClusteringResult, cluster_clients
from repro.core.fedclust import (
    FedClust,
    FedClustConfig,
    FittedFedClust,
    resolve_selection_keys,
)
from repro.core.newcomer import NewcomerAssignment, assign_newcomer
from repro.core.proximity import ProximityResult, proximity_matrix
from repro.core.weights import (
    final_layer_keys,
    final_layer_matrix,
    layer_index_keys,
    layer_keys,
    packed_weight_matrix,
    weight_matrix,
)

__all__ = [
    "ClusteringConfig",
    "ClusteringResult",
    "cluster_clients",
    "FedClust",
    "FedClustConfig",
    "FittedFedClust",
    "resolve_selection_keys",
    "NewcomerAssignment",
    "assign_newcomer",
    "ProximityResult",
    "proximity_matrix",
    "final_layer_keys",
    "final_layer_matrix",
    "layer_index_keys",
    "layer_keys",
    "packed_weight_matrix",
    "weight_matrix",
]
