"""Partial-weight selection — FedClust's "strategically selected" upload.

The paper's motivation (Fig. 1, §II) is that the **final layer** — the
classifier — implicitly encodes a client's label distribution, while
early convolutional layers encode generic features shared across
distributions.  FedClust therefore uploads only the final layer's
weights for clustering.  This module turns model states into the weight
matrices those decisions operate on, and provides per-layer extraction
for the Fig. 1 probe.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.nn.models import final_linear_name, parameterized_layers
from repro.nn.module import Module
from repro.nn.state import flatten_state
from repro.nn.state_flat import StateLayout

__all__ = [
    "final_layer_keys",
    "layer_keys",
    "weight_matrix",
    "packed_weight_matrix",
    "final_layer_matrix",
    "layer_index_keys",
]


def final_layer_keys(model: Module) -> list[str]:
    """State-dict keys of the classifier layer (weight + bias)."""
    layer = final_linear_name(model)
    keys = [
        name for name, _ in model.named_parameters() if name.startswith(layer + ".")
    ]
    if not keys:
        raise ValueError(f"no parameters found under final layer {layer!r}")
    return keys


def layer_keys(model: Module, layer_name: str) -> list[str]:
    """State-dict keys of one named layer."""
    keys = [
        name
        for name, _ in model.named_parameters()
        if name.startswith(layer_name + ".")
    ]
    if not keys:
        available = sorted({n.rsplit(".", 1)[0] for n, _ in model.named_parameters()})
        raise ValueError(f"layer {layer_name!r} not found; available: {available}")
    return keys


def layer_index_keys(model: Module, layer_index: int) -> tuple[str, list[str]]:
    """Keys of the ``layer_index``-th (1-based) *weighted* layer.

    Mirrors the paper's Fig. 1 numbering: for the VGG-16 layout, Layer 1
    is the first convolution and Layer 16 the classifier.
    """
    layers = parameterized_layers(model)
    if not 1 <= layer_index <= len(layers):
        raise ValueError(
            f"layer_index must be in [1, {len(layers)}], got {layer_index}"
        )
    name, _ = layers[layer_index - 1]
    return name, layer_keys(model, name)


def weight_matrix(
    states: Sequence[Mapping[str, np.ndarray]], keys: Sequence[str]
) -> np.ndarray:
    """Stack ``flatten(state[keys])`` over clients → ``(m, d)`` float64.

    Row ``i`` is client ``i``'s uploaded weight vector; this matrix is the
    direct input to the proximity computation.
    """
    if not states:
        raise ValueError("need at least one state")
    rows = [flatten_state(state, keys) for state in states]
    widths = {r.shape[0] for r in rows}
    if len(widths) != 1:
        raise ValueError(f"inconsistent flattened widths across clients: {widths}")
    return np.stack(rows)


def packed_weight_matrix(
    matrix: np.ndarray, layout: StateLayout, keys: Sequence[str]
) -> np.ndarray:
    """Uploaded-weight matrix as a column selection of a packed cohort.

    ``matrix`` is the ``(m, n_params)`` stack of flat client states (see
    :func:`repro.nn.state_flat.pack_states` — or simply the clients'
    ``ClientUpdate.flat`` rows).  Where :func:`weight_matrix` flattens
    every client's dict per call, this is ``matrix[:, columns]`` — a
    zero-copy view when ``keys`` occupy one contiguous run (true for the
    paper's final-layer selection, registered last in the model).

    Bit-identical to ``weight_matrix([unpack(row) for row in matrix], keys)``:
    packing stores the same float64 values flattening would produce.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[1] != layout.n_params:
        raise ValueError(
            f"packed cohort must be (m, {layout.n_params}), got {matrix.shape}"
        )
    return matrix[:, layout.columns(keys)]


def final_layer_matrix(
    model: Module, states: Sequence[Mapping[str, np.ndarray]]
) -> np.ndarray:
    """Convenience: :func:`weight_matrix` over the classifier keys."""
    return weight_matrix(states, final_layer_keys(model))
