"""State-dict arithmetic.

Federated learning is, mechanically, arithmetic on named parameter
dictionaries: differences (client updates), weighted averages
(aggregation), norms (CFL's split criterion), and flattened views
(FedClust's proximity matrix).  This module provides those primitives
once, so every algorithm shares the same well-tested implementations.

A *state* is an ordered ``dict[str, np.ndarray]`` as produced by
:meth:`repro.nn.module.Module.state_dict`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

import numpy as np

StateDict = "OrderedDict[str, np.ndarray]"

__all__ = [
    "state_copy",
    "state_zeros_like",
    "state_add",
    "state_sub",
    "state_scale",
    "state_axpy",
    "state_norm",
    "state_dot",
    "flatten_state",
    "unflatten_state",
    "state_allclose",
    "check_same_keys",
]


def check_same_keys(states: Sequence[Mapping[str, np.ndarray]]) -> list[str]:
    """Require all states to share an identical key sequence; return it."""
    if not states:
        raise ValueError("need at least one state dict")
    keys = list(states[0].keys())
    for i, s in enumerate(states[1:], start=1):
        if list(s.keys()) != keys:
            raise KeyError(
                f"state {i} keys differ from state 0: "
                f"{sorted(set(s) ^ set(keys))}"
            )
    return keys


def state_copy(state: Mapping[str, np.ndarray]) -> "OrderedDict[str, np.ndarray]":
    """Deep copy of a state dict."""
    return OrderedDict((k, v.copy()) for k, v in state.items())


def state_zeros_like(state: Mapping[str, np.ndarray]) -> "OrderedDict[str, np.ndarray]":
    """Zero-filled state with the same keys/shapes/dtypes."""
    return OrderedDict((k, np.zeros_like(v)) for k, v in state.items())


def state_add(
    a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]
) -> "OrderedDict[str, np.ndarray]":
    """Elementwise ``a + b``."""
    check_same_keys([a, b])
    return OrderedDict((k, a[k] + b[k]) for k in a)


def state_sub(
    a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]
) -> "OrderedDict[str, np.ndarray]":
    """Elementwise ``a - b`` (e.g. client update = local − global)."""
    check_same_keys([a, b])
    return OrderedDict((k, a[k] - b[k]) for k in a)


def state_scale(
    state: Mapping[str, np.ndarray], factor: float
) -> "OrderedDict[str, np.ndarray]":
    """Elementwise ``factor * state``."""
    return OrderedDict((k, v * factor) for k, v in state.items())


def state_axpy(
    acc: dict[str, np.ndarray], state: Mapping[str, np.ndarray], factor: float
) -> None:
    """In-place ``acc += factor * state`` (the aggregation inner loop)."""
    for k, v in state.items():
        acc[k] += factor * v


def state_norm(state: Mapping[str, np.ndarray]) -> float:
    """Global L2 norm over all entries (CFL's split criterion)."""
    total = 0.0
    for v in state.values():
        total += float(np.square(v, dtype=np.float64).sum())
    return float(np.sqrt(total))


def state_dot(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> float:
    """Inner product over all entries (for cosine similarities)."""
    check_same_keys([a, b])
    total = 0.0
    for k in a:
        total += float(np.multiply(a[k], b[k], dtype=np.float64).sum())
    return total


def flatten_state(
    state: Mapping[str, np.ndarray], keys: Iterable[str] | None = None
) -> np.ndarray:
    """Concatenate (a subset of) the state into one float64 vector.

    ``keys`` selects and orders the entries; default is the state's own
    order.  FedClust flattens the final-layer entries; CFL flattens the
    whole update.
    """
    names = list(keys) if keys is not None else list(state.keys())
    missing = [k for k in names if k not in state]
    if missing:
        raise KeyError(f"keys not in state: {missing}")
    if not names:
        raise ValueError("no keys selected to flatten")
    return np.concatenate([np.asarray(state[k], dtype=np.float64).ravel() for k in names])


def unflatten_state(
    vector: np.ndarray, template: Mapping[str, np.ndarray]
) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`flatten_state` for a full-state vector."""
    vector = np.asarray(vector)
    total = sum(v.size for v in template.values())
    if vector.shape != (total,):
        raise ValueError(f"vector has shape {vector.shape}, expected ({total},)")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    offset = 0
    for k, v in template.items():
        chunk = vector[offset : offset + v.size]
        out[k] = chunk.reshape(v.shape).astype(v.dtype)
        offset += v.size
    return out


def state_allclose(
    a: Mapping[str, np.ndarray],
    b: Mapping[str, np.ndarray],
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> bool:
    """True when two states match elementwise within tolerances."""
    try:
        check_same_keys([a, b])
    except KeyError:
        return False
    return all(np.allclose(a[k], b[k], rtol=rtol, atol=atol) for k in a)
