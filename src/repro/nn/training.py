"""Centralised training utilities.

FL code paths train through :mod:`repro.fl.client`; this module is the
*non-federated* counterpart used by calibration scripts, examples and
tests: a plain fit/evaluate loop over one dataset with optional
validation tracking and LR scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset
from repro.fl.evaluation import evaluate_model
from repro.nn.loss import CrossEntropyLoss, Loss
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.schedulers import Scheduler
from repro.utils.rng import make_rng

__all__ = ["FitResult", "fit", "accuracy"]


@dataclass
class FitResult:
    """Per-epoch history of a centralised fit."""

    train_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracy[-1] if self.val_accuracy else float("nan")


def fit(
    model: Module,
    train: ArrayDataset,
    optimizer: Optimizer,
    epochs: int,
    batch_size: int = 64,
    seed: int | np.random.Generator = 0,
    val: ArrayDataset | None = None,
    loss_fn: Loss | None = None,
    scheduler: Scheduler | None = None,
) -> FitResult:
    """Train ``model`` on ``train`` for ``epochs`` full passes.

    The scheduler (if any) is stepped once per epoch.  Validation metrics
    are recorded per epoch when ``val`` is given.
    """
    if epochs <= 0:
        raise ValueError(f"epochs must be positive, got {epochs}")
    loss_fn = loss_fn if loss_fn is not None else CrossEntropyLoss()
    rng = make_rng(seed)
    loader = DataLoader(train, min(batch_size, len(train)), rng=rng, shuffle=True)
    result = FitResult()

    for _ in range(epochs):
        model.train()
        total, batches = 0.0, 0
        for images, labels in loader:
            model.zero_grad()
            logits = model.forward(images)
            total += loss_fn.forward(logits, labels)
            model.backward(loss_fn.backward())
            optimizer.step()
            batches += 1
        result.train_loss.append(total / max(batches, 1))
        if val is not None:
            stats = evaluate_model(model, val)
            result.val_accuracy.append(stats.accuracy)
            result.val_loss.append(stats.loss)
        if scheduler is not None:
            scheduler.step()
    return result


def accuracy(model: Module, dataset: ArrayDataset, batch_size: int = 512) -> float:
    """Shorthand for ``evaluate_model(...).accuracy``."""
    return evaluate_model(model, dataset, batch_size=batch_size).accuracy
