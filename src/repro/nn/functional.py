"""Stateless numerical kernels used by the layers.

Everything here is vectorised NumPy (per the HPC guides: no per-sample
Python loops on hot paths).  Convolution and pooling are implemented with
the classic im2col/col2im lowering so the inner loop is a single BLAS
``matmul``; the only Python-level loops iterate over the *kernel* extent
(e.g. 5×5 = 25 iterations), never over samples or pixels.

Array layout convention: images are ``(N, C, H, W)`` float arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "pad_nchw",
    "sliding_windows",
    "im2col",
    "col2im",
    "softmax",
    "log_softmax",
    "one_hot",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output extent of a convolution/pooling along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial axes of an ``(N, C, H, W)`` batch."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def sliding_windows(
    x_padded: np.ndarray, kernel_h: int, kernel_w: int, stride: int
) -> np.ndarray:
    """Zero-copy view of all convolution windows.

    Returns a read-only view of shape ``(N, C, OH, OW, KH, KW)`` built with
    stride tricks — no data is materialised until a downstream reshape.
    """
    n, c, h, w = x_padded.shape
    out_h = (h - kernel_h) // stride + 1
    out_w = (w - kernel_w) // stride + 1
    s_n, s_c, s_h, s_w = x_padded.strides
    shape = (n, c, out_h, out_w, kernel_h, kernel_w)
    strides = (s_n, s_c, s_h * stride, s_w * stride, s_h, s_w)
    return np.lib.stride_tricks.as_strided(
        x_padded, shape=shape, strides=strides, writeable=False
    )


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple[int, int]]:
    """Lower convolution input to a 2-D matrix of flattened windows.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(N * OH * OW, C * KH * KW)``; row ``n*OH*OW + i*OW + j`` holds the
    window of sample ``n`` centred at output position ``(i, j)``.
    ``out`` lets callers reuse a scratch buffer of exactly that shape
    for the one materialising copy (row-tiled convolution does).
    """
    x_padded = pad_nchw(x, padding)
    windows = sliding_windows(x_padded, kernel_h, kernel_w, stride)
    n, c, out_h, out_w = windows.shape[:4]
    # (N, OH, OW, C, KH, KW) then flatten — this is the one materialising copy.
    source = windows.transpose(0, 2, 3, 1, 4, 5)
    if out is None:
        cols = source.reshape(n * out_h * out_w, c * kernel_h * kernel_w)
        return cols, (out_h, out_w)
    expected = (n * out_h * out_w, c * kernel_h * kernel_w)
    if out.shape != expected:
        raise ValueError(f"out has shape {out.shape}, expected {expected}")
    np.copyto(
        out.reshape(n, out_h, out_w, c, kernel_h, kernel_w), source
    )
    return out, (out_h, out_w)


def col2im(
    dcols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add window gradients back.

    ``dcols`` has the shape produced by :func:`im2col`.  Overlapping
    windows accumulate, which is exactly the convolution input gradient.
    """
    n, c, h, w = x_shape
    out_h = (h + 2 * padding - kernel_h) // stride + 1
    out_w = (w + 2 * padding - kernel_w) // stride + 1
    dwin = dcols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )  # (N, C, KH, KW, OH, OW)
    dx_padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=dcols.dtype)
    for i in range(kernel_h):
        i_stop = i + stride * out_h
        for j in range(kernel_w):
            j_stop = j + stride * out_w
            dx_padded[:, :, i:i_stop:stride, j:j_stop:stride] += dwin[:, :, i, j]
    if padding == 0:
        return dx_padded
    return dx_padded[:, :, padding : padding + h, padding : padding + w]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, n_classes: int, dtype: np.dtype | type = np.float32) -> np.ndarray:
    """Encode integer ``labels`` (shape ``(N,)``) as an ``(N, C)`` matrix."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError(
            f"labels must lie in [0, {n_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], n_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1
    return out
