"""Flat parameter plane: contiguous-buffer client states.

Server-side federated learning is matrix arithmetic in disguise: the
weighted average (Eq. 1), FedProx's proximal anchor, CFL's update norms
and FedClust's partial-weight proximity matrix are all linear-algebra
operations over the *same* cohort of client parameters.  Holding those
parameters as per-key ``OrderedDict``\\ s forces every one of these
operations through an O(n_clients x n_keys) Python loop before any BLAS
kernel can run.  This module provides the alternative representation:

* a :class:`StateLayout` — the key -> (slice, shape, dtype) map derived
  **once** per model architecture, and
* ``pack``/``unpack`` kernels that move a state dict into and out of a
  single contiguous float64 buffer, so that a cohort of ``n`` client
  states becomes one C-contiguous ``(n_clients, n_params)`` matrix.

With the cohort in this form the hot paths collapse to single kernels:
aggregation is one GEMV (``w @ X``), FedClust's final-layer extraction
is a column slice (``X[:, layout.columns(keys)]``), and transport ships
one buffer instead of pickling a dict of arrays.

Layout invariants
-----------------
1. **Key order is state order.**  A layout derived from a model's
   ``state_dict()`` lists keys in registration (depth-first) order — the
   same order ``Module.named_parameters`` and the dict API use.  Packing
   and unpacking never reorder.
2. **Offsets are cumulative sizes.**  Key ``k`` owns the half-open column
   range ``[offset_k, offset_k + size_k)``; ranges tile ``[0, n_params)``
   exactly, with no gaps and no overlap, so any key subset maps to a set
   of disjoint column runs (a single ``slice`` when the keys are stored
   adjacently — true for FedClust's final layer, which is registered
   last).
3. **Packing is exact.**  The buffer is float64 and every supported
   parameter dtype (float16/32/64) embeds into float64 losslessly, so
   ``unpack(pack(state)) == state`` *bit for bit*, including dtype and
   shape.  Non-contiguous inputs (views, transposes) are packed via
   C-order ravel; unpacking always returns fresh C-contiguous arrays.
4. **One layout per architecture.**  All states packed with a layout
   must share its key sequence, shapes and dtypes; :func:`pack_state`
   validates the key sequence and lets NumPy's shape rules reject the
   rest.  States from the same model always satisfy this.

The dict API elsewhere in the library (``repro.nn.state``,
``repro.fl.aggregation``) remains available as a thin compatibility
view over these kernels.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.module import Module

__all__ = [
    "StateLayout",
    "LazyStateView",
    "pack_state",
    "pack_states",
    "unpack_state",
    "unpack_keys",
]

#: Parameter dtypes that embed losslessly into the float64 plane.
_EXACT_DTYPES = (np.float16, np.float32, np.float64)


@dataclass(frozen=True)
class StateLayout:
    """Key -> (slice, shape, dtype) map for one model architecture.

    Derived once (per environment / per model) and shared by every pack,
    unpack, slice and transport operation on that architecture's states.
    Immutable and picklable, so process-pool workers can carry it.
    """

    keys: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]
    dtypes: tuple[np.dtype, ...]
    offsets: tuple[int, ...]  # len(keys) + 1 cumulative sizes; [-1] == n_params
    _index: dict[str, int] = field(repr=False, compare=False, default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_state(cls, state: Mapping[str, np.ndarray]) -> "StateLayout":
        """Derive the layout from a template state dict (its own order)."""
        if not state:
            raise ValueError("cannot derive a layout from an empty state")
        keys, shapes, dtypes, offsets = [], [], [], [0]
        for key, value in state.items():
            arr = np.asarray(value)
            if arr.dtype not in [np.dtype(d) for d in _EXACT_DTYPES]:
                raise TypeError(
                    f"key {key!r} has dtype {arr.dtype}, which does not embed "
                    "losslessly into the float64 parameter plane"
                )
            keys.append(key)
            shapes.append(tuple(arr.shape))
            dtypes.append(arr.dtype)
            offsets.append(offsets[-1] + int(arr.size))
        layout = cls(tuple(keys), tuple(shapes), tuple(dtypes), tuple(offsets))
        object.__setattr__(layout, "_index", {k: i for i, k in enumerate(keys)})
        return layout

    @classmethod
    def from_model(cls, model: "Module") -> "StateLayout":
        """Derive the layout from a model's current ``state_dict``."""
        return cls.from_state(model.state_dict(copy=False))

    def __post_init__(self) -> None:
        if not self._index:
            object.__setattr__(
                self, "_index", {k: i for i, k in enumerate(self.keys)}
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        """Total scalar count — the packed vector length."""
        return self.offsets[-1]

    @property
    def wire_dtype(self) -> np.dtype:
        """Narrowest dtype that round-trips every entry over transport."""
        return np.dtype(max(self.dtypes, key=lambda d: d.itemsize))

    def slice_of(self, key: str) -> slice:
        """Column range of one key in the packed buffer."""
        try:
            i = self._index[key]
        except KeyError:
            raise KeyError(f"key {key!r} not in layout") from None
        return slice(self.offsets[i], self.offsets[i + 1])

    def size_of(self, key: str) -> int:
        """Scalar count of one key."""
        s = self.slice_of(key)
        return s.stop - s.start

    def columns(self, keys: Iterable[str]) -> "slice | np.ndarray":
        """Column selector for a key subset, in the given key order.

        Returns a ``slice`` when the keys occupy one contiguous run in
        their stored order (e.g. FedClust's final-layer keys), so
        ``X[:, columns]`` is a zero-copy view; otherwise an int index
        array (NumPy fancy indexing, which copies).
        """
        slices = [self.slice_of(k) for k in keys]
        if not slices:
            raise ValueError("no keys selected")
        contiguous = all(
            a.stop == b.start for a, b in zip(slices[:-1], slices[1:])
        )
        if contiguous:
            return slice(slices[0].start, slices[-1].stop)
        return np.concatenate(
            [np.arange(s.start, s.stop, dtype=np.intp) for s in slices]
        )

    # ------------------------------------------------------------------
    # Kernels (methods mirror the module-level functions)
    # ------------------------------------------------------------------
    def pack(self, state: Mapping[str, np.ndarray], out: np.ndarray | None = None) -> np.ndarray:
        """Alias for :func:`pack_state` with this layout."""
        return pack_state(state, self, out=out)

    def unpack(self, vector: np.ndarray) -> "OrderedDict[str, np.ndarray]":
        """Alias for :func:`unpack_state` with this layout."""
        return unpack_state(vector, self)

    def load_into(self, model: "Module", vector: np.ndarray) -> None:
        """Load a packed vector into ``model`` without materialising a dict.

        Alias for :meth:`repro.nn.module.Module.load_flat`; bit-identical
        to ``model.load_state_dict(unpack_state(vector, self))``.
        """
        model.load_flat(vector, self)

    def round_trip(self, vector: np.ndarray) -> np.ndarray:
        """Round a float64 vector through each key's parameter dtype.

        Equivalent to ``pack_state(unpack_state(vector, self), self)``
        without materialising the dict: the result is what a model would
        actually hold after loading ``vector``.  Flat-plane algorithms
        that carry aggregated float64 vectors across rounds use this to
        stay bit-identical to the dict path, which rounds to the
        parameter dtype at every unpack.
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.n_params,):
            raise ValueError(
                f"vector has shape {vector.shape}, expected ({self.n_params},)"
            )
        distinct = set(self.dtypes)
        if distinct == {np.dtype(np.float64)}:
            return vector.copy()
        if len(distinct) == 1:
            return vector.astype(distinct.pop()).astype(np.float64)
        out = np.empty_like(vector)
        for lo, hi, dtype in zip(
            self.offsets[:-1], self.offsets[1:], self.dtypes
        ):
            out[lo:hi] = vector[lo:hi].astype(dtype)
        return out


def pack_state(
    state: Mapping[str, np.ndarray],
    layout: StateLayout,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pack one state dict into a contiguous float64 vector.

    The state's key sequence and per-key shapes must equal the layout's
    (invariant 4); values are cast to float64 exactly and written in C
    order.  ``out`` lets callers fill a preallocated row of a cohort
    matrix.
    """
    keys = list(state.keys())
    if keys != list(layout.keys):
        raise KeyError(
            "state keys differ from layout: "
            f"{sorted(set(keys) ^ set(layout.keys)) or 'same set, different order'}"
        )
    if out is None:
        out = np.empty(layout.n_params, dtype=np.float64)
    elif out.shape != (layout.n_params,) or out.dtype != np.float64:
        raise ValueError(
            f"out must be float64 of shape ({layout.n_params},), "
            f"got {out.dtype} {out.shape}"
        )
    for key, offset_lo, offset_hi, shape in zip(
        layout.keys, layout.offsets[:-1], layout.offsets[1:], layout.shapes
    ):
        value = np.asarray(state[key])
        # An equal-size shape mismatch (e.g. a transposed tensor) would
        # ravel into the wrong element order and scramble every kernel
        # downstream — reject it like the dict-path broadcasting did.
        if value.shape != shape:
            raise ValueError(
                f"key {key!r} has shape {value.shape}, layout expects {shape}"
            )
        out[offset_lo:offset_hi] = value.reshape(-1)
    return out


def pack_states(
    states: Sequence[Mapping[str, np.ndarray]],
    layout: StateLayout | None = None,
) -> tuple[np.ndarray, StateLayout]:
    """Pack a cohort of states into one ``(n_clients, n_params)`` matrix.

    Row ``i`` is client ``i``'s packed state.  The matrix is float64 and
    C-contiguous — the direct operand of
    :func:`repro.fl.aggregation.packed_weighted_average` and
    :func:`repro.core.weights.packed_weight_matrix`.
    """
    states = list(states)
    if not states:
        raise ValueError("need at least one state to pack")
    if layout is None:
        layout = StateLayout.from_state(states[0])
    matrix = np.empty((len(states), layout.n_params), dtype=np.float64)
    for i, state in enumerate(states):
        pack_state(state, layout, out=matrix[i])
    return matrix, layout


def unpack_state(
    vector: np.ndarray, layout: StateLayout
) -> "OrderedDict[str, np.ndarray]":
    """Unpack a vector into a fresh state dict (original shapes/dtypes).

    Exact inverse of :func:`pack_state` for vectors produced by it; for
    arbitrary float64 vectors each entry is rounded to its parameter
    dtype, exactly as the dict-path aggregation casts its float64
    accumulator back to the parameter dtype.
    """
    vector = np.asarray(vector)
    if vector.shape != (layout.n_params,):
        raise ValueError(
            f"vector has shape {vector.shape}, expected ({layout.n_params},)"
        )
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for key, lo, hi, shape, dtype in zip(
        layout.keys,
        layout.offsets[:-1],
        layout.offsets[1:],
        layout.shapes,
        layout.dtypes,
    ):
        out[key] = vector[lo:hi].reshape(shape).astype(dtype, copy=True)
    return out


class LazyStateView(Mapping):
    """A state-dict view over a packed row that unpacks on first access.

    The flat plane's answer to the "last dict hop": executors and
    trainers that hold a client's update as a packed float64 row can
    expose the mapping API without paying :func:`unpack_state` — the
    dict materialises only if a consumer actually iterates or indexes
    it (compat paths, tests), and aggregation keeps reading ``flat``
    rows directly.
    """

    __slots__ = ("_vector", "_layout", "_dict")

    def __init__(self, vector: np.ndarray, layout: StateLayout) -> None:
        self._vector = vector
        self._layout = layout
        self._dict: "OrderedDict[str, np.ndarray] | None" = None

    def _materialize(self) -> "OrderedDict[str, np.ndarray]":
        if self._dict is None:
            self._dict = unpack_state(self._vector, self._layout)
        return self._dict

    def __getitem__(self, key: str) -> np.ndarray:
        return self._materialize()[key]

    def __iter__(self):
        return iter(self._layout.keys)

    def __len__(self) -> int:
        return len(self._layout.keys)

    def __contains__(self, key: object) -> bool:
        return key in self._layout._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "materialized" if self._dict is not None else "lazy"
        return f"LazyStateView({len(self)} keys, {status})"


def unpack_keys(
    vector: np.ndarray, layout: StateLayout, keys: Sequence[str]
) -> "OrderedDict[str, np.ndarray]":
    """Unpack a *partial* vector holding only ``keys``' entries.

    ``vector`` is laid out as the concatenation of the selected keys in
    the given order — i.e. a row of ``X[:, layout.columns(keys)]``.
    Used to scatter an aggregated partial result (e.g. FedClust's
    warm-started final layer) back into dict form.
    """
    vector = np.asarray(vector)
    total = sum(layout.size_of(k) for k in keys)
    if vector.shape != (total,):
        raise ValueError(f"vector has shape {vector.shape}, expected ({total},)")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    offset = 0
    for key in keys:
        i = layout._index[key]
        size = layout.offsets[i + 1] - layout.offsets[i]
        out[key] = (
            vector[offset : offset + size]
            .reshape(layout.shapes[i])
            .astype(layout.dtypes[i], copy=True)
        )
        offset += size
    return out
