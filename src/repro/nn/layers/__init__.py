"""Layer catalogue."""

from repro.nn.layers.activation import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm1d, BatchNorm2d, GroupNorm
from repro.nn.layers.pool import AvgPool2d, MaxPool2d

__all__ = [
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Conv2d",
    "Dropout",
    "Flatten",
    "Linear",
    "BatchNorm1d",
    "BatchNorm2d",
    "GroupNorm",
    "AvgPool2d",
    "MaxPool2d",
]
