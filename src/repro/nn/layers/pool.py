"""Spatial pooling layers.

Both pools support arbitrary kernel/stride (including overlapping
windows); the backward passes scatter-add through
:func:`repro.nn.functional.col2im`, so overlaps accumulate correctly.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module

__all__ = ["MaxPool2d", "AvgPool2d"]


class _Pool2d(Module):
    """Shared plumbing: lower to columns with channels folded into batch."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")
        self._x_shape: tuple[int, int, int, int] | None = None

    def output_shape(self, h: int, w: int) -> tuple[int, int]:
        return (
            conv_output_size(h, self.kernel_size, self.stride, 0),
            conv_output_size(w, self.kernel_size, self.stride, 0),
        )

    def _lower(self, x: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
        if x.ndim != 4:
            raise ValueError(f"pooling expects (N, C, H, W), got {x.shape}")
        n, c, h, w = x.shape
        # Fold channels into the batch so every column is a single-channel
        # window: im2col on (N*C, 1, H, W) gives (N*C*OH*OW, K*K).
        cols, (out_h, out_w) = im2col(
            x.reshape(n * c, 1, h, w), self.kernel_size, self.kernel_size, self.stride, 0
        )
        self._x_shape = x.shape
        return cols, (out_h, out_w)

    def _lift(self, dcols: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None
        n, c, h, w = self._x_shape
        dx = col2im(
            dcols, (n * c, 1, h, w), self.kernel_size, self.kernel_size, self.stride, 0
        )
        self._x_shape = None
        return dx.reshape(n, c, h, w)


class MaxPool2d(_Pool2d):
    """Max pooling; gradient routes to the argmax element of each window."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__(kernel_size, stride)
        self._argmax: np.ndarray | None = None
        self._n_windows: int = 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c = x.shape[:2]
        cols, (out_h, out_w) = self._lower(x)
        self._argmax = cols.argmax(axis=1)
        self._n_windows = cols.shape[0]
        out = cols[np.arange(cols.shape[0]), self._argmax]
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None:
            raise RuntimeError("backward called before forward")
        k2 = self.kernel_size * self.kernel_size
        dcols = np.zeros((self._n_windows, k2), dtype=grad_output.dtype)
        dcols[np.arange(self._n_windows), self._argmax] = grad_output.ravel()
        self._argmax = None
        return self._lift(dcols)


class AvgPool2d(_Pool2d):
    """Average pooling; gradient spreads uniformly over each window."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c = x.shape[:2]
        cols, (out_h, out_w) = self._lower(x)
        return cols.mean(axis=1).reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        k2 = self.kernel_size * self.kernel_size
        flat = grad_output.ravel() / k2
        dcols = np.repeat(flat[:, None], k2, axis=1)
        return self._lift(dcols)
