"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init as init_fns
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W.T + b``.

    Weights are ``(out_features, in_features)``.  The final ``Linear`` of a
    classification model is the "classifier layer" whose weights FedClust
    uploads for clustering (see :mod:`repro.core.weights`).

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    rng:
        Generator used for weight init.
    bias:
        Include an additive bias (default ``True``).
    weight_init:
        One of ``"kaiming_uniform"``, ``"kaiming_normal"``,
        ``"xavier_uniform"``, ``"xavier_normal"``, ``"lecun_normal"``.
    dtype:
        Parameter dtype; ``float32`` matches the 4-byte-per-parameter
        communication model in :mod:`repro.fl.communication`.
    """

    _INITS = {
        "kaiming_uniform": init_fns.kaiming_uniform,
        "kaiming_normal": init_fns.kaiming_normal,
        "xavier_uniform": init_fns.xavier_uniform,
        "xavier_normal": init_fns.xavier_normal,
        "lecun_normal": init_fns.lecun_normal,
    }

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        weight_init: str = "kaiming_uniform",
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive, got in={in_features}, out={out_features}"
            )
        if weight_init not in self._INITS:
            raise ValueError(
                f"unknown weight_init {weight_init!r}; options: {sorted(self._INITS)}"
            )
        self.in_features = in_features
        self.out_features = out_features
        init = self._INITS[weight_init]
        self.weight = Parameter(init(rng, (out_features, in_features), dtype=dtype))
        self.has_bias = bias
        if bias:
            self.bias = Parameter(
                init_fns.uniform_bias(rng, in_features, (out_features,), dtype=dtype)
            )
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected (N, {self.in_features}), got {x.shape}"
            )
        self._input = x
        out = x @ self.weight.data.T
        if self.has_bias:
            out += self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        self.weight.accumulate_grad(grad_output.T @ x)
        if self.has_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        self._input = None
        return grad_output @ self.weight.data
