"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["ReLU", "LeakyReLU", "Tanh", "Sigmoid"]


class ReLU(Module):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = np.where(self._mask, grad_output, 0)
        self._mask = None
        return grad


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = np.where(self._mask, grad_output, self.negative_slope * grad_output)
        self._mask = None
        return grad


class Tanh(Module):
    """Hyperbolic tangent (the classic LeNet-5 non-linearity)."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        grad = grad_output * (1.0 - self._output**2)
        self._output = None
        return grad


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Stable piecewise evaluation avoids overflow in exp for large |x|.
        out = np.empty_like(x, dtype=x.dtype)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        grad = grad_output * self._output * (1.0 - self._output)
        self._output = None
        return grad
