"""2-D convolution via im2col lowering.

Large **inference** batches are processed in row tiles: the im2col
column matrix for a full fused-evaluation batch (e.g. 512 LeNet-5 rows
≈ 40 MB) blows the cache and used to make the conv forward *slower* per
row beyond ~128-row batches.  The lowering now walks sample tiles sized
to a fixed scratch budget, reusing one persistent scratch buffer across
batches (and across rounds), so the working set stays cache-resident at
any batch size.  Training always takes the exact historical path
(single materialised column matrix, cached for backward) — the serial
reference kernel's gradients are bit-for-bit unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init as init_fns
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Conv2d"]

#: Scratch budget for one im2col tile.  Sized to keep tile columns plus
#: the tile's output slab comfortably inside L2/L3 on commodity CPUs;
#: per-instance override via ``Conv2d.tile_bytes``.
_DEFAULT_TILE_BYTES = 2 * 1024 * 1024


class Conv2d(Module):
    """Cross-correlation layer over ``(N, C, H, W)`` batches.

    The forward pass lowers the input to a column matrix (one row per
    output pixel) and performs a single matmul with the flattened filter
    bank — the standard im2col strategy that keeps the hot path inside
    BLAS.  The backward pass is the exact adjoint: a matmul for the filter
    gradient and a :func:`repro.nn.functional.col2im` scatter-add for the
    input gradient.

    Parameters
    ----------
    in_channels, out_channels:
        Filter bank dimensions.
    kernel_size:
        Square kernel extent.
    rng:
        Generator for weight init.
    stride, padding:
        Standard convolution hyper-parameters (symmetric padding).
    bias:
        Add a per-channel bias (default ``True``).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        weight_init: str = "kaiming_uniform",
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError(
                "in_channels, out_channels, kernel_size, stride must be positive"
            )
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

        shape = (out_channels, in_channels, kernel_size, kernel_size)
        if weight_init == "kaiming_uniform":
            weight = init_fns.kaiming_uniform(rng, shape, dtype=dtype)
        elif weight_init == "xavier_uniform":
            weight = init_fns.xavier_uniform(rng, shape, dtype=dtype)
        elif weight_init == "lecun_normal":
            weight = init_fns.lecun_normal(rng, shape, dtype=dtype)
        else:
            raise ValueError(f"unknown weight_init {weight_init!r}")
        self.weight = Parameter(weight)
        self.has_bias = bias
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias = Parameter(
                init_fns.uniform_bias(rng, fan_in, (out_channels,), dtype=dtype)
            )
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        #: Reusable scratch buffer for one inference tile's columns.
        self._scratch: np.ndarray | None = None
        self.tile_bytes = _DEFAULT_TILE_BYTES

    def _tile_rows(self, out_h: int, out_w: int, dtype: np.dtype) -> int:
        """Samples per im2col tile under the scratch budget (min 1)."""
        per_sample = (
            out_h
            * out_w
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
            * np.dtype(dtype).itemsize
        )
        return max(1, self.tile_bytes // max(per_sample, 1))

    def _tile_cols(self, x_tile: np.ndarray) -> np.ndarray:
        """im2col of a sample tile into the persistent scratch buffer."""
        n = x_tile.shape[0]
        out_h, out_w = self.output_shape(x_tile.shape[2], x_tile.shape[3])
        rows = n * out_h * out_w
        width = self.in_channels * self.kernel_size * self.kernel_size
        if (
            self._scratch is None
            or self._scratch.shape[1] != width
            or self._scratch.shape[0] < rows
            or self._scratch.dtype != x_tile.dtype
        ):
            self._scratch = np.empty((rows, width), dtype=x_tile.dtype)
        cols = self._scratch[:rows]
        im2col(
            x_tile,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
            out=cols,
        )
        return cols

    def output_shape(self, h: int, w: int) -> tuple[int, int]:
        """Spatial output extent for an ``h × w`` input."""
        return (
            conv_output_size(h, self.kernel_size, self.stride, self.padding),
            conv_output_size(w, self.kernel_size, self.stride, self.padding),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        out_h, out_w = self.output_shape(x.shape[2], x.shape[3])
        tile = self._tile_rows(out_h, out_w, x.dtype)
        flat_w = self.weight.data.reshape(self.out_channels, -1)
        self._x_shape = x.shape
        if self.training or n <= tile:
            # Training (and anything that fits one tile) keeps the
            # historical lowering bit for bit: one materialised column
            # matrix, cached for backward.  Tiling is an inference-path
            # optimisation only — training batches are loader-sized and
            # backward reuses the cached columns.
            cols, _ = im2col(
                x, self.kernel_size, self.kernel_size, self.stride, self.padding
            )
            self._cols = cols if self.training else None
            out = cols @ flat_w.T  # (N*OH*OW, out_channels)
            if self.has_bias:
                out += self.bias.data
            return out.reshape(n, out_h, out_w, self.out_channels).transpose(
                0, 3, 1, 2
            )
        # Inference on a large fused batch: walk sample tiles through the
        # persistent scratch so the working set stays cache-resident.
        self._cols = None
        out = np.empty(
            (n, out_h, out_w, self.out_channels),
            dtype=np.result_type(x.dtype, flat_w.dtype),
        )
        for start in range(0, n, tile):
            stop = min(start + tile, n)
            cols = self._tile_cols(x[start:stop])
            part = cols @ flat_w.T
            if self.has_bias:
                part += self.bias.data
            out[start:stop] = part.reshape(
                stop - start, out_h, out_w, self.out_channels
            )
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, _, out_h, out_w = grad_output.shape
        # (N, F, OH, OW) -> (N*OH*OW, F), matching the forward column layout.
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        flat_w = self.weight.data.reshape(self.out_channels, -1)
        self.weight.accumulate_grad(
            (grad_flat.T @ self._cols).reshape(self.weight.data.shape)
        )
        if self.has_bias:
            self.bias.accumulate_grad(grad_flat.sum(axis=0))
        dcols = grad_flat @ flat_w
        dx = col2im(
            dcols,
            self._x_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )
        self._cols = None
        self._x_shape = None
        return dx
