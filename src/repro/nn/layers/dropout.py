"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: scales at train time so eval is a no-op.

    Takes an explicit generator so federated clients remain reproducible;
    each client owns its model copy and therefore its dropout stream.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:  # eval mode or p == 0: identity
            return grad_output
        grad = grad_output * self._mask
        self._mask = None
        return grad
