"""Batch normalisation.

``gamma``/``beta`` are trainable :class:`~repro.nn.parameter.Parameter`
objects and therefore participate in federated aggregation; the running
mean/variance are *local buffers* that never leave the client — the same
convention as FedBN, which avoids averaging incompatible batch statistics
across non-IID clients.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["BatchNorm1d", "BatchNorm2d", "GroupNorm"]


class _BatchNorm(Module):
    """Shared implementation; subclasses fix the reduction axes."""

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features, dtype=dtype))
        self.beta = Parameter(np.zeros(num_features, dtype=dtype))
        # Local buffers — deliberately not Parameters (see module docstring).
        self.running_mean = np.zeros(num_features, dtype=dtype)
        self.running_var = np.ones(num_features, dtype=dtype)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # Subclasses supply the axes that are reduced over and the broadcast shape.
    _axes: tuple[int, ...] = ()

    def _bshape(self) -> tuple[int, ...]:
        raise NotImplementedError

    def _check(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._check(x)
        shape = self._bshape()
        if self.training:
            mean = x.mean(axis=self._axes)
            var = x.var(axis=self._axes)  # biased, as in standard BN training
            m = self.momentum
            n = x.size // self.num_features
            unbiased = var * n / max(n - 1, 1)
            self.running_mean = (1 - m) * self.running_mean + m * mean.astype(
                self.running_mean.dtype
            )
            self.running_var = (1 - m) * self.running_var + m * unbiased.astype(
                self.running_var.dtype
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
        if self.training:
            self._cache = (x_hat, inv_std, x_hat)  # inv_std reused in backward
        else:
            self._cache = None
        return self.gamma.data.reshape(shape) * x_hat + self.beta.data.reshape(shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "BatchNorm backward requires a preceding training-mode forward"
            )
        x_hat, inv_std, _ = self._cache
        shape = self._bshape()
        self.gamma.accumulate_grad((grad_output * x_hat).sum(axis=self._axes))
        self.beta.accumulate_grad(grad_output.sum(axis=self._axes))
        # Standard batch-stat backward: project out the mean and the
        # component along x_hat before rescaling.
        g = grad_output
        mean_g = g.mean(axis=self._axes).reshape(shape)
        mean_gx = (g * x_hat).mean(axis=self._axes).reshape(shape)
        dx = (
            self.gamma.data.reshape(shape)
            * inv_std.reshape(shape)
            * (g - mean_g - x_hat * mean_gx)
        )
        self._cache = None
        return dx.astype(grad_output.dtype)


class BatchNorm1d(_BatchNorm):
    """Batch norm over ``(N, F)`` feature batches."""

    _axes = (0,)

    def _bshape(self) -> tuple[int, ...]:
        return (1, self.num_features)

    def _check(self, x: np.ndarray) -> None:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected (N, {self.num_features}), got {x.shape}"
            )


class BatchNorm2d(_BatchNorm):
    """Batch norm over ``(N, C, H, W)`` image batches (per-channel)."""

    _axes = (0, 2, 3)

    def _bshape(self) -> tuple[int, ...]:
        return (1, self.num_features, 1, 1)

    def _check(self, x: np.ndarray) -> None:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expected (N, {self.num_features}, H, W), got {x.shape}"
            )


class GroupNorm(Module):
    """Group normalisation (Wu & He, 2018) over ``(N, C, H, W)``.

    Normalises each sample's channels within ``num_groups`` groups using
    the sample's own statistics — no running buffers, no batch coupling.
    This makes it the norm of choice for federated learning: unlike
    BatchNorm there is no local statistic that diverges across non-IID
    clients, so *all* of its parameters can safely be averaged.
    """

    def __init__(
        self,
        num_groups: int,
        num_channels: int,
        eps: float = 1e-5,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__()
        if num_groups <= 0 or num_channels <= 0:
            raise ValueError("num_groups and num_channels must be positive")
        if num_channels % num_groups:
            raise ValueError(
                f"num_groups {num_groups} must divide num_channels {num_channels}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.gamma = Parameter(np.ones(num_channels, dtype=dtype))
        self.beta = Parameter(np.zeros(num_channels, dtype=dtype))
        self._cache: tuple[np.ndarray, np.ndarray, tuple[int, ...]] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"GroupNorm expected (N, {self.num_channels}, H, W), got {x.shape}"
            )
        n, c, h, w = x.shape
        grouped = x.reshape(n, self.num_groups, c // self.num_groups, h, w)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((grouped - mean) * inv_std).reshape(n, c, h, w)
        self._cache = (x_hat, inv_std, x.shape)
        return self.gamma.data.reshape(1, c, 1, 1) * x_hat + self.beta.data.reshape(
            1, c, 1, 1
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, shape = self._cache
        n, c, h, w = shape
        self.gamma.accumulate_grad((grad_output * x_hat).sum(axis=(0, 2, 3)))
        self.beta.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))
        g = (grad_output * self.gamma.data.reshape(1, c, 1, 1)).reshape(
            n, self.num_groups, c // self.num_groups, h, w
        )
        x_hat_g = x_hat.reshape(n, self.num_groups, c // self.num_groups, h, w)
        mean_g = g.mean(axis=(2, 3, 4), keepdims=True)
        mean_gx = (g * x_hat_g).mean(axis=(2, 3, 4), keepdims=True)
        dx = inv_std * (g - mean_g - x_hat_g * mean_gx)
        self._cache = None
        return dx.reshape(n, c, h, w).astype(grad_output.dtype)
