"""From-scratch NumPy deep-learning substrate.

Implements everything the FedClust reproduction needs from a deep-learning
framework: a module tree with manual backpropagation, im2col convolutions,
pooling, batch norm, dropout, losses, SGD-family optimisers (including the
FedProx proximal variant), weight initialisers, a model zoo (LeNet-5, MLP,
VGG-style nets), and state-dict arithmetic for federated aggregation.
"""

from repro.nn import batched, functional, init, state, state_flat
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GroupNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.loss import CrossEntropyLoss, Loss, MSELoss
from repro.nn.models import (
    Residual,
    available_models,
    build_model,
    cnn_small,
    final_linear_name,
    lenet5,
    minivgg,
    mlp,
    parameterized_layers,
    resnet_tiny,
    vgg16_style,
)
from repro.nn.module import Module, Sequential
from repro.nn.state_flat import (
    LazyStateView,
    StateLayout,
    pack_state,
    pack_states,
    unpack_keys,
    unpack_state,
)
from repro.nn.optim import SGD, Adam, Optimizer, ProximalSGD
from repro.nn.parameter import Parameter
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    ExponentialLR,
    Scheduler,
    StepLR,
)

__all__ = [
    "batched",
    "functional",
    "init",
    "state",
    "state_flat",
    "StateLayout",
    "LazyStateView",
    "pack_state",
    "pack_states",
    "unpack_keys",
    "unpack_state",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "LeakyReLU",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "CrossEntropyLoss",
    "Loss",
    "MSELoss",
    "available_models",
    "build_model",
    "cnn_small",
    "final_linear_name",
    "lenet5",
    "minivgg",
    "mlp",
    "parameterized_layers",
    "vgg16_style",
    "Module",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "ProximalSGD",
    "Parameter",
    "GroupNorm",
    "Residual",
    "resnet_tiny",
    "ConstantLR",
    "CosineAnnealingLR",
    "ExponentialLR",
    "Scheduler",
    "StepLR",
]
