"""Learning-rate schedules.

FL papers commonly decay the *server-side* learning rate across rounds;
these schedulers mutate an optimiser's ``lr`` in place and are stepped
once per round (or per epoch for centralised training).
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer
from repro.utils.validation import check_fraction, check_positive

__all__ = ["Scheduler", "ConstantLR", "StepLR", "CosineAnnealingLR", "ExponentialLR"]


class Scheduler:
    """Base class: track step count, expose the current learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def lr_at(self, step: int) -> float:
        """Learning rate for 0-based ``step`` (pure function of step)."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; write and return the new learning rate."""
        self.step_count += 1
        new_lr = self.lr_at(self.step_count)
        if new_lr <= 0:
            raise ValueError(f"scheduler produced non-positive lr {new_lr}")
        self.optimizer.lr = new_lr
        return new_lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class ConstantLR(Scheduler):
    """No decay (the default behaviour, made explicit)."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class StepLR(Scheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        check_positive("step_size", step_size)
        check_fraction("gamma", gamma)
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class ExponentialLR(Scheduler):
    """Multiply the rate by ``gamma`` every step."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.99) -> None:
        super().__init__(optimizer)
        check_fraction("gamma", gamma)
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma**step


class CosineAnnealingLR(Scheduler):
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 1e-5) -> None:
        super().__init__(optimizer)
        check_positive("t_max", t_max)
        if eta_min <= 0:
            raise ValueError(f"eta_min must be positive, got {eta_min}")
        self.t_max = t_max
        self.eta_min = eta_min

    def lr_at(self, step: int) -> float:
        t = min(step, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * t / self.t_max)
        )
