"""Weight initialisers.

All initialisers take an explicit :class:`numpy.random.Generator`, keeping
model construction deterministic under the library-wide RNG discipline
(see :mod:`repro.utils.rng`).  Shapes follow the convention used by the
layers: ``Linear`` weights are ``(out_features, in_features)`` and
``Conv2d`` weights are ``(out_channels, in_channels, KH, KW)``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "compute_fans",
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
    "lecun_normal",
    "zeros",
    "uniform_bias",
]


def compute_fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of ``shape``.

    For linear weights ``(out, in)`` the fans are ``(in, out)``; for conv
    weights ``(out_c, in_c, kh, kw)`` the receptive-field size multiplies
    the channel counts, matching the standard definition.
    """
    if len(shape) < 2:
        raise ValueError(f"fan computation needs >=2-D shape, got {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_uniform(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    gain: float = math.sqrt(2.0),
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """He/Kaiming uniform init — the default for ReLU networks."""
    fan_in, _ = compute_fans(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def kaiming_normal(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    gain: float = math.sqrt(2.0),
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """He/Kaiming normal init."""
    fan_in, _ = compute_fans(shape)
    std = gain / math.sqrt(fan_in)
    return (rng.standard_normal(shape) * std).astype(dtype)


def xavier_uniform(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    gain: float = 1.0,
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """Glorot/Xavier uniform init — the default for tanh networks."""
    fan_in, fan_out = compute_fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_normal(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    gain: float = 1.0,
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """Glorot/Xavier normal init."""
    fan_in, fan_out = compute_fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(dtype)


def lecun_normal(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """LeCun normal init (historically used with LeNet-style tanh nets)."""
    fan_in, _ = compute_fans(shape)
    std = math.sqrt(1.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(dtype)


def zeros(shape: tuple[int, ...], dtype: np.dtype | type = np.float32) -> np.ndarray:
    """All-zero array (the default bias init)."""
    return np.zeros(shape, dtype=dtype)


def uniform_bias(
    rng: np.random.Generator,
    fan_in: int,
    shape: tuple[int, ...],
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """Uniform bias init over ``±1/sqrt(fan_in)`` (torch's default)."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape).astype(dtype)
