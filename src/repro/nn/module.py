"""Module system: the base class every layer and model derives from.

This is a deliberately small re-implementation of the familiar
module-tree idiom: attribute assignment registers child modules and
parameters, ``forward``/``backward`` implement manual backpropagation
(each layer caches what it needs during ``forward``), and
``state_dict``/``load_state_dict`` expose named arrays — the currency of
federated aggregation in :mod:`repro.fl`.

Design notes
------------
* **Manual backprop, not autograd.**  Every layer implements an explicit
  ``backward(grad_output) -> grad_input`` that also accumulates parameter
  gradients.  For the fixed feed-forward architectures this library needs
  (LeNet-5, MLPs, VGG-style stacks), this is simpler, faster, and easier
  to verify with numerical gradient checks than a tape-based autograd.
* **Caching contract.**  ``backward`` must be called right after the
  ``forward`` whose intermediate values it consumes.  The training loop in
  :mod:`repro.fl.client` honours this; the tests enforce it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module", "Sequential"]


class Module:
    """Base class for layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            if not value.name:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for input batch ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate ``grad_output`` and accumulate parameter gradients.

        Returns the gradient with respect to this module's input.
        """
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch this module (and children) to training mode."""
        object.__setattr__(self, "training", True)
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        """Switch this module (and children) to inference mode."""
        object.__setattr__(self, "training", False)
        for child in self._modules.values():
            child.eval()
        return self

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All parameters in this subtree, depth-first, registration order."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs including self ('' name)."""
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        """Reset every parameter gradient in the subtree."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count (the unit of communication cost)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # State dicts — the currency of federated aggregation
    # ------------------------------------------------------------------
    def state_dict(self, copy: bool = True) -> "OrderedDict[str, np.ndarray]":
        """Map fully-qualified parameter names to value arrays.

        ``copy=True`` (default) snapshots the values, so the caller can
        mutate the model without aliasing the returned dict — essential for
        federated round bookkeeping (global model vs. local updates).
        """
        out: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            out[name] = param.data.copy() if copy else param.data
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load values produced by :meth:`state_dict` (strict key match)."""
        own = dict(self.named_parameters())
        missing = own.keys() - state.keys()
        unexpected = state.keys() - own.keys()
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            param.copy_(state[name])

    def load_flat(self, vector: np.ndarray, layout) -> None:
        """Load a packed parameter vector straight into the module tree.

        ``vector`` is a flat float64 buffer laid out per ``layout`` (a
        :class:`repro.nn.state_flat.StateLayout`) — e.g. one row of a
        packed cohort matrix, or the output of the aggregation GEMV.
        Equivalent to ``load_state_dict(unpack_state(vector, layout))``
        bit for bit (each slice is cast to the parameter dtype the same
        way), but never materialises the intermediate dict: values are
        copied from the buffer into the parameters directly.
        """
        vector = np.asarray(vector)
        if vector.shape != (layout.n_params,):
            raise ValueError(
                f"vector has shape {vector.shape}, expected ({layout.n_params},)"
            )
        own = dict(self.named_parameters())
        missing = own.keys() - set(layout.keys)
        unexpected = set(layout.keys) - own.keys()
        if missing or unexpected:
            raise KeyError(
                f"layout mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for key, lo, hi, shape in zip(
            layout.keys, layout.offsets[:-1], layout.offsets[1:], layout.shapes
        ):
            param = own[key]
            if param.shape != shape:
                raise ValueError(
                    f"parameter {key!r} has shape {param.shape}, "
                    f"layout expects {shape}"
                )
            param.data[...] = vector[lo:hi].reshape(shape)

    def finalize_names(self) -> "Module":
        """Stamp fully-qualified names onto every parameter.

        Called by model factories after the tree is assembled so that
        diagnostics and partial-weight selection (``repro.core.weights``)
        see names like ``"classifier.weight"`` rather than bare ``"weight"``.
        """
        for name, param in self.named_parameters():
            param.name = name
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        child_reprs = ", ".join(
            f"{name}={type(m).__name__}" for name, m in self._modules.items()
        )
        return f"{type(self).__name__}({child_reprs})"


class Sequential(Module):
    """Feed-forward chain of modules.

    Children may be given explicitly as ``(name, module)`` pairs, or
    anonymously (named by index).  ``backward`` replays the chain in
    reverse, matching the manual-backprop caching contract.
    """

    def __init__(self, *layers: Module | tuple[str, Module]) -> None:
        super().__init__()
        self._order: list[str] = []
        for index, item in enumerate(layers):
            if isinstance(item, tuple):
                name, module = item
            else:
                name, module = str(index), item
            if not isinstance(module, Module):
                raise TypeError(f"layer {name!r} is not a Module: {type(module)}")
            if name in self._modules:
                raise ValueError(f"duplicate layer name {name!r}")
            self._modules[name] = module
            object.__setattr__(self, f"_layer_{name}", module)
            self._order.append(name)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, key: int | str) -> Module:
        if isinstance(key, int):
            key = self._order[key]
        return self._modules[key]

    def layers(self) -> list[Module]:
        """The child modules in forward order."""
        return [self._modules[name] for name in self._order]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for name in self._order:
            x = self._modules[name].forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for name in reversed(self._order):
            grad_output = self._modules[name].backward(grad_output)
        return grad_output

    def train(self) -> "Sequential":
        object.__setattr__(self, "training", True)
        for name in self._order:
            self._modules[name].train()
        return self

    def eval(self) -> "Sequential":
        object.__setattr__(self, "training", False)
        for name in self._order:
            self._modules[name].eval()
        return self
