"""Optimisers.

All updates are **in place** on ``Parameter.data`` (per the HPC guides:
avoid reallocating large arrays every step).  :class:`ProximalSGD` adds
the FedProx proximal term, which is the only optimiser-level difference
between FedProx and FedAvg.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Optimizer", "SGD", "ProximalSGD", "Adam"]


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        params = list(params)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.params = params
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay, Nesterov.

    Matches the reference semantics: weight decay is added to the gradient
    before the momentum update; Nesterov applies the velocity look-ahead.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be >= 0, got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray] | None = (
            [np.zeros_like(p.data) for p in self.params] if momentum > 0 else None
        )

    def _effective_grad(self, p: Parameter) -> np.ndarray:
        if self.weight_decay:
            return p.grad + self.weight_decay * p.data
        return p.grad

    def step(self) -> None:
        if self._velocity is None:
            for p in self.params:
                p.data -= self.lr * self._effective_grad(p)
            return
        for p, v in zip(self.params, self._velocity):
            g = self._effective_grad(p)
            v *= self.momentum
            v += g
            if self.nesterov:
                p.data -= self.lr * (g + self.momentum * v)
            else:
                p.data -= self.lr * v

    def reset_state(self) -> None:
        """Zero the momentum buffers (e.g. when a client gets a new model)."""
        if self._velocity is not None:
            for v in self._velocity:
                v[...] = 0


class ProximalSGD(SGD):
    """SGD with the FedProx proximal term.

    Local objective: ``F_i(w) + (mu/2) * ||w - w_anchor||^2`` where the
    anchor is the global model received at the start of the round.  Its
    gradient contribution ``mu * (w - w_anchor)`` is added on every step.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float,
        mu: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, momentum=momentum, weight_decay=weight_decay)
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        self.mu = mu
        self._anchor: list[np.ndarray] | None = None

    def set_anchor(self, anchor: Sequence[np.ndarray]) -> None:
        """Fix the proximal anchor (one array per parameter, shape-matched)."""
        anchor = [np.asarray(a) for a in anchor]
        if len(anchor) != len(self.params):
            raise ValueError(
                f"anchor has {len(anchor)} arrays for {len(self.params)} parameters"
            )
        for a, p in zip(anchor, self.params):
            if a.shape != p.data.shape:
                raise ValueError(
                    f"anchor shape {a.shape} mismatches parameter {p.data.shape}"
                )
        self._anchor = [a.copy() for a in anchor]

    def set_anchor_from_params(self) -> None:
        """Anchor at the parameters' current values (round start)."""
        self._anchor = [p.data.copy() for p in self.params]

    def set_anchor_flat(self, vector: np.ndarray, layout) -> None:
        """Anchor at a packed state vector (the broadcast buffer).

        ``layout`` is the :class:`repro.nn.state_flat.StateLayout` of the
        model whose parameters this optimiser holds; parameter order must
        match the layout's key order (both are registration order).  Each
        anchor is the corresponding slice cast to the parameter dtype, so
        the values are exactly those :meth:`set_anchor_from_params` would
        capture after loading ``vector`` into the model — without another
        pass over per-parameter copies of the incoming dict.
        """
        vector = np.asarray(vector)
        if len(layout.keys) != len(self.params):
            raise ValueError(
                f"layout has {len(layout.keys)} entries for "
                f"{len(self.params)} parameters"
            )
        anchor = []
        for p, lo, hi, shape in zip(
            self.params, layout.offsets[:-1], layout.offsets[1:], layout.shapes
        ):
            if shape != p.data.shape:
                raise ValueError(
                    f"layout shape {shape} mismatches parameter {p.data.shape}"
                )
            anchor.append(vector[lo:hi].reshape(shape).astype(p.data.dtype))
        self._anchor = anchor

    def _effective_grad(self, p: Parameter) -> np.ndarray:
        g = super()._effective_grad(p)
        if self.mu and self._anchor is not None:
            index = self.params.index(p)
            g = g + self.mu * (p.data - self._anchor[index])
        return g

    def step(self) -> None:
        if self.mu and self._anchor is None:
            raise RuntimeError(
                "ProximalSGD.step() before set_anchor(); call it at round start"
            )
        # Avoid the O(n) index lookup of _effective_grad in the hot loop.
        if self._velocity is None:
            anchors = self._anchor or [None] * len(self.params)
            for p, a in zip(self.params, anchors):
                g = p.grad
                if self.weight_decay:
                    g = g + self.weight_decay * p.data
                if self.mu and a is not None:
                    g = g + self.mu * (p.data - a)
                p.data -= self.lr * g
            return
        anchors = self._anchor or [None] * len(self.params)
        for p, v, a in zip(self.params, self._velocity, anchors):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.mu and a is not None:
                g = g + self.mu * (p.data - a)
            v *= self.momentum
            v += g
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with optional decoupled weight decay.

    Used by the centralised-training utilities and available to FL local
    training as an alternative to SGD (momentum-free adaptive steps are
    sometimes preferred for very unbalanced local datasets).

    ``decoupled_weight_decay=True`` gives AdamW semantics (decay applied
    directly to the weights rather than folded into the gradient).
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled_weight_decay: bool = False,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled_weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay and not self.decoupled:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(g)
            m_hat = m / bias1
            v_hat = v / bias2
            if self.decoupled and self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset_state(self) -> None:
        """Zero the moment buffers and the step counter."""
        for m, v in zip(self._m, self._v):
            m[...] = 0
            v[...] = 0
        self._t = 0
