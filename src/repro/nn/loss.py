"""Loss functions with explicit backward passes.

A loss object is used like a layer: ``value = loss.forward(outputs,
targets)`` followed by ``grad = loss.backward()`` which returns the
gradient with respect to ``outputs`` (already averaged over the batch, so
the training loop feeds it straight into ``model.backward``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax

__all__ = ["Loss", "CrossEntropyLoss", "MSELoss"]


class Loss:
    """Interface: ``forward`` returns a scalar, ``backward`` the output grad."""

    def forward(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(outputs, targets)


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over logits with integer class targets.

    Fuses log-softmax and the negative log-likelihood for numerical
    stability; the backward pass is the classic ``(softmax - onehot) / N``.
    """

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        if outputs.ndim != 2:
            raise ValueError(f"logits must be (N, C), got {outputs.shape}")
        targets = np.asarray(targets)
        if targets.shape != (outputs.shape[0],):
            raise ValueError(
                f"targets must be ({outputs.shape[0]},), got {targets.shape}"
            )
        log_probs = log_softmax(outputs, axis=1)
        self._cache = (outputs, targets)
        picked = log_probs[np.arange(outputs.shape[0]), targets]
        return float(-picked.mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        outputs, targets = self._cache
        n, c = outputs.shape
        grad = softmax(outputs, axis=1)
        grad -= one_hot(targets, c, dtype=grad.dtype)
        grad /= n
        self._cache = None
        return grad.astype(outputs.dtype)


class MSELoss(Loss):
    """Mean squared error over all elements (used by regression tests)."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=outputs.dtype)
        if targets.shape != outputs.shape:
            raise ValueError(
                f"targets shape {targets.shape} must match outputs {outputs.shape}"
            )
        self._cache = (outputs, targets)
        diff = outputs - targets
        return float((diff * diff).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        outputs, targets = self._cache
        grad = 2.0 * (outputs - targets) / outputs.size
        self._cache = None
        return grad.astype(outputs.dtype)
