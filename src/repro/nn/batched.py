"""Batched cohort modules: lockstep training with a leading client axis.

A federated round broadcasts **one** model state to a cohort of clients
and runs the **same** local-SGD schedule on each — the only thing that
differs per client is the data.  The serial trainer
(:func:`repro.fl.client.local_train`) therefore repeats an identical
forward/backward/step pipeline ``n_clients`` times over tiny per-client
batches.  This module provides the vectorised alternative: every tensor
gains a leading ``(n_clients, ...)`` axis and one pipeline trains the
whole cohort in lockstep.

Two weight representations coexist behind one interface:

* **Dense** (:class:`CohortParam`) — per-client weights live as views
  into a contiguous ``(n_clients, n_params)`` working plane (the same
  layout :mod:`repro.nn.state_flat` defines), forward/backward are
  einsum/``matmul`` batches over the client axis, and the optimiser
  steps directly on the plane.  General: any schedule length, any
  layer mix supported here.
* **Factored** (:class:`FactoredParam`) — exploits that a cohort
  *starts* from one shared state: after ``t`` lockstep steps each
  client's weight is ``a·W0 + Σ_j A_j · (go_jᵀ x_j)`` — the shared
  broadcast base plus a low-rank sum of its own SGD-step outer products.
  Forward/backward then ride **one shared full-cohort GEMM** against
  ``W0`` (far better BLAS shapes than per-client slices) plus cheap
  rank-``batch`` corrections, SGD/momentum/weight-decay/proximal become
  scalar-coefficient recurrences per client, and the dense per-client
  weights are materialised **once** at round end.  Profitable while the
  accumulated rank ``steps × batch`` stays below the layer's smallest
  dimension — exactly the few-local-epochs regime of federated
  simulation.

Both representations produce the same numbers as the serial trainer up
to float summation order (gated by the parity suite in
``tests/test_fl_train_flat.py``); the serial path remains the reference
kernel.

Supported layers: :class:`~repro.nn.layers.linear.Linear`, the
elementwise activations (ReLU/LeakyReLU/Tanh/Sigmoid),
:class:`~repro.nn.layers.dropout.Dropout`,
:class:`~repro.nn.layers.flatten.Flatten`, and softmax cross-entropy.
Convolutional models are *not* batchable here — the cohort trainer
falls back to the serial path for them (see
:mod:`repro.fl.train_flat`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax
from repro.nn.layers.activation import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.linear import Linear
from repro.nn.module import Module, Sequential

__all__ = [
    "CohortParam",
    "FactoredParam",
    "BatchedLinear",
    "BatchedActivation",
    "BatchedFlatten",
    "BatchedDropout",
    "BatchedSequential",
    "BatchedCrossEntropyLoss",
    "BatchedSGD",
    "BatchedProximalSGD",
    "batchable_layers",
    "supports_batched",
    "build_batched",
]

#: Activation classes with a pure elementwise backward, keyed by type.
_ACTIVATION_TYPES = (ReLU, LeakyReLU, Tanh, Sigmoid)


# ----------------------------------------------------------------------
# Cohort parameters: dense plane views and factored shared-base weights
# ----------------------------------------------------------------------
class CohortParam:
    """Dense per-client parameter: a ``(n_clients, *shape)`` array.

    ``data`` is typically a zero-copy view into the cohort's working
    plane (a row-contiguous column slice reshaped per client), so the
    optimiser's in-place update *is* the plane update.  ``grad`` is
    filled by the owning layer's backward each lockstep step.
    """

    __slots__ = ("key", "data", "grad", "anchor")

    def __init__(self, key: str, data: np.ndarray) -> None:
        self.key = key
        self.data = data
        self.grad: np.ndarray | None = None
        #: Proximal anchor — the shared broadcast value (one client's
        #: worth; broadcasting supplies the cohort axis).
        self.anchor: np.ndarray | None = None

    @property
    def n_clients(self) -> int:
        return self.data.shape[0]

    def flush_into(self, out: np.ndarray) -> None:
        """Write final per-client values into ``out`` ``(C, size)``."""
        np.copyto(out, self.data.reshape(self.data.shape[0], -1))


class FactoredParam:
    """Factored cohort weight: ``W[c] = a[c]·W0 + Σ_j A[j][c]·(go_jᵀ x_j[c])``.

    ``base`` is the shared broadcast weight ``(out, in)``; every lockstep
    step appends one factor ``(x_j, go_j)`` — the layer input and output
    gradient, whose outer product is that step's weight gradient — and
    the optimiser updates the per-client coefficient vectors instead of
    any dense weight.  ``a`` starts at 1 and stays 1 unless weight decay
    bends the base (the scalar recurrence handles it exactly).
    """

    __slots__ = (
        "key",
        "base",
        "base_t",
        "base_coef",
        "factors_x",
        "factors_go",
        "coefs",
        "pending",
        "mu_anchor_is_base",
    )

    def __init__(self, key: str, base: np.ndarray, n_clients: int) -> None:
        self.key = key
        self.base = np.ascontiguousarray(base)
        # Pre-transposed base for the forward's single shared GEMM.
        self.base_t = np.ascontiguousarray(base.T)
        self.base_coef = np.ones(n_clients, dtype=np.float64)
        self.factors_x: list[np.ndarray] = []  # each (C, B_j, in)
        self.factors_go: list[np.ndarray] = []  # each (C, B_j, out)
        self.coefs: list[np.ndarray] = []  # each (C,) float64
        #: Set by backward; consumed by the optimiser step.
        self.pending: tuple[np.ndarray, np.ndarray] | None = None
        self.mu_anchor_is_base = True

    @property
    def n_clients(self) -> int:
        return self.base_coef.shape[0]

    @property
    def n_factors(self) -> int:
        return len(self.coefs)

    def forward_contribution(self, x: np.ndarray) -> np.ndarray:
        """``x @ W[c].T`` for the whole cohort, shared GEMM + corrections."""
        c, b, in_f = x.shape
        out = np.matmul(x.reshape(c * b, in_f), self.base_t).reshape(c, b, -1)
        if not np.all(self.base_coef == 1.0):
            out *= self.base_coef[:, None, None].astype(out.dtype)
        for x_j, go_j, coef in zip(self.factors_x, self.factors_go, self.coefs):
            if not np.any(coef):
                continue
            # (C,B,in)@(C,in,B_j) -> (C,B,B_j): rank-B_j correction.
            s = np.matmul(x, x_j.transpose(0, 2, 1))
            s *= coef[:, None, None].astype(s.dtype)
            out += np.matmul(s, go_j)
        return out

    def input_grad(self, go: np.ndarray) -> np.ndarray:
        """``go @ W[c]`` for the whole cohort, shared GEMM + corrections."""
        c, b, out_f = go.shape
        gi = np.matmul(go.reshape(c * b, out_f), self.base).reshape(c, b, -1)
        if not np.all(self.base_coef == 1.0):
            gi *= self.base_coef[:, None, None].astype(gi.dtype)
        for x_j, go_j, coef in zip(self.factors_x, self.factors_go, self.coefs):
            if not np.any(coef):
                continue
            s = np.matmul(go, go_j.transpose(0, 2, 1))
            s *= coef[:, None, None].astype(s.dtype)
            gi += np.matmul(s, x_j)
        return gi

    def append_factor(self, x: np.ndarray, go: np.ndarray) -> None:
        """Record this step's gradient factor (coefficient starts at 0)."""
        self.factors_x.append(x)
        self.factors_go.append(go)
        self.coefs.append(np.zeros(self.n_clients, dtype=np.float64))

    def materialize(self, out: np.ndarray) -> None:
        """Write dense per-client weights ``(C, out·in)`` into ``out``.

        The scaled output gradients of every step stack along the sample
        axis, so each client's accumulated delta is one
        ``(out, Σ B_j) @ (Σ B_j, in)`` GEMM — the same flops as the
        per-step weight gradients the serial trainer computed, paid once.
        Runs as a per-client loop with a single reused scratch buffer:
        the scratch stays cache-resident and no cohort-sized dense
        intermediate is ever allocated (the float64 ``out`` rows are the
        only full-cohort weight storage).
        """
        c = self.n_clients
        h, in_f = self.base.shape
        live = [j for j, coef in enumerate(self.coefs) if np.any(coef)]
        base_flat = self.base.reshape(-1)
        if not live:
            if np.all(self.base_coef == 1.0):
                out[...] = base_flat
            else:
                np.multiply(
                    self.base_coef[:, None], base_flat, out=out
                )
            return
        if len(live) == 1:
            j = live[0]
            go_cat = self.factors_go[j] * self.coefs[j][:, None, None].astype(
                self.factors_go[j].dtype
            )
            x_cat = self.factors_x[j]
        else:
            go_cat = np.concatenate(
                [
                    self.factors_go[j]
                    * self.coefs[j][:, None, None].astype(self.factors_go[j].dtype)
                    for j in live
                ],
                axis=1,
            )
            x_cat = np.concatenate([self.factors_x[j] for j in live], axis=1)
        scratch = np.empty((h, in_f), dtype=self.base.dtype)
        base_scaled = np.empty_like(base_flat)
        for i in range(c):
            np.matmul(go_cat[i].T, x_cat[i], out=scratch)
            if self.base_coef[i] == 1.0:
                np.add(scratch.reshape(-1), base_flat, out=out[i])
            else:
                np.multiply(
                    base_flat, self.base.dtype.type(self.base_coef[i]),
                    out=base_scaled,
                )
                np.add(scratch.reshape(-1), base_scaled, out=out[i])

    def release(self) -> None:
        """Drop factor storage (after :meth:`materialize`)."""
        self.factors_x.clear()
        self.factors_go.clear()
        self.coefs.clear()


# ----------------------------------------------------------------------
# Layers
# ----------------------------------------------------------------------
class BatchedLinear:
    """Cohort-batched affine map ``y[c] = x[c] @ W[c].T + b[c]``.

    ``weight`` is either a :class:`CohortParam` holding ``(C, out, in)``
    dense per-client weights or a :class:`FactoredParam`; the bias is
    always dense (``(C, out)`` is tiny).  ``needs_input_grad=False`` on
    the first parameterised layer of a chain skips the input-gradient
    GEMM entirely — the serial reference computes and discards it.
    """

    def __init__(
        self,
        weight: "CohortParam | FactoredParam",
        bias: CohortParam | None,
        needs_input_grad: bool = True,
    ) -> None:
        self.weight = weight
        self.bias = bias
        self.needs_input_grad = needs_input_grad
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        if isinstance(self.weight, FactoredParam):
            out = self.weight.forward_contribution(x)
        else:
            out = np.einsum("cbi,chi->cbh", x, self.weight.data, optimize=True)
        if self.bias is not None:
            out += self.bias.data[:, None, :]
        return out

    def backward(self, go: np.ndarray) -> np.ndarray | None:
        x = self._input
        if x is None:
            raise RuntimeError("backward called before forward")
        self._input = None
        if self.bias is not None:
            self.bias.grad = go.sum(axis=1)
        if isinstance(self.weight, FactoredParam):
            self.weight.pending = (x, go)
            if not self.needs_input_grad:
                return None
            return self.weight.input_grad(go)
        # Dense: per-client weight-gradient GEMMs.  A Python loop over
        # BLAS slices beats the 3-D matmul gufunc here (transposed first
        # operands defeat its blocking).
        c = go.shape[0]
        w = self.weight.data
        grad = self.weight.grad
        if grad is None or grad.shape != w.shape:
            grad = np.empty_like(w, subok=False)
            if not grad.flags.c_contiguous:
                grad = np.ascontiguousarray(grad)
            self.weight.grad = grad
        for i in range(c):
            np.matmul(go[i].T, x[i], out=grad[i])
        if not self.needs_input_grad:
            return None
        return np.matmul(go, w)

    def params(self) -> list:
        out = [self.weight]
        if self.bias is not None:
            out.append(self.bias)
        return out


class BatchedActivation:
    """Elementwise activation over ``(C, B, ...)`` cohort tensors."""

    def __init__(self, kind: str, negative_slope: float = 0.01) -> None:
        if kind not in ("relu", "leaky_relu", "tanh", "sigmoid"):
            raise ValueError(f"unsupported activation kind {kind!r}")
        self.kind = kind
        self.negative_slope = negative_slope
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.kind == "relu":
            mask = x > 0
            self._cache = mask
            return np.where(mask, x, 0)
        if self.kind == "leaky_relu":
            mask = x > 0
            self._cache = mask
            return np.where(mask, x, self.negative_slope * x)
        if self.kind == "tanh":
            out = np.tanh(x)
            self._cache = out
            return out
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._cache = out
        return out

    def backward(self, go: np.ndarray) -> np.ndarray:
        cache = self._cache
        if cache is None:
            raise RuntimeError("backward called before forward")
        self._cache = None
        if self.kind == "relu":
            return np.where(cache, go, 0)
        if self.kind == "leaky_relu":
            return np.where(cache, go, self.negative_slope * go)
        if self.kind == "tanh":
            return go * (1.0 - cache**2)
        return go * cache * (1.0 - cache)

    def params(self) -> list:
        return []


class BatchedFlatten:
    """``(C, B, ...) -> (C, B, prod(...))``."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, go: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        shape, self._shape = self._shape, None
        return go.reshape(shape)

    def params(self) -> list:
        return []


class BatchedDropout:
    """Inverted dropout over the cohort tensor.

    Draws one mask for the whole ``(C, B, ...)`` tensor from its own
    generator.  Per-client draws cannot reproduce the serial path's
    stream (the serial scratch model's dropout generator is shared
    across clients in execution order), so models with active dropout
    train correctly but not bit-comparably across executors — exactly
    the existing thread/process-executor caveat.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        self._mask = mask
        return x * mask

    def backward(self, go: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return go
        mask, self._mask = self._mask, None
        return go * mask

    def params(self) -> list:
        return []


class BatchedCrossEntropyLoss:
    """Softmax cross-entropy with per-row weights for ragged padding.

    ``row_weights[c, b]`` is ``1 / n_real`` for a real sample of client
    ``c``'s current batch and ``0`` for a padding row, which makes the
    per-client loss the serial batch *mean* and zeroes padded rows out
    of the gradient — a padded client's update is untouched by padding.
    """

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(
        self, logits: np.ndarray, targets: np.ndarray, row_weights: np.ndarray
    ) -> np.ndarray:
        """Per-client weighted NLL, shape ``(C,)``."""
        log_probs = log_softmax(logits, axis=2)
        picked = np.take_along_axis(log_probs, targets[:, :, None], axis=2)[:, :, 0]
        self._cache = (logits, targets, row_weights)
        return -(picked * row_weights).sum(axis=1)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        logits, targets, row_weights = self._cache
        self._cache = None
        grad = softmax(logits, axis=2)
        grad -= one_hot(
            targets.reshape(-1), logits.shape[2], dtype=grad.dtype
        ).reshape(grad.shape)
        grad *= row_weights[:, :, None]
        return grad.astype(logits.dtype, copy=False)


class BatchedSequential:
    """Lockstep mirror of a :class:`~repro.nn.module.Sequential` chain.

    Built by :func:`build_batched`; ``forward``/``backward`` mirror the
    serial chain with the extra client axis, and ``backward`` stops at
    the first parameterised layer (nothing upstream consumes the input
    gradient).
    """

    def __init__(self, layers: Sequence, first_param_index: int) -> None:
        self.layers = list(layers)
        self.first_param_index = first_param_index

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, go: np.ndarray) -> None:
        for index in range(len(self.layers) - 1, self.first_param_index - 1, -1):
            go = self.layers[index].backward(go)

    def params(self) -> list:
        out = []
        for layer in self.layers:
            out.extend(layer.params())
        return out


# ----------------------------------------------------------------------
# Optimisers
# ----------------------------------------------------------------------
class BatchedSGD:
    """Cohort SGD stepping on dense planes and factored coefficients.

    Matches :class:`repro.nn.optim.SGD` semantics per client (weight
    decay folded into the gradient before the momentum update), with a
    per-step ``active`` mask so clients whose local schedule has no
    batch at this lockstep position are untouched — their velocity does
    not decay and their weights do not move, exactly as if the step
    never happened (which, for them, it didn't).
    """

    #: Proximal coefficient; 0 for plain SGD.
    mu: float = 0.0

    def __init__(
        self,
        params: Sequence,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if momentum < 0 or weight_decay < 0:
            raise ValueError("momentum and weight_decay must be >= 0")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}
        # Factored velocity state: base coefficient + per-factor coefs.
        self._f_base: dict[int, np.ndarray] = {}
        self._f_coefs: dict[int, list[np.ndarray]] = {}

    # -- dense -----------------------------------------------------------
    def _step_dense(self, p: CohortParam, rows) -> None:
        g = p.grad
        if g is None:
            raise RuntimeError(f"no gradient for {p.key!r}")
        data = p.data
        if rows is not None:
            # Step-budget / ragged-tail masks: restrict every term to the
            # active rows up front.  Under per-client compute budgets most
            # of a cohort can be frozen for most of the schedule, and the
            # full-plane weight-decay/proximal arithmetic would dominate
            # the step; the selected-row ops are elementwise-identical.
            g = g[rows]
            sel = data[rows]
            if self.weight_decay:
                g = g + self.weight_decay * sel
            if self.mu and p.anchor is not None:
                g = g + self.mu * (sel - p.anchor)
            if self.momentum > 0:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(data, subok=False)
                    self._velocity[id(p)] = v
                v[rows] = self.momentum * v[rows] + g
                data[rows] -= self.lr * v[rows]
            else:
                data[rows] = sel - self.lr * g
            return
        if self.weight_decay:
            g = g + self.weight_decay * data
        if self.mu and p.anchor is not None:
            g = g + self.mu * (data - p.anchor)
        if self.momentum > 0:
            v = self._velocity.get(id(p))
            if v is None:
                v = np.zeros_like(data, subok=False)
                self._velocity[id(p)] = v
            v *= self.momentum
            v += g
            data -= self.lr * v
        else:
            data -= self.lr * g

    # -- factored --------------------------------------------------------
    def _step_factored(self, p: FactoredParam, rows) -> None:
        if p.pending is None:
            raise RuntimeError(f"no pending factor for {p.key!r}")
        x, go = p.pending
        p.pending = None
        p.append_factor(x, go)
        m, wd, mu, lr = self.momentum, self.weight_decay, self.mu, self.lr
        vb = self._f_base.get(id(p))
        if vb is None:
            vb = np.zeros_like(p.base_coef)
            self._f_base[id(p)] = vb
        vcs = self._f_coefs.setdefault(id(p), [])
        while len(vcs) < p.n_factors:
            vcs.append(np.zeros_like(p.base_coef))
        a = p.base_coef
        sel = slice(None) if rows is None else rows
        # Velocity coefficients: v = m·v + g_eff where
        # g_eff = F_t + wd·W + mu·(W − W0); W = a·W0 + Σ A_j F_j.
        vb[sel] = m * vb[sel] + wd * a[sel] + mu * (a[sel] - 1.0)
        couple = wd + mu
        for j in range(p.n_factors - 1):
            vcs[j][sel] = m * vcs[j][sel] + couple * p.coefs[j][sel]
        vcs[-1][sel] = 1.0  # the new factor enters with gradient coefficient 1
        # Parameter coefficients: W ← W − lr·v.
        a[sel] -= lr * vb[sel]
        for j in range(p.n_factors):
            p.coefs[j][sel] -= lr * vcs[j][sel]

    def step(self, active: np.ndarray | None = None) -> None:
        """Apply one lockstep SGD step to the clients in ``active``."""
        rows = None
        if active is not None and not bool(np.all(active)):
            rows = np.flatnonzero(active)
            if rows.size == 0:
                for p in self.params:
                    if isinstance(p, FactoredParam) and p.pending is not None:
                        x, go = p.pending
                        p.pending = None
                        p.append_factor(x, go)
                return
        for p in self.params:
            if isinstance(p, FactoredParam):
                self._step_factored(p, rows)
            else:
                self._step_dense(p, rows)


class BatchedProximalSGD(BatchedSGD):
    """Cohort FedProx step: adds ``mu·(w − w_broadcast)`` per client.

    The anchor is the shared broadcast state the cohort started from —
    for factored weights that is the base itself (the ``mu·(a−1)`` term
    of the coefficient recurrence), for dense params the initial value
    recorded at build time.  Values match
    :meth:`repro.nn.optim.ProximalSGD.set_anchor_flat` exactly.
    """

    def __init__(
        self,
        params: Sequence,
        lr: float,
        mu: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, momentum=momentum, weight_decay=weight_decay)
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        self.mu = mu


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def batchable_layers(model: Module) -> "list[tuple[str, Module]] | None":
    """The model's layer list if every layer has a batched mirror.

    Returns ``None`` when any layer lacks one (convolutions, pooling,
    norms) — the caller should fall back to the serial trainer.
    """
    if not isinstance(model, Sequential):
        return None
    layers = []
    for name in model._order:
        child = model._modules[name]
        if isinstance(
            child, (Linear, Flatten, Dropout) + _ACTIVATION_TYPES
        ):
            layers.append((name, child))
        else:
            return None
    return layers


def supports_batched(model: Module) -> bool:
    """True when the cohort trainer can batch this architecture.

    Requires every layer to have a batched mirror *and* a uniform
    parameter dtype (the cohort plane is one array); anything else
    routes to the serial reference kernel.
    """
    if batchable_layers(model) is None:
        return False
    dtypes = {p.data.dtype for p in model.parameters()}
    return len(dtypes) == 1


def build_batched(
    model: Sequential,
    layout,
    n_clients: int,
    broadcast: np.ndarray,
    factored_keys: "set[str] | frozenset[str]" = frozenset(),
    plane: np.ndarray | None = None,
    dropout_rng: np.random.Generator | None = None,
) -> tuple[BatchedSequential, np.ndarray]:
    """Build the lockstep mirror of ``model`` for one cohort.

    ``broadcast`` is the packed float64 state every client starts from
    (one row, on ``layout``).  Weight keys named in ``factored_keys``
    get the shared-base factored representation; all other parameters
    are materialised as views into a ``(n_clients, n_params)`` working
    plane at the model's parameter dtype (allocated here unless the
    caller passes one to reuse).  Returns ``(batched_model, plane)``.

    Dense plane slices belonging to factored keys stay uninitialised —
    they are only written by :func:`flush_cohort` at round end.
    """
    named = batchable_layers(model)
    if named is None:
        raise ValueError(
            f"model {getattr(model, 'arch', type(model).__name__)!r} has no "
            "batched mirror; use the serial trainer"
        )
    dtypes = {np.dtype(d) for d in layout.dtypes}
    if len(dtypes) != 1:
        raise ValueError(
            f"batched cohorts need a uniform parameter dtype, got {sorted(map(str, dtypes))}"
        )
    dtype = dtypes.pop()
    if plane is None:
        plane = np.empty((n_clients, layout.n_params), dtype=dtype)
    elif plane.shape != (n_clients, layout.n_params) or plane.dtype != dtype:
        raise ValueError(
            f"plane must be {dtype} of shape ({n_clients}, {layout.n_params}), "
            f"got {plane.dtype} {plane.shape}"
        )

    def view(key: str) -> np.ndarray:
        sl = layout.slice_of(key)
        shape = layout.shapes[layout._index[key]]
        return plane[:, sl].reshape((n_clients,) + shape)

    def dense_param(key: str) -> CohortParam:
        data = view(key)
        sl = layout.slice_of(key)
        data[...] = broadcast[sl].reshape(
            layout.shapes[layout._index[key]]
        ).astype(dtype)
        param = CohortParam(key, data)
        param.anchor = broadcast[sl].reshape(
            layout.shapes[layout._index[key]]
        ).astype(dtype)
        return param

    layers: list = []
    first_param_index: int | None = None
    for index, (name, child) in enumerate(named):
        if isinstance(child, Linear):
            wkey = f"{name}.weight"
            if wkey in factored_keys:
                sl = layout.slice_of(wkey)
                base = (
                    broadcast[sl]
                    .reshape(layout.shapes[layout._index[wkey]])
                    .astype(dtype)
                )
                weight: CohortParam | FactoredParam = FactoredParam(
                    wkey, base, n_clients
                )
            else:
                weight = dense_param(wkey)
            bias = dense_param(f"{name}.bias") if child.has_bias else None
            if first_param_index is None:
                first_param_index = index
                needs_input_grad = False
            else:
                needs_input_grad = True
            layers.append(BatchedLinear(weight, bias, needs_input_grad))
        elif isinstance(child, ReLU):
            layers.append(BatchedActivation("relu"))
        elif isinstance(child, LeakyReLU):
            layers.append(BatchedActivation("leaky_relu", child.negative_slope))
        elif isinstance(child, Tanh):
            layers.append(BatchedActivation("tanh"))
        elif isinstance(child, Sigmoid):
            layers.append(BatchedActivation("sigmoid"))
        elif isinstance(child, Dropout):
            if dropout_rng is None:
                # Never draw from the template layer's generator — the
                # template is the environment's shared scratch model.
                raise ValueError(
                    "model has dropout; the cohort trainer must supply "
                    "dropout_rng"
                )
            layers.append(BatchedDropout(child.p, dropout_rng))
        elif isinstance(child, Flatten):
            layers.append(BatchedFlatten())
        else:  # pragma: no cover - batchable_layers already filtered
            raise AssertionError(f"unhandled layer {type(child).__name__}")
    if first_param_index is None:
        raise ValueError("model has no parameterised layer")
    return BatchedSequential(layers, first_param_index), plane


def flush_cohort(
    batched: BatchedSequential,
    layout,
    out: np.ndarray,
) -> None:
    """Write every client's final state into ``out`` ``(C, n_params)`` float64.

    Dense params copy their plane views (one cast); factored weights
    materialise ``a·W0 + Σ A_j·(go_jᵀ x_j)`` directly into their column
    slice — the deferred equivalent of every per-step weight update the
    serial trainer applied, and the only time the cohort's dense
    per-client weights exist at all.
    """
    for p in batched.params():
        sl = layout.slice_of(p.key)
        target = out[:, sl]
        if isinstance(p, FactoredParam):
            p.materialize(target)
            p.release()
        else:
            p.flush_into(target)
