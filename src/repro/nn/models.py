"""Model zoo.

All models are built as named :class:`~repro.nn.module.Sequential` chains
so that

* manual backprop is a mechanical reverse traversal,
* parameter names are stable and human-readable
  (``"conv1.weight"``, ``"classifier.bias"``, ...), and
* the *weighted-layer index* used by the paper's Fig. 1 ("Layer 1 (CL)",
  "Layer 16 (FL)") can be resolved generically — see
  :func:`parameterized_layers`.

The paper evaluates LeNet-5 (Table I) and motivates the method with
VGG-16 (Fig. 1).  :func:`vgg16_style` reproduces VGG-16's *layout* —
13 convolutions + 3 fully-connected layers = 16 weighted layers — at a
configurable width so the probe runs in seconds on a CPU.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.functional import conv_output_size
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Tanh,
)
from repro.nn.module import Module, Sequential

__all__ = [
    "lenet5",
    "mlp",
    "cnn_small",
    "minivgg",
    "vgg16_style",
    "build_model",
    "available_models",
    "parameterized_layers",
    "final_linear_name",
]

_ACTIVATIONS: dict[str, Callable[[], Module]] = {"relu": ReLU, "tanh": Tanh}


def _activation(name: str) -> Module:
    if name not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {name!r}; options: {sorted(_ACTIVATIONS)}")
    return _ACTIVATIONS[name]()


def _check_input_shape(input_shape: Sequence[int]) -> tuple[int, int, int]:
    shape = tuple(int(s) for s in input_shape)
    if len(shape) != 3 or min(shape) <= 0:
        raise ValueError(f"input_shape must be (C, H, W) positive, got {input_shape}")
    return shape  # type: ignore[return-value]


def _stamp(model: Sequential, arch: str, input_shape: tuple[int, int, int], n_classes: int) -> Sequential:
    model.arch = arch  # type: ignore[attr-defined]
    model.input_shape = input_shape  # type: ignore[attr-defined]
    model.n_classes = n_classes  # type: ignore[attr-defined]
    model.finalize_names()
    return model


def lenet5(
    input_shape: Sequence[int],
    n_classes: int,
    rng: np.random.Generator,
    activation: str = "relu",
    pool: str = "max",
    dtype: np.dtype | type = np.float32,
) -> Sequential:
    """LeNet-5 (LeCun et al. 1989), the Table I model.

    conv(6,5×5) → pool2 → conv(16,5×5) → pool2 → fc120 → fc84 → classifier.
    28×28 inputs get padding 2 on the first convolution (the classic
    MNIST adaptation); 32×32 inputs need none.
    """
    c, h, w = _check_input_shape(input_shape)
    pool_cls = {"max": MaxPool2d, "avg": AvgPool2d}.get(pool)
    if pool_cls is None:
        raise ValueError(f"pool must be 'max' or 'avg', got {pool!r}")
    pad1 = 2 if h < 32 else 0
    h1 = conv_output_size(h, 5, 1, pad1) // 2
    w1 = conv_output_size(w, 5, 1, pad1) // 2
    h2 = conv_output_size(h1, 5, 1, 0) // 2
    w2 = conv_output_size(w1, 5, 1, 0) // 2
    flat = 16 * h2 * w2
    layers: list[tuple[str, Module]] = [
        ("conv1", Conv2d(c, 6, 5, rng, padding=pad1, dtype=dtype)),
        ("act1", _activation(activation)),
        ("pool1", pool_cls(2)),
        ("conv2", Conv2d(6, 16, 5, rng, dtype=dtype)),
        ("act2", _activation(activation)),
        ("pool2", pool_cls(2)),
        ("flatten", Flatten()),
        ("fc1", Linear(flat, 120, rng, dtype=dtype)),
        ("act3", _activation(activation)),
        ("fc2", Linear(120, 84, rng, dtype=dtype)),
        ("act4", _activation(activation)),
        ("classifier", Linear(84, n_classes, rng, dtype=dtype)),
    ]
    return _stamp(Sequential(*layers), "lenet5", (c, h, w), n_classes)


def mlp(
    input_shape: Sequence[int],
    n_classes: int,
    rng: np.random.Generator,
    hidden: Sequence[int] = (128, 64),
    activation: str = "relu",
    dtype: np.dtype | type = np.float32,
) -> Sequential:
    """Flatten → stack of Linear+activation → classifier."""
    c, h, w = _check_input_shape(input_shape)
    dims = [c * h * w, *hidden]
    layers: list[tuple[str, Module]] = [("flatten", Flatten())]
    for i in range(len(dims) - 1):
        layers.append((f"fc{i + 1}", Linear(dims[i], dims[i + 1], rng, dtype=dtype)))
        layers.append((f"act{i + 1}", _activation(activation)))
    layers.append(("classifier", Linear(dims[-1], n_classes, rng, dtype=dtype)))
    return _stamp(Sequential(*layers), "mlp", (c, h, w), n_classes)


def cnn_small(
    input_shape: Sequence[int],
    n_classes: int,
    rng: np.random.Generator,
    width: int = 8,
    fc_dim: int = 32,
    dtype: np.dtype | type = np.float32,
) -> Sequential:
    """Two-conv CNN sized for fast bench-scale federated runs."""
    c, h, w = _check_input_shape(input_shape)
    h1 = conv_output_size(h, 3, 1, 1) // 2
    w1 = conv_output_size(w, 3, 1, 1) // 2
    h2 = conv_output_size(h1, 3, 1, 1) // 2
    w2 = conv_output_size(w1, 3, 1, 1) // 2
    flat = 2 * width * h2 * w2
    layers: list[tuple[str, Module]] = [
        ("conv1", Conv2d(c, width, 3, rng, padding=1, dtype=dtype)),
        ("act1", ReLU()),
        ("pool1", MaxPool2d(2)),
        ("conv2", Conv2d(width, 2 * width, 3, rng, padding=1, dtype=dtype)),
        ("act2", ReLU()),
        ("pool2", MaxPool2d(2)),
        ("flatten", Flatten()),
        ("fc1", Linear(flat, fc_dim, rng, dtype=dtype)),
        ("act3", ReLU()),
        ("classifier", Linear(fc_dim, n_classes, rng, dtype=dtype)),
    ]
    return _stamp(Sequential(*layers), "cnn_small", (c, h, w), n_classes)


def minivgg(
    input_shape: Sequence[int],
    n_classes: int,
    rng: np.random.Generator,
    stage_widths: Sequence[Sequence[int]] = ((8, 8), (16, 16), (32, 32)),
    fc_dims: Sequence[int] = (64,),
    dtype: np.dtype | type = np.float32,
) -> Sequential:
    """VGG-style stack: per stage, (conv3×3-pad1 → ReLU)×k then maxpool2."""
    c, h, w = _check_input_shape(input_shape)
    layers: list[tuple[str, Module]] = []
    in_ch = c
    conv_idx = 0
    for stage, widths in enumerate(stage_widths, start=1):
        for width in widths:
            conv_idx += 1
            layers.append(
                (f"conv{conv_idx}", Conv2d(in_ch, width, 3, rng, padding=1, dtype=dtype))
            )
            layers.append((f"act_c{conv_idx}", ReLU()))
            in_ch = width
        layers.append((f"pool{stage}", MaxPool2d(2)))
        h, w = h // 2, w // 2
        if h == 0 or w == 0:
            raise ValueError(
                f"input {input_shape} too small for {len(stage_widths)} pooling stages"
            )
    layers.append(("flatten", Flatten()))
    dims = [in_ch * h * w, *fc_dims]
    for i in range(len(dims) - 1):
        layers.append((f"fc{i + 1}", Linear(dims[i], dims[i + 1], rng, dtype=dtype)))
        layers.append((f"act_f{i + 1}", ReLU()))
    layers.append(("classifier", Linear(dims[-1], n_classes, rng, dtype=dtype)))
    return _stamp(Sequential(*layers), "minivgg", _check_input_shape(input_shape), n_classes)


def vgg16_style(
    input_shape: Sequence[int],
    n_classes: int,
    rng: np.random.Generator,
    base_width: int = 4,
    fc_width: int = 32,
    dtype: np.dtype | type = np.float32,
) -> Sequential:
    """VGG-16's exact weighted-layer layout at reduced width.

    13 convolutions in stages (2, 2, 3, 3, 3) + 3 fully-connected layers
    = 16 weighted layers, so the paper's Fig. 1 references — Layer 1 (CL),
    Layer 7 (CL), Layer 14 (FL), Layer 16 (FL) — map one-to-one onto
    :func:`parameterized_layers` indices.  ``base_width=4`` scales channel
    counts by 1/16 relative to the real VGG-16 (64 → 4), which preserves
    the depth structure the motivation experiment probes while keeping a
    CPU run in the seconds range.

    Requires spatial input ≥ 32×32 (five pooling halvings).
    """
    c, h, w = _check_input_shape(input_shape)
    if h < 32 or w < 32:
        raise ValueError(f"vgg16_style needs >=32x32 input, got {h}x{w}")
    widths = (
        (base_width, base_width),
        (2 * base_width,) * 2,
        (4 * base_width,) * 3,
        (8 * base_width,) * 3,
        (8 * base_width,) * 3,
    )
    model = minivgg(
        input_shape,
        n_classes,
        rng,
        stage_widths=widths,
        fc_dims=(fc_width, fc_width),
        dtype=dtype,
    )
    model.arch = "vgg16_style"  # type: ignore[attr-defined]
    return model


_REGISTRY: dict[str, Callable[..., Sequential]] = {
    "lenet5": lenet5,
    "mlp": mlp,
    "cnn_small": cnn_small,
    "minivgg": minivgg,
    "vgg16_style": vgg16_style,
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_REGISTRY)


def build_model(
    name: str,
    input_shape: Sequence[int],
    n_classes: int,
    rng: np.random.Generator,
    **kwargs: object,
) -> Sequential:
    """Instantiate a registered architecture by name."""
    if name not in _REGISTRY:
        raise ValueError(f"unknown model {name!r}; options: {available_models()}")
    return _REGISTRY[name](input_shape, n_classes, rng, **kwargs)


def parameterized_layers(model: Module) -> list[tuple[str, Module]]:
    """The weighted layers of ``model`` in forward order.

    Returns ``(qualified_name, module)`` for every module that directly
    owns at least one parameter (convolutions and linears; activations,
    pools and reshapes are skipped).  Index ``i`` in this list is the
    paper's "Layer i+1".
    """
    out = []
    for name, module in model.named_modules():
        if module._parameters:
            out.append((name, module))
    return out


def final_linear_name(model: Module) -> str:
    """Qualified name of the last Linear layer — the classifier.

    This is the layer whose weights FedClust uploads (the paper's
    "strategically selected partial model weights").
    """
    last: str | None = None
    for name, module in model.named_modules():
        if isinstance(module, Linear):
            last = name
    if last is None:
        raise ValueError("model contains no Linear layer")
    return last


class Residual(Module):
    """Residual wrapper: ``y = body(x) + x``.

    The body must preserve the input shape.  Backward sums the gradient
    flowing through the body with the identity shortcut — the one place in
    the model zoo where backprop is genuinely non-sequential, so it gets
    its own gradient-checked module.
    """

    def __init__(self, body: Module) -> None:
        super().__init__()
        self.body = body

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.body.forward(x)
        if out.shape != x.shape:
            raise ValueError(
                f"residual body changed shape {x.shape} -> {out.shape}"
            )
        return out + x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.body.backward(grad_output) + grad_output

    def train(self) -> "Residual":
        object.__setattr__(self, "training", True)
        self.body.train()
        return self

    def eval(self) -> "Residual":
        object.__setattr__(self, "training", False)
        self.body.eval()
        return self


def resnet_tiny(
    input_shape: Sequence[int],
    n_classes: int,
    rng: np.random.Generator,
    width: int = 8,
    n_blocks: int = 2,
    groups: int = 2,
    dtype: np.dtype | type = np.float32,
) -> Sequential:
    """A small residual CNN with GroupNorm (the FL-friendly norm).

    stem conv → ``n_blocks`` × [Residual(GN → ReLU → conv3×3)] → pool →
    classifier.  Provided as an extension beyond the paper's LeNet-5 to
    exercise skip connections and GroupNorm under federated aggregation.
    """
    from repro.nn.layers.norm import GroupNorm

    c, h, w = _check_input_shape(input_shape)
    if width % groups:
        raise ValueError(f"groups {groups} must divide width {width}")
    layers: list[tuple[str, Module]] = [
        ("stem", Conv2d(c, width, 3, rng, padding=1, dtype=dtype)),
        ("stem_act", ReLU()),
    ]
    for i in range(n_blocks):
        body = Sequential(
            ("norm", GroupNorm(groups, width, dtype=dtype)),
            ("act", ReLU()),
            ("conv", Conv2d(width, width, 3, rng, padding=1, dtype=dtype)),
        )
        layers.append((f"block{i + 1}", Residual(body)))
    layers.append(("pool", MaxPool2d(2)))
    h2, w2 = h // 2, w // 2
    layers.append(("flatten", Flatten()))
    layers.append(("classifier", Linear(width * h2 * w2, n_classes, rng, dtype=dtype)))
    return _stamp(Sequential(*layers), "resnet_tiny", (c, h, w), n_classes)


_REGISTRY["resnet_tiny"] = resnet_tiny
__all__.append("resnet_tiny")
__all__.append("Residual")
