"""Trainable parameter container.

A :class:`Parameter` pairs a value array with a same-shaped gradient
accumulator.  Layers create them at construction time; optimisers update
``data`` in place; ``backward`` passes accumulate into ``grad``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Parameters
    ----------
    data:
        Initial value.  Stored as-is (no copy) so initialisers can build
        the array with the desired dtype and the layer keeps a live view.
    name:
        Optional human-readable label; the owning module overwrites it with
        the fully-qualified name (e.g. ``"features.0.weight"``) when the
        module tree is assembled.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def zero_grad(self) -> None:
        """Reset the gradient accumulator in place (no reallocation)."""
        self.grad[...] = 0

    def accumulate_grad(self, delta: np.ndarray) -> None:
        """Add ``delta`` into the gradient accumulator.

        Raises if shapes mismatch — a mismatch always indicates a backward
        bug, and silent broadcasting would corrupt training.
        """
        if delta.shape != self.grad.shape:
            raise ValueError(
                f"gradient shape {delta.shape} does not match parameter "
                f"{self.name or '<unnamed>'} shape {self.grad.shape}"
            )
        self.grad += delta

    def copy_(self, values: np.ndarray) -> None:
        """In-place overwrite of ``data`` (used when loading state dicts)."""
        values = np.asarray(values, dtype=self.data.dtype)
        if values.shape != self.data.shape:
            raise ValueError(
                f"cannot load values of shape {values.shape} into parameter "
                f"{self.name or '<unnamed>'} of shape {self.data.shape}"
            )
        self.data[...] = values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape}, dtype={self.data.dtype})"
