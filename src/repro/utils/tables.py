"""ASCII table rendering for paper-style result tables.

The benchmark harness regenerates the paper's Table I and the ablation
tables as monospace text; this module owns the formatting so every bench
prints consistently and tests can assert on structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["Table", "format_mean_std", "render_matrix"]


def format_mean_std(mean: float, std: float, digits: int = 2) -> str:
    """Render ``mean ± std`` the way the paper's Table I does."""
    return f"{mean:.{digits}f} ± {std:.{digits}f}"


@dataclass
class Table:
    """A simple column-aligned table.

    >>> t = Table(title="demo", columns=["Method", "Acc"])
    >>> t.add_row(["FedAvg", "38.25 ± 2.98"])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, cells: Iterable[object]) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

        rule = "  ".join("-" * w for w in widths)
        lines = [self.title, rule, fmt(list(self.columns)), rule]
        lines.extend(fmt(row) for row in self.rows)
        lines.append(rule)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        head = "| " + " | ".join(self.columns) + " |"
        sep = "|" + "|".join("---" for _ in self.columns) + "|"
        body = ["| " + " | ".join(row) + " |" for row in self.rows]
        return "\n".join([head, sep, *body])


def render_matrix(
    matrix, row_labels: Sequence[str] | None = None, digits: int = 2, shade: bool = False
) -> str:
    """Render a small 2-D array as aligned text.

    With ``shade=True`` the cells are rendered as block characters keyed to
    magnitude (dark = small distance), approximating the heat maps of the
    paper's Fig. 1 in a terminal.
    """
    import numpy as np

    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {m.shape}")
    n_rows, n_cols = m.shape
    labels = list(row_labels) if row_labels is not None else [str(i) for i in range(n_rows)]
    if len(labels) != n_rows:
        raise ValueError("row_labels length mismatch")

    if shade:
        # Light shade = similar (small distance), matching the paper's colormap.
        glyphs = "█▓▒░ "
        lo, hi = float(m.min()), float(m.max())
        span = (hi - lo) or 1.0
        cells = [
            [glyphs[min(int((v - lo) / span * (len(glyphs) - 1)), len(glyphs) - 1)] * 2
             for v in row]
            for row in m
        ]
        width = 2
    else:
        cells = [[f"{v:.{digits}f}" for v in row] for row in m]
        width = max(len(c) for row in cells for c in row)

    label_w = max(len(s) for s in labels)
    lines = []
    for label, row in zip(labels, cells):
        lines.append(label.rjust(label_w) + " | " + " ".join(c.rjust(width) for c in row))
    return "\n".join(lines)
