"""Minimal run logger.

The simulator and experiment drivers emit progress through this module so
that library users can silence, redirect, or capture output without the
library ever printing unconditionally.  It is a thin veneer over the stdlib
``logging`` package with a library-wide namespace and an opt-in console
handler (libraries must not install handlers on import).
"""

from __future__ import annotations

import logging
import sys
import time
from typing import Callable

__all__ = ["get_logger", "enable_console_logging", "RoundLogger"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the library logger, optionally namespaced by ``name``."""
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the library logger (idempotent).

    Examples and benchmark harnesses call this; the library itself never
    does, so embedding applications stay in control of log routing.
    """
    logger = get_logger()
    logger.setLevel(level)
    has_console = any(
        isinstance(h, logging.StreamHandler) and getattr(h, "_repro_console", False)
        for h in logger.handlers
    )
    if not has_console:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(asctime)s %(name)s] %(message)s", "%H:%M:%S")
        )
        handler._repro_console = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    return logger


class RoundLogger:
    """Throttled per-round progress reporter for long simulations.

    Emits at most one log line every ``min_interval`` seconds (plus the
    final round), so a 500-round simulation does not flood the console
    while short runs still show every round.
    """

    def __init__(
        self,
        total_rounds: int,
        min_interval: float = 2.0,
        emit: Callable[[str], None] | None = None,
    ) -> None:
        self.total_rounds = total_rounds
        self.min_interval = min_interval
        self._emit = emit if emit is not None else get_logger("fl").info
        # None until the first emit: the first call must always log.  (The
        # old sentinel of 0.0 compared against time.monotonic(), whose
        # origin is arbitrary, so whether round 1 appeared depended on
        # system uptime.)
        self._last_emit: float | None = None

    def log(self, round_index: int, message: str) -> None:
        """Log ``message`` for 1-based ``round_index`` if not throttled."""
        now = time.monotonic()
        is_last = round_index >= self.total_rounds
        is_first = self._last_emit is None
        if is_first or is_last or now - self._last_emit >= self.min_interval:
            self._emit(f"round {round_index}/{self.total_rounds} {message}")
            self._last_emit = now
