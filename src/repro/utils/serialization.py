"""Result persistence.

Experiments persist their outputs as a JSON document (configuration +
scalar metrics) next to an optional ``.npz`` holding arrays (learning
curves, distance matrices).  Keeping the two formats separate makes the
JSON diff-able and the arrays loss-less.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = ["to_jsonable", "save_json", "load_json", "save_arrays", "load_arrays"]


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and dataclass-likes to JSON types."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "__dataclass_fields__"):
        return {
            name: to_jsonable(getattr(value, name))
            for name in value.__dataclass_fields__
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Path):
        return str(value)
    raise TypeError(f"cannot serialise {type(value).__name__} to JSON")


def save_json(path: str | os.PathLike[str], payload: Any, indent: int = 2) -> Path:
    """Serialise ``payload`` to JSON at ``path`` (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_jsonable(payload), indent=indent) + "\n")
    return target


def load_json(path: str | os.PathLike[str]) -> Any:
    """Load a JSON document saved by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def save_arrays(path: str | os.PathLike[str], **arrays: np.ndarray) -> Path:
    """Save named arrays to a compressed ``.npz`` at ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(target, **arrays)
    return target


def load_arrays(path: str | os.PathLike[str]) -> dict[str, np.ndarray]:
    """Load the arrays saved by :func:`save_arrays` as a plain dict."""
    with np.load(Path(path)) as data:
        return {name: data[name] for name in data.files}
