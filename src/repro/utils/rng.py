"""Seeded random-number-generator utilities.

Every stochastic component in the library (data generation, partitioning,
client sampling, weight initialisation, minibatch shuffling) draws from a
:class:`numpy.random.Generator` that is derived deterministically from a
single experiment seed.  This module centralises that derivation so that

* the same experiment seed always reproduces the same run, and
* independent components receive *statistically independent* streams
  (via :class:`numpy.random.SeedSequence` spawning) instead of sharing or
  reusing one generator.

The helpers here are intentionally tiny; they exist so that the rest of the
codebase never calls ``np.random.default_rng`` with ad-hoc integer
arithmetic on seeds (a classic source of accidentally-correlated streams).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "derive_rng",
    "rng_for",
]

#: Upper bound (exclusive) for integer seeds drawn from a generator.
_SEED_BOUND = 2**31 - 1


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an ``int`` seed, an existing generator (returned unchanged, so
    call-sites can be written generically), or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    non-overlapping streams — unlike ``default_rng(seed + i)``, which can
    collide across experiments that use nearby base seeds.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


def spawn_seeds(seed: int | None, n: int) -> list[int]:
    """Derive ``n`` independent integer seeds from ``seed``.

    Useful when a seed (rather than a generator) must cross a process
    boundary, e.g. for the parallel client executors in
    :mod:`repro.fl.parallel`.
    """
    root = np.random.SeedSequence(seed)
    return [int(s.generate_state(1)[0] % _SEED_BOUND) for s in root.spawn(n)]


def rng_for(base_seed: int, *key: int) -> np.random.Generator:
    """Stateless derived generator for an integer key tuple.

    ``rng_for(seed, round, client)`` always returns the same stream for
    the same arguments, with no shared mutable state — this is what makes
    the parallel client executors bit-identical to the serial one: each
    (round, client) pair owns an independent, order-free stream.
    """
    parts = (int(base_seed),) + tuple(int(k) for k in key)
    return np.random.default_rng(np.random.SeedSequence(parts))


def derive_rng(rng: np.random.Generator, *labels: int | str) -> np.random.Generator:
    """Derive a child generator from ``rng`` tagged by ``labels``.

    The labels are hashed into a seed drawn from ``rng``'s stream combined
    with a stable hash of the labels, giving a reproducible child stream per
    (parent, label) pair.  Used by components that need many lazily-created
    sub-streams (e.g. one per client per round).
    """
    base = int(rng.integers(0, _SEED_BOUND))
    mix = 0
    for label in labels:
        text = str(label).encode("utf-8")
        h = 2166136261
        for byte in text:  # FNV-1a, stable across processes unlike hash()
            h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
        mix = (mix * 31 + h) & 0x7FFFFFFF
    return np.random.default_rng(np.random.SeedSequence((base, mix)))


def batched_permutation(
    rng: np.random.Generator, n: int, batch_size: int
) -> Iterator[np.ndarray]:
    """Yield index batches of a fresh random permutation of ``range(n)``.

    The final batch may be smaller than ``batch_size``.  This is the
    canonical epoch-shuffling primitive used by the data loader.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def check_seed_list(seeds: Sequence[int]) -> list[int]:
    """Validate a user-supplied list of experiment seeds."""
    out = [int(s) for s in seeds]
    if len(set(out)) != len(out):
        raise ValueError(f"duplicate seeds in {out}")
    return out
