"""Shared infrastructure: RNG discipline, logging, timing, tables, I/O."""

from repro.utils.logging import RoundLogger, enable_console_logging, get_logger
from repro.utils.rng import derive_rng, make_rng, spawn_rngs, spawn_seeds
from repro.utils.serialization import (
    load_arrays,
    load_json,
    save_arrays,
    save_json,
    to_jsonable,
)
from repro.utils.tables import Table, format_mean_std, render_matrix
from repro.utils.timer import StageTimer, Timer, profiled

__all__ = [
    "RoundLogger",
    "enable_console_logging",
    "get_logger",
    "derive_rng",
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "load_arrays",
    "load_json",
    "save_arrays",
    "save_json",
    "to_jsonable",
    "Table",
    "format_mean_std",
    "render_matrix",
    "StageTimer",
    "Timer",
    "profiled",
]
