"""Argument-validation helpers shared across the library.

These raise early, with messages that name the offending parameter, so
configuration mistakes surface at construction time instead of as shape
errors deep inside a training loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_in",
    "check_array",
    "check_square_matrix",
    "check_probability_vector",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, inclusive_low: bool = False) -> float:
    """Require ``value`` in ``(0, 1]`` (or ``[0, 1]`` with ``inclusive_low``)."""
    low_ok = value >= 0 if inclusive_low else value > 0
    if not (low_ok and value <= 1):
        bounds = "[0, 1]" if inclusive_low else "(0, 1]"
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_in(name: str, value: str, allowed: Sequence[str]) -> str:
    """Require ``value`` to be one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(allowed)}, got {value!r}")
    return value


def check_array(
    name: str,
    value: np.ndarray,
    *,
    ndim: int | None = None,
    dtype_kind: str | None = None,
    allow_empty: bool = False,
) -> np.ndarray:
    """Require an ndarray with optional rank / dtype-kind / non-empty checks."""
    arr = np.asarray(value)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-D, got shape {arr.shape}")
    if dtype_kind is not None and arr.dtype.kind not in dtype_kind:
        raise ValueError(
            f"{name} must have dtype kind in {dtype_kind!r}, got {arr.dtype}"
        )
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    return arr


def check_square_matrix(name: str, value: np.ndarray) -> np.ndarray:
    """Require a square 2-D float matrix."""
    arr = check_array(name, value, ndim=2)
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_probability_vector(name: str, value: np.ndarray, atol: float = 1e-8) -> np.ndarray:
    """Require a non-negative vector summing to 1 (within ``atol``)."""
    arr = check_array(name, value, ndim=1)
    if np.any(arr < -atol):
        raise ValueError(f"{name} must be non-negative")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return arr
