"""Wall-clock measurement helpers.

Following the optimisation workflow in the HPC guides ("no optimization
without measuring"), the simulator and benches time their phases through
these helpers instead of sprinkling ``time.perf_counter()`` pairs around.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Timer", "StageTimer", "profiled"]


@dataclass
class Timer:
    """Accumulating stopwatch.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(100))
    >>> t.total >= 0.0
    True
    """

    total: float = 0.0
    calls: int = 0
    _started: float | None = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._started is not None, "Timer.__exit__ without __enter__"
        self.total += time.perf_counter() - self._started
        self.calls += 1
        self._started = None

    @property
    def mean(self) -> float:
        """Mean seconds per timed call (0.0 before any call completes)."""
        return self.total / self.calls if self.calls else 0.0


@dataclass
class StageTimer:
    """Named collection of :class:`Timer` objects for pipeline stages.

    The FL simulator uses one of these with stages like ``local_train``,
    ``aggregate``, ``evaluate`` so benches can report where time goes.
    """

    stages: dict[str, Timer] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[Timer]:
        timer = self.stages.setdefault(name, Timer())
        with timer:
            yield timer

    def summary(self) -> dict[str, float]:
        """Total seconds per stage, insertion-ordered."""
        return {name: t.total for name, t in self.stages.items()}

    def report(self) -> str:
        """Human-readable one-line-per-stage breakdown."""
        lines = []
        for name, t in self.stages.items():
            lines.append(f"{name:<16s} {t.total:8.3f}s over {t.calls} calls")
        return "\n".join(lines)


@contextmanager
def profiled(sort: str = "cumulative", limit: int = 20) -> Iterator[io.StringIO]:
    """Profile the enclosed block with :mod:`cProfile`.

    Yields a :class:`io.StringIO` that holds the stats report after the
    block exits — handy for ad-hoc bottleneck hunts during development:

    >>> with profiled() as report:
    ...     _ = [i * i for i in range(1000)]
    >>> "function calls" in report.getvalue()
    True
    """
    profiler = cProfile.Profile()
    buffer = io.StringIO()
    profiler.enable()
    try:
        yield buffer
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
