"""FedClust's one-shot clustering step and cut strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.distance import pairwise_euclidean
from repro.cluster.metrics import adjusted_rand_index
from repro.core.clustering import (
    ClusteringConfig,
    cluster_clients,
    silhouette_cut,
)
from repro.cluster.hierarchy import linkage


def _blocks(rng, sizes, gap=30.0, spread=0.5):
    points, truth = [], []
    for g, size in enumerate(sizes):
        points.append(rng.standard_normal((size, 3)) * spread + g * gap)
        truth.extend([g] * size)
    return pairwise_euclidean(np.vstack(points)), np.array(truth)


class TestConfig:
    def test_defaults(self):
        cfg = ClusteringConfig()
        assert cfg.linkage_method == "average"
        assert cfg.cut == "auto"

    def test_k_requires_n_clusters(self):
        with pytest.raises(ValueError, match="n_clusters"):
            ClusteringConfig(cut="k")

    def test_distance_requires_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            ClusteringConfig(cut="distance")

    def test_bad_linkage(self):
        with pytest.raises(ValueError, match="linkage"):
            ClusteringConfig(linkage_method="centroid")

    def test_bad_cut(self):
        with pytest.raises(ValueError, match="cut"):
            ClusteringConfig(cut="elbow")


class TestCuts:
    def test_auto_recovers_planted(self, rng):
        d, truth = _blocks(rng, [5, 5, 5])
        result = cluster_clients(d)
        assert result.n_clusters == 3
        assert adjusted_rand_index(truth, result.labels) == 1.0

    def test_silhouette_recovers_planted(self, rng):
        d, truth = _blocks(rng, [6, 4, 5])
        result = cluster_clients(d, ClusteringConfig(cut="silhouette"))
        assert adjusted_rand_index(truth, result.labels) == 1.0

    def test_fixed_k(self, rng):
        d, _ = _blocks(rng, [5, 5])
        result = cluster_clients(d, ClusteringConfig(cut="k", n_clusters=4))
        assert result.n_clusters == 4

    def test_distance_threshold(self, rng):
        d, truth = _blocks(rng, [5, 5], gap=50.0)
        result = cluster_clients(d, ClusteringConfig(cut="distance", threshold=10.0))
        assert adjusted_rand_index(truth, result.labels) == 1.0

    def test_max_clusters_bound(self, rng):
        d, _ = _blocks(rng, [4, 4, 4, 4])
        result = cluster_clients(
            d, ClusteringConfig(cut="silhouette", max_clusters=2)
        )
        assert result.n_clusters <= 2

    def test_min_gap_ratio_guard(self, rng):
        d = pairwise_euclidean(rng.standard_normal((12, 3)))
        result = cluster_clients(d, ClusteringConfig(min_gap_ratio=0.9))
        assert result.n_clusters == 1

    def test_silhouette_cut_unclusterable_fallback(self):
        d = np.zeros((4, 4))  # all points coincide
        z = linkage(d, "average")
        labels = silhouette_cut(d, z)
        assert len(np.unique(labels)) >= 1  # no crash on degenerate input

    def test_silhouette_tolerance_prefers_finer_on_flat_structure(self, rng):
        """Four crisp sub-blocks arranged as two super-blocks: with zero
        tolerance the cut may stop at the coarse 2-way split; with the
        default tolerance it must go at least as fine."""
        sub = [
            rng.standard_normal((4, 3)) * 0.2 + offset
            for offset in ([0, 0, 0], [8, 0, 0], [100, 0, 0], [108, 0, 0])
        ]
        d = pairwise_euclidean(np.vstack(sub))
        z = linkage(d, "average")
        coarse = silhouette_cut(d, z, tolerance=0.0)
        fine = silhouette_cut(d, z, tolerance=0.25)
        assert len(np.unique(fine)) >= len(np.unique(coarse))

    def test_silhouette_tolerance_keeps_crisp_structure_exact(self, rng):
        d, truth = _blocks(rng, [6, 6], gap=50.0, spread=0.3)
        labels = silhouette_cut(d, linkage(d, "average"), tolerance=0.05)
        from repro.cluster.metrics import adjusted_rand_index

        assert adjusted_rand_index(truth, labels) == 1.0

    def test_silhouette_negative_tolerance_raises(self, rng):
        d, _ = _blocks(rng, [3, 3])
        with pytest.raises(ValueError, match="tolerance"):
            silhouette_cut(d, linkage(d, "average"), tolerance=-0.1)


class TestResult:
    def test_members_and_sizes(self, rng):
        d, truth = _blocks(rng, [4, 6])
        result = cluster_clients(d)
        sizes = result.sizes()
        assert sorted(sizes.tolist()) == [4, 6]
        assert sum(len(result.members_of(g)) for g in range(result.n_clusters)) == 10

    def test_members_of_validation(self, rng):
        d, _ = _blocks(rng, [4, 4])
        result = cluster_clients(d)
        with pytest.raises(ValueError):
            result.members_of(99)

    def test_linkage_matrix_shape(self, rng):
        d, _ = _blocks(rng, [3, 3])
        result = cluster_clients(d)
        assert result.linkage_matrix.shape == (5, 4)
