"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.federation import Federation, build_federation
from repro.fl.config import TrainConfig
from repro.fl.simulation import FederatedEnv


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def planted_federation() -> Federation:
    """Small 2-group federation with a crisp planted structure.

    Session-scoped (read-only) because dataset generation is the
    slowest fixture step and many tests share it.
    """
    return build_federation(
        "fmnist",
        n_clients=8,
        n_samples=1600,
        seed=7,
        partition="label_cluster",
    )


@pytest.fixture(scope="session")
def dirichlet_federation() -> Federation:
    """Small Dir(0.1) federation (the Table-I heterogeneity setting)."""
    return build_federation(
        "cifar10",
        n_clients=6,
        n_samples=900,
        seed=3,
        partition="dirichlet",
        alpha=0.1,
    )


@pytest.fixture
def fast_train_cfg() -> TrainConfig:
    """One quick epoch per round — for tests that need real training."""
    return TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.9)


@pytest.fixture
def small_env(planted_federation, fast_train_cfg) -> FederatedEnv:
    """Environment over the planted federation with a small CNN."""
    return FederatedEnv(
        planted_federation,
        model_name="cnn_small",
        model_kwargs={"width": 4, "fc_dim": 16},
        train_cfg=fast_train_cfg,
        seed=0,
    )
