"""Federated partitioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.partition import (
    check_partition,
    dirichlet_partition,
    iid_partition,
    label_cluster_partition,
    partition_report,
    shard_partition,
)


@pytest.fixture
def labels(rng) -> np.ndarray:
    return rng.integers(0, 10, size=600)


class TestIID:
    def test_covers_everything(self, labels):
        parts = iid_partition(labels, 7, 0)
        check_partition(parts, len(labels), require_cover=True)

    def test_balanced_sizes(self, labels):
        parts = iid_partition(labels, 6, 0)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1


class TestDirichlet:
    def test_disjoint(self, labels):
        parts = dirichlet_partition(labels, 8, 0.1, 0)
        check_partition(parts, len(labels))

    def test_min_samples_respected(self, labels):
        parts = dirichlet_partition(labels, 8, 0.1, 0, min_samples=5)
        assert min(len(p) for p in parts) >= 5

    def test_small_alpha_skews(self, labels):
        """At alpha=0.05 most clients hold few classes; at alpha=100 all."""
        skewed = dirichlet_partition(labels, 5, 0.05, 0)
        uniform = dirichlet_partition(labels, 5, 100.0, 0)

        def mean_classes(parts):
            return np.mean(
                [len(np.unique(labels[p])) for p in parts if len(p)]
            )

        assert mean_classes(skewed) < mean_classes(uniform)

    def test_deterministic(self, labels):
        a = dirichlet_partition(labels, 5, 0.1, 123)
        b = dirichlet_partition(labels, 5, 0.1, 123)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError, match="cannot give"):
            dirichlet_partition(np.zeros(3, dtype=int), 5, 0.1, 0)

    def test_invalid_alpha_raises(self, labels):
        with pytest.raises(ValueError, match="alpha"):
            dirichlet_partition(labels, 5, 0.0, 0)


class TestShard:
    def test_disjoint_cover(self, labels):
        parts = shard_partition(labels, 6, 2, 0)
        check_partition(parts, len(labels), require_cover=True)

    def test_limits_classes_per_client(self, labels):
        parts = shard_partition(labels, 10, 2, 0)
        # 2 shards drawn from a label-sorted sequence touch few classes.
        for part in parts:
            assert len(np.unique(labels[part])) <= 4

    def test_too_many_shards_raises(self):
        with pytest.raises(ValueError, match="shards"):
            shard_partition(np.zeros(5, dtype=int), 10, 2, 0)


class TestLabelCluster:
    def test_planted_groups(self, labels):
        parts, groups = label_cluster_partition(
            labels, 6, [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]], 0
        )
        check_partition(parts, len(labels))
        np.testing.assert_array_equal(groups, [0, 1, 0, 1, 0, 1])
        for cid, part in enumerate(parts):
            allowed = {0, 1, 2, 3, 4} if groups[cid] == 0 else {5, 6, 7, 8, 9}
            assert set(labels[part]) <= allowed

    def test_overlapping_groups_raise(self, labels):
        with pytest.raises(ValueError, match="disjoint"):
            label_cluster_partition(labels, 4, [[0, 1], [1, 2]], 0)

    def test_fewer_clients_than_groups_raise(self, labels):
        with pytest.raises(ValueError, match="clients"):
            label_cluster_partition(labels, 1, [[0], [1]], 0)

    def test_three_groups(self, labels):
        parts, groups = label_cluster_partition(
            labels, 9, [[0, 1, 2], [3, 4, 5], [6, 7, 8]], 0
        )
        assert len(np.unique(groups)) == 3


class TestReportAndChecks:
    def test_report_counts(self, labels):
        parts = iid_partition(labels, 4, 0)
        report = partition_report(labels, parts, 10)
        assert report.shape == (4, 10)
        assert report.sum() == len(labels)

    def test_check_detects_overlap(self):
        with pytest.raises(ValueError, match="overlaps"):
            check_partition([np.array([0, 1]), np.array([1, 2])], 5)

    def test_check_detects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            check_partition([np.array([0, 0])], 5)

    def test_check_detects_out_of_range(self):
        with pytest.raises(ValueError, match="out-of-range"):
            check_partition([np.array([7])], 5)

    def test_check_cover(self):
        with pytest.raises(ValueError, match="covers"):
            check_partition([np.array([0, 1])], 3, require_cover=True)
