"""Real-time newcomer assignment (FedClust step ⑥)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.newcomer import assign_newcomer


@pytest.fixture
def planted(rng):
    members = np.vstack(
        [rng.standard_normal((4, 5)) * 0.1, rng.standard_normal((4, 5)) * 0.1 + 10]
    )
    labels = np.repeat([0, 1], 4)
    return members, labels


class TestAssignment:
    def test_assigns_to_nearest(self, planted, rng):
        members, labels = planted
        near_zero = rng.standard_normal(5) * 0.1
        result = assign_newcomer(near_zero, members, labels)
        assert result.cluster == 0
        near_ten = near_zero + 10
        assert assign_newcomer(near_ten, members, labels).cluster == 1

    def test_distances_and_margin(self, planted, rng):
        members, labels = planted
        result = assign_newcomer(np.zeros(5), members, labels)
        assert result.distances.shape == (2,)
        assert result.margin == pytest.approx(
            result.distances[1] - result.distances[0]
        )
        assert result.margin > 0

    @pytest.mark.parametrize("method", ["average", "single", "complete", "ward"])
    def test_all_linkage_reductions(self, planted, method):
        members, labels = planted
        result = assign_newcomer(np.zeros(5), members, labels, linkage_method=method)
        assert result.cluster == 0

    def test_single_uses_min_complete_uses_max(self):
        members = np.array([[0.0], [4.0], [10.0], [10.0]])
        labels = np.array([0, 0, 1, 1])
        v = np.array([3.0])
        # distances to cluster 0 members: [3, 1]; to cluster 1: [7, 7]
        single = assign_newcomer(v, members, labels, linkage_method="single")
        complete = assign_newcomer(v, members, labels, linkage_method="complete")
        assert single.distances[0] == pytest.approx(1.0)
        assert complete.distances[0] == pytest.approx(3.0)

    def test_single_cluster_margin_inf(self, rng):
        members = rng.standard_normal((3, 4))
        result = assign_newcomer(np.zeros(4), members, np.zeros(3, dtype=int))
        assert result.cluster == 0
        assert result.margin == float("inf")

    def test_validation(self, planted):
        members, labels = planted
        with pytest.raises(ValueError, match="dimension"):
            assign_newcomer(np.zeros(3), members, labels)
        with pytest.raises(ValueError, match="labels shape"):
            assign_newcomer(np.zeros(5), members, labels[:3])
        with pytest.raises(ValueError, match="linkage_method"):
            assign_newcomer(np.zeros(5), members, labels, linkage_method="median")
