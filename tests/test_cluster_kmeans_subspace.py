"""k-means and subspace (PACFL substrate) utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.kmeans import kmeans, kmeans_plus_plus_init
from repro.cluster.metrics import adjusted_rand_index
from repro.cluster.subspace import (
    data_subspace,
    pairwise_subspace_distances,
    principal_angles,
    subspace_distance,
)


class TestKMeans:
    def test_recovers_planted(self, rng):
        centers = np.array([[0.0, 0.0], [15.0, 15.0], [30.0, 0.0]])
        points = np.vstack([c + rng.standard_normal((10, 2)) for c in centers])
        truth = np.repeat(np.arange(3), 10)
        result = kmeans(points, 3, seed=0)
        assert adjusted_rand_index(truth, result.labels) == pytest.approx(1.0)
        assert result.converged

    def test_deterministic(self, rng):
        x = rng.standard_normal((30, 4))
        a = kmeans(x, 3, seed=7)
        b = kmeans(x, 3, seed=7)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_inertia_decreases_with_k(self, rng):
        x = rng.standard_normal((40, 3))
        inertias = [kmeans(x, k, seed=0).inertia for k in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_k_exceeds_n_raises(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            kmeans(rng.standard_normal((3, 2)), 5, seed=0)

    def test_plus_plus_init_spreads(self, rng):
        # Duplicated point cloud: ++ must not pick two coincident centres
        # when spread mass exists.
        x = np.vstack([np.zeros((10, 2)), np.ones((10, 2)) * 10])
        centers = kmeans_plus_plus_init(x, 2, rng)
        d = np.linalg.norm(centers[0] - centers[1])
        assert d > 5


class TestSubspace:
    def test_orthonormal_basis(self, rng):
        x = rng.standard_normal((20, 8))
        u = data_subspace(x, 3)
        assert u.shape == (8, 3)
        np.testing.assert_allclose(u.T @ u, np.eye(3), atol=1e-10)

    def test_p_capped_at_rank_bound(self, rng):
        x = rng.standard_normal((2, 8))
        u = data_subspace(x, 5)
        assert u.shape[1] == 2

    def test_identical_subspace_zero_distance(self, rng):
        x = rng.standard_normal((15, 6))
        u = data_subspace(x, 2)
        assert subspace_distance(u, u) == pytest.approx(0.0, abs=1e-8)

    def test_orthogonal_subspaces_max_angle(self):
        u = np.eye(4)[:, :2]
        v = np.eye(4)[:, 2:]
        angles = principal_angles(u, v)
        np.testing.assert_allclose(angles, np.pi / 2, atol=1e-10)
        assert subspace_distance(u, v) == pytest.approx(np.pi, abs=1e-8)

    def test_rotation_within_span_is_free(self, rng):
        u = np.linalg.qr(rng.standard_normal((6, 2)))[0]
        rotation = np.linalg.qr(rng.standard_normal((2, 2)))[0]
        assert subspace_distance(u, u @ rotation) == pytest.approx(0.0, abs=1e-6)

    def test_angles_sorted_and_bounded(self, rng):
        u = np.linalg.qr(rng.standard_normal((8, 3)))[0]
        v = np.linalg.qr(rng.standard_normal((8, 3)))[0]
        angles = principal_angles(u, v)
        assert (np.diff(angles) >= -1e-12).all()
        assert (angles >= 0).all() and (angles <= np.pi / 2 + 1e-12).all()

    def test_ambient_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="ambient"):
            principal_angles(np.eye(3)[:, :1], np.eye(4)[:, :1])

    def test_pairwise_matrix(self, rng):
        bases = [np.linalg.qr(rng.standard_normal((6, 2)))[0] for _ in range(4)]
        d = pairwise_subspace_distances(bases)
        assert d.shape == (4, 4)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-8)

    def test_distribution_signal(self, rng):
        """Clients with the same class mix have closer data subspaces —
        the PACFL premise."""
        from repro.data.synthetic import SPECS, generate_dataset

        spec = SPECS["fmnist_like"]
        same_a = generate_dataset(spec, 60, 1, labels=np.repeat([0, 1, 2], 20))
        same_b = generate_dataset(spec, 60, 2, labels=np.repeat([0, 1, 2], 20))
        other = generate_dataset(spec, 60, 3, labels=np.repeat([7, 8, 9], 20))
        u = [
            data_subspace(ds.images.reshape(60, -1), 3)
            for ds in (same_a, same_b, other)
        ]
        assert subspace_distance(u[0], u[1]) < subspace_distance(u[0], u[2])
