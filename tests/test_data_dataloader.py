"""DataLoader batching semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset


def _ds(n=10) -> ArrayDataset:
    images = np.arange(n, dtype=np.float32).reshape(n, 1, 1, 1)
    return ArrayDataset(images, np.arange(n) % 3, 3)


class TestBatching:
    def test_batch_shapes(self):
        loader = DataLoader(_ds(10), 4, rng=0)
        batches = list(loader)
        assert [len(b[0]) for b in batches] == [4, 4, 2]

    def test_len(self):
        assert len(DataLoader(_ds(10), 4, rng=0)) == 3
        assert len(DataLoader(_ds(10), 4, rng=0, drop_last=True)) == 2
        assert len(DataLoader(_ds(8), 4, rng=0)) == 2

    def test_drop_last(self):
        loader = DataLoader(_ds(10), 4, rng=0, drop_last=True)
        assert [len(b[0]) for b in loader] == [4, 4]

    def test_epoch_covers_all_samples(self):
        loader = DataLoader(_ds(10), 3, rng=0)
        seen = np.sort(np.concatenate([xb.ravel() for xb, _ in loader]))
        np.testing.assert_array_equal(seen, np.arange(10))

    def test_shuffle_differs_across_epochs(self):
        loader = DataLoader(_ds(20), 20, rng=0)
        first = next(iter(loader))[0].ravel().copy()
        second = next(iter(loader))[0].ravel().copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_is_ordered(self):
        loader = DataLoader(_ds(6), 2, rng=0, shuffle=False)
        xs = np.concatenate([xb.ravel() for xb, _ in loader])
        np.testing.assert_array_equal(xs, np.arange(6))

    def test_deterministic_given_seed(self):
        a = [xb.ravel() for xb, _ in DataLoader(_ds(12), 5, rng=9)]
        b = [xb.ravel() for xb, _ in DataLoader(_ds(12), 5, rng=9)]
        for xa, xb in zip(a, b):
            np.testing.assert_array_equal(xa, xb)

    def test_labels_track_images(self):
        ds = _ds(9)
        for xb, yb in DataLoader(ds, 4, rng=1):
            for x, y in zip(xb.ravel(), yb):
                assert int(x) % 3 == y

    def test_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            DataLoader(_ds(5), 0, rng=0)
