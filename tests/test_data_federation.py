"""Federation assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.federation import build_federation


class TestBuildFederation:
    def test_dirichlet_basics(self):
        fed = build_federation(
            "fmnist", n_clients=5, n_samples=600, seed=0, partition="dirichlet", alpha=0.5
        )
        assert fed.n_clients == 5
        assert fed.input_shape == (1, 28, 28)
        assert fed.true_groups is None
        assert fed.label_histograms.shape == (5, 10)
        # Every client can train and evaluate.
        assert all(c.n_train >= 1 and c.n_test >= 1 for c in fed.clients)

    def test_label_cluster_sets_groups(self):
        fed = build_federation(
            "fmnist", n_clients=6, n_samples=600, seed=0, partition="label_cluster"
        )
        assert fed.true_groups is not None
        np.testing.assert_array_equal(fed.true_groups, [0, 1, 0, 1, 0, 1])

    def test_custom_groups(self):
        fed = build_federation(
            "fmnist",
            n_clients=6,
            n_samples=900,
            seed=0,
            partition="label_cluster",
            groups=[[0, 1, 2], [3, 4], [5, 6, 7, 8, 9]],
        )
        assert len(np.unique(fed.true_groups)) == 3

    def test_train_test_disjoint_distributions(self):
        fed = build_federation(
            "fmnist", n_clients=4, n_samples=800, seed=0, partition="label_cluster"
        )
        for client, group in zip(fed.clients, fed.true_groups):
            allowed = set(range(5)) if group == 0 else set(range(5, 10))
            assert set(client.train.labels) <= allowed
            assert set(client.test.labels) <= allowed

    def test_deterministic(self):
        a = build_federation("svhn", n_clients=4, n_samples=400, seed=5)
        b = build_federation("svhn", n_clients=4, n_samples=400, seed=5)
        for ca, cb in zip(a.clients, b.clients):
            np.testing.assert_array_equal(ca.train.images, cb.train.images)

    def test_unknown_partition_raises(self):
        with pytest.raises(ValueError, match="unknown partition"):
            build_federation("fmnist", 4, 400, 0, partition="bogus")

    def test_summary_mentions_groups(self):
        fed = build_federation(
            "fmnist", n_clients=4, n_samples=400, seed=0, partition="label_cluster"
        )
        assert "planted groups" in fed.summary()

    def test_client_sizes(self):
        fed = build_federation("fmnist", n_clients=4, n_samples=400, seed=0)
        np.testing.assert_array_equal(
            fed.client_sizes(), [c.n_train for c in fed.clients]
        )


class TestSubset:
    def test_reindexes_clients(self):
        fed = build_federation(
            "fmnist", n_clients=6, n_samples=600, seed=0, partition="label_cluster"
        )
        sub = fed.subset([1, 3, 5])
        assert sub.n_clients == 3
        assert [c.client_id for c in sub.clients] == [0, 1, 2]
        np.testing.assert_array_equal(sub.true_groups, fed.true_groups[[1, 3, 5]])
        np.testing.assert_array_equal(
            sub.clients[0].train.labels, fed.clients[1].train.labels
        )

    def test_validation(self):
        fed = build_federation("fmnist", n_clients=4, n_samples=400, seed=0)
        with pytest.raises(ValueError, match="duplicate"):
            fed.subset([0, 0])
        with pytest.raises(ValueError, match="out of range"):
            fed.subset([9])
