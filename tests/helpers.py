"""Shared test utilities: numerical gradient checking and tiny fixtures.

The gradient checker is the backbone of the ``repro.nn`` test suite:
every layer's analytic backward pass is compared against central-
difference numerical gradients on float64 inputs.  To keep the suite
fast, a random subset of coordinates is probed per tensor (enough to
catch any indexing/transposition bug, which corrupts most coordinates).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


def loss_for(module: Module, x: np.ndarray, probe: np.ndarray) -> float:
    """Scalar projection loss ``sum(forward(x) * probe)``.

    A fixed random projection makes the upstream gradient of the output
    exactly ``probe``, so ``module.backward(probe)`` should produce the
    analytic gradients of this loss.
    """
    return float((module.forward(x) * probe).sum())


def numerical_grad_entries(
    f,
    array: np.ndarray,
    indices: list[tuple[int, ...]],
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference derivative of ``f()`` w.r.t. chosen entries of
    ``array`` (mutated in place and restored)."""
    out = np.zeros(len(indices))
    for n, idx in enumerate(indices):
        original = array[idx]
        array[idx] = original + eps
        f_plus = f()
        array[idx] = original - eps
        f_minus = f()
        array[idx] = original
        out[n] = (f_plus - f_minus) / (2 * eps)
    return out


def sample_indices(
    shape: tuple[int, ...], rng: np.random.Generator, max_entries: int = 24
) -> list[tuple[int, ...]]:
    """Up to ``max_entries`` distinct coordinates of an array shape."""
    total = int(np.prod(shape))
    count = min(max_entries, total)
    flat = rng.choice(total, size=count, replace=False)
    return [tuple(int(v) for v in np.unravel_index(i, shape)) for i in flat]


def check_module_gradients(
    module: Module,
    x: np.ndarray,
    rng: np.random.Generator,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    check_input: bool = True,
) -> None:
    """Assert analytic == numerical gradients for a module.

    ``x`` must be float64 (and the module's parameters should be too) so
    the central differences are accurate.
    """
    assert x.dtype == np.float64, "gradient checks need float64 inputs"
    out = module.forward(x)
    probe = rng.standard_normal(out.shape)

    module.zero_grad()
    module.forward(x)  # fresh cache for the checked backward
    grad_input = module.backward(probe.copy())
    assert grad_input.shape == x.shape

    def f() -> float:
        return loss_for(module, x, probe)

    if check_input:
        idx = sample_indices(x.shape, rng)
        numeric = numerical_grad_entries(f, x, idx)
        analytic = np.array([grad_input[i] for i in idx])
        np.testing.assert_allclose(
            analytic, numeric, rtol=rtol, atol=atol,
            err_msg=f"input gradient mismatch for {type(module).__name__}",
        )

    for name, param in module.named_parameters():
        idx = sample_indices(param.data.shape, rng)
        numeric = numerical_grad_entries(f, param.data, idx)
        analytic = np.array([param.grad[i] for i in idx])
        np.testing.assert_allclose(
            analytic, numeric, rtol=rtol, atol=atol,
            err_msg=f"parameter gradient mismatch for {name}",
        )


def to_float64(module: Module) -> Module:
    """Cast every parameter of a module to float64 in place."""
    for param in module.parameters():
        param.data = param.data.astype(np.float64)
        param.grad = np.zeros_like(param.data)
    return module
