"""The async round engine: dispatch and aggregation as event streams.

Four contracts:

1. **Sync equivalence** — ``AsyncConfig(buffer_size=|participants|,
   duration_range=1)`` with unbounded concurrency reproduces the
   synchronous engine bit-for-bit for every algorithm: per-client
   accuracies, record streams AND traffic totals.  The lockstep loop is
   the exact special case where every dispatch arrives in its own round
   and the buffer fills exactly once per round.
2. **Seeded determinism** — async interleavings are a pure function of
   (seed, scenario): durations draw from their own ``DURATION_TAG``
   stream and results are computed eagerly at dispatch, so the same
   config replays identically across serial/thread/process/batched
   executors.
3. **Buffer semantics** — aggregation fires at K buffered arrivals (the
   final round flushes partial buffers); each buffered update folds at
   ``decay ** age`` into a *copy*; one update per client per event
   (newer supersedes older, both uploads charged); in-flight clients
   are never re-dispatched; ``max_concurrency`` truncates dispatch to
   the lowest client ids.
4. **Config hygiene** — ``AsyncConfig`` validates its knobs;
   ``straggler_rate`` is a synchronous-deadline concept and composing
   it with async mode is a loud error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import GlobalModelRounds
from repro.algorithms.registry import make_algorithm
from repro.data.federation import build_federation
from repro.fl.client import ClientUpdate
from repro.fl.config import TrainConfig
from repro.fl.history import RunHistory
from repro.fl.parallel import InFlightBuffer
from repro.fl.rounds import (
    AsyncConfig,
    RoundEngine,
    ScenarioConfig,
    discounted_update,
)
from repro.fl.simulation import FederatedEnv

_KWARGS = {
    "fedavg": {},
    "fedprox": {"mu": 0.1},
    "cfl": {"warmup_rounds": 1},
    "ifca": {"n_clusters": 2},
    "pacfl": {},
    "fedclust": {"warmup_steps": 10, "warmup_lr": 0.01},
    "local_only": {},
}


@pytest.fixture(scope="module")
def federation():
    return build_federation(
        "cifar10", n_clients=8, n_samples=800, seed=5, partition="label_cluster"
    )


@pytest.fixture(scope="module")
def env_factory(federation):
    def make(executor="serial", local_epochs=1, seed=2):
        return FederatedEnv(
            federation,
            model_name="mlp",
            model_kwargs={"hidden": (96,)},
            train_cfg=TrainConfig(
                local_epochs=local_epochs, batch_size=32, lr=0.05, momentum=0.9
            ),
            seed=seed,
            executor=executor,
        )

    return make


def _async_run(env, *, n_rounds=6, algorithm="fedavg", decay=0.0, **async_kwargs):
    scenario = ScenarioConfig(
        staleness_decay=decay, async_config=AsyncConfig(**async_kwargs)
    )
    return make_algorithm(algorithm, **_KWARGS[algorithm]).run(
        env, n_rounds=n_rounds, scenario=scenario
    )


# ----------------------------------------------------------------------
# AsyncConfig validation
# ----------------------------------------------------------------------
class TestAsyncConfig:
    def test_duration_int_normalises_to_pair(self):
        assert AsyncConfig(duration_range=2).duration_range == (2, 2)
        assert AsyncConfig(duration_range=(1, 4)).duration_range == (1, 4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"buffer_size": 0},
            {"buffer_size": -1},
            {"max_concurrency": 0},
            {"duration_range": 0},
            {"duration_range": (0, 2)},
            {"duration_range": (3, 2)},
            {"duration_range": (1, 2, 3)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AsyncConfig(**kwargs)

    def test_async_scenario_leaves_default(self):
        assert not ScenarioConfig(async_config=AsyncConfig()).is_default

    def test_async_rejects_stragglers(self):
        """Stragglers model a missed synchronous deadline; async has no
        deadline — latency is the duration draw.  Composing them is a
        configuration error, not a silent no-op."""
        with pytest.raises(ValueError, match="straggler"):
            ScenarioConfig(async_config=AsyncConfig(), straggler_rate=0.3)

    def test_async_composes_with_other_knobs(self):
        scenario = ScenarioConfig(
            client_fraction=0.5,
            failure_rate=0.1,
            staleness_decay=0.5,
            compute_budget=(1, 4),
            async_config=AsyncConfig(buffer_size=3),
        )
        assert scenario.async_config.buffer_size == 3


# ----------------------------------------------------------------------
# The sync-equivalence pin: lockstep is the K=m, duration=1 special case
# ----------------------------------------------------------------------
class TestSyncEquivalence:
    @pytest.mark.parametrize("algorithm", sorted(_KWARGS))
    def test_async_special_case_is_bit_identical_to_sync(
        self, env_factory, algorithm
    ):
        env_sync = env_factory()
        sync = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
            env_sync, n_rounds=3
        )
        env_async = env_factory()
        asynchronous = _async_run(
            env_async, n_rounds=3, algorithm=algorithm,
            buffer_size=8, duration_range=1,
        )
        np.testing.assert_array_equal(
            sync.per_client_accuracy, asynchronous.per_client_accuracy
        )
        assert env_sync.tracker.total_uploaded == env_async.tracker.total_uploaded
        assert (
            env_sync.tracker.total_downloaded
            == env_async.tracker.total_downloaded
        )
        for a, b in zip(sync.history.records, asynchronous.history.records):
            assert a.round_index == b.round_index
            assert a.mean_train_loss == pytest.approx(b.mean_train_loss, nan_ok=True)
            assert a.n_participants == b.n_participants
            assert b.aggregation_event  # buffer fills every round
            assert b.n_buffered == 0  # ... and drains every round

    def test_sampled_sync_draws_are_untouched_by_exclusion_plumbing(
        self, env_factory
    ):
        """``select_participants(exclude=...)`` with an empty exclusion
        must leave the seeded sampling stream exactly as the sync path
        draws it."""
        env = env_factory()
        engine = RoundEngine(env, ScenarioConfig(client_fraction=0.5))
        for round_index in (1, 2, 3):
            plain = engine.select_participants(round_index)
            excluded = engine.select_participants(round_index, exclude=[])
            np.testing.assert_array_equal(plain, excluded)


# ----------------------------------------------------------------------
# Seeded determinism and executor invariance
# ----------------------------------------------------------------------
class TestAsyncDeterminism:
    def _record_key(self, result):
        return [
            (
                r.round_index,
                r.n_participants,
                r.aggregation_event,
                r.n_buffered,
                r.n_stale,
            )
            for r in result.history.records
        ]

    def test_same_seed_replays_identically(self, env_factory):
        runs = [
            _async_run(
                env_factory(), buffer_size=3, max_concurrency=5,
                duration_range=(1, 3), decay=0.9,
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            runs[0].per_client_accuracy, runs[1].per_client_accuracy
        )
        assert self._record_key(runs[0]) == self._record_key(runs[1])

    @pytest.mark.parametrize("executor", ["thread", "process", "batched"])
    def test_executor_invariance(self, env_factory, executor):
        """Durations draw from the DURATION_TAG stream and results are
        computed eagerly at dispatch, so the executor kind cannot change
        what arrives when."""
        serial = _async_run(
            env_factory("serial"), buffer_size=3, duration_range=(1, 3),
            decay=0.5,
        )
        other = _async_run(
            env_factory(executor), buffer_size=3, duration_range=(1, 3),
            decay=0.5,
        )
        np.testing.assert_allclose(
            other.per_client_accuracy,
            serial.per_client_accuracy,
            rtol=0,
            atol=5e-5,
        )
        assert self._record_key(serial) == self._record_key(other)

    def test_seed_changes_the_interleaving(self, env_factory):
        a = _async_run(env_factory(seed=2), buffer_size=3, duration_range=(1, 3))
        b = _async_run(env_factory(seed=3), buffer_size=3, duration_range=(1, 3))
        assert self._record_key(a) != self._record_key(b)


# ----------------------------------------------------------------------
# Buffer semantics
# ----------------------------------------------------------------------
class TestBufferSemantics:
    def test_rounds_without_event_log_nan_loss(self, env_factory):
        """With duration 2 the first round can have no arrivals: its
        record must say so (NaN loss, no aggregation event) rather than
        fabricate a measurement."""
        result = _async_run(
            env_factory(), buffer_size=8, duration_range=2, n_rounds=4
        )
        first = result.history.records[0]
        assert not first.aggregation_event
        assert np.isnan(first.mean_train_loss)
        events = [r for r in result.history.records if r.aggregation_event]
        assert events, "a duration-2 run still aggregates eventually"
        for r in events:
            assert np.isfinite(r.mean_train_loss)

    def test_final_round_flushes_partial_buffer(self, env_factory):
        """K larger than the federation can never fill; arrived work is
        still aggregated (once, in the final round) instead of being
        thrown away at shutdown."""
        result = _async_run(
            env_factory(), buffer_size=100, duration_range=2, n_rounds=3
        )
        records = result.history.records
        assert [r.aggregation_event for r in records] == [False, False, True]
        last = records[-1]
        assert np.isfinite(last.mean_train_loss)
        assert last.n_buffered == 0  # the flush drained it
        assert last.n_stale > 0  # flushed work was dispatched earlier

    def test_staleness_discount_applies_decay_pow_age(
        self, env_factory, monkeypatch
    ):
        """Duration 2 with K=m makes every aggregated update exactly one
        round old: each must fold at weight n_samples x decay^1, through
        a copy (the buffered original keeps weight None)."""
        captured = []
        orig = GlobalModelRounds.aggregate

        def spy(self, engine, round_index, updates):
            captured.append((round_index, list(updates)))
            return orig(self, engine, round_index, updates)

        monkeypatch.setattr(GlobalModelRounds, "aggregate", spy)
        _async_run(
            env_factory(), buffer_size=8, duration_range=2, decay=0.9,
            n_rounds=2,
        )
        assert len(captured) == 1
        round_index, updates = captured[0]
        assert round_index == 2 and len(updates) == 8
        for u in updates:
            assert u.weight == pytest.approx(u.n_samples * 0.9)

    def test_zero_decay_means_undiscounted_in_async(
        self, env_factory, monkeypatch
    ):
        """decay=0 is the sync engine's "discard stragglers" mode; async
        has no discard — lateness is the normal case, so 0 means fold at
        full weight."""
        captured = []
        orig = GlobalModelRounds.aggregate

        def spy(self, engine, round_index, updates):
            captured.append(list(updates))
            return orig(self, engine, round_index, updates)

        monkeypatch.setattr(GlobalModelRounds, "aggregate", spy)
        _async_run(
            env_factory(), buffer_size=8, duration_range=2, decay=0.0,
            n_rounds=2,
        )
        for u in captured[0]:
            assert u.weight == pytest.approx(float(u.n_samples))

    def test_in_flight_clients_are_not_redispatched(self, env_factory):
        """With a fixed duration of 2 every client alternates train/
        deliver, so dispatches happen only on odd rounds — a client mid-
        training is excluded from selection."""
        result = _async_run(
            env_factory(), buffer_size=8, duration_range=2, n_rounds=6
        )
        dispatched = [r.n_participants for r in result.history.records]
        assert dispatched == [8, 0, 8, 0, 8, 0]

    def test_newer_arrival_supersedes_buffered_update(self, env_factory):
        """Duration 1 with K too large to fire: every round all m
        clients re-arrive, and the buffer keeps exactly one entry per
        client — while every upload is still charged (it crossed the
        network)."""
        env = env_factory()
        result = _async_run(
            env, buffer_size=100, duration_range=1, n_rounds=4
        )
        records = result.history.records
        assert [r.n_buffered for r in records] == [8, 8, 8, 0]
        # 4 rounds x 8 uploads each, despite only 8 surviving to the flush.
        assert env.tracker.total_uploaded == 4 * 8 * env.n_params

    def test_aggregation_counters_match_records(self, env_factory):
        env = env_factory()
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(
            env,
            ScenarioConfig(
                async_config=AsyncConfig(buffer_size=3, duration_range=(1, 3))
            ),
        )
        history = RunHistory("fedavg", "cifar10", env.seed)
        engine.run(strategy, 5, history)
        events = [r for r in history.records if r.aggregation_event]
        assert engine.n_aggregation_events == len(events)
        # Every absorbed update was dispatched exactly once.
        dispatched = sum(len(ids) for _, ids in engine.participation_log)
        assert engine.n_updates_absorbed <= dispatched
        assert history.to_dict()["n_aggregation_events"] == len(events)


class TestConcurrencyCap:
    def test_cap_truncates_to_lowest_ids(self, env_factory):
        """Duration 1 frees every slot each round, so the cap picks the
        deterministically-lowest ids of the full selection every time."""
        env = env_factory()
        engine = RoundEngine(
            env,
            ScenarioConfig(
                async_config=AsyncConfig(
                    buffer_size=3, max_concurrency=3, duration_range=1
                )
            ),
        )
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine.run(strategy, 3, RunHistory("fedavg", "cifar10", env.seed))
        assert engine.participation_log == [
            (1, [0, 1, 2]),
            (2, [0, 1, 2]),
            (3, [0, 1, 2]),
        ]

    def test_cap_counts_in_flight_work(self, env_factory):
        """With duration 2 and M=5, round 1 fills all five slots and
        round 2 has zero free — no over-dispatch past the cap."""
        env = env_factory()
        engine = RoundEngine(
            env,
            ScenarioConfig(
                async_config=AsyncConfig(
                    buffer_size=8, max_concurrency=5, duration_range=2
                )
            ),
        )
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine.run(strategy, 4, RunHistory("fedavg", "cifar10", env.seed))
        by_round = dict(engine.participation_log)
        assert by_round[1] == [0, 1, 2, 3, 4]
        assert 2 not in by_round  # all five slots occupied mid-training
        assert by_round[3] == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# The in-flight ledger
# ----------------------------------------------------------------------
class TestInFlightBuffer:
    def _update(self, cid):
        return ClientUpdate(
            client_id=cid, state={}, n_samples=10, mean_loss=0.0, n_batches=1
        )

    def test_collect_due_releases_in_dispatch_order(self):
        buffer = InFlightBuffer()
        buffer.add([self._update(3)], dispatch_round=1, completes_at=[2])
        buffer.add([self._update(1)], dispatch_round=2, completes_at=[2])
        assert buffer.client_ids == frozenset({3, 1})
        due = buffer.collect_due(2)
        assert [(r, u.client_id) for r, u in due] == [(1, 3), (2, 1)]
        assert len(buffer) == 0

    def test_not_yet_due_work_stays_in_flight(self):
        buffer = InFlightBuffer()
        buffer.add(
            [self._update(0), self._update(1)],
            dispatch_round=1,
            completes_at=[1, 3],
        )
        assert [u.client_id for _, u in buffer.collect_due(1)] == [0]
        assert buffer.client_ids == frozenset({1})
        assert [u.client_id for _, u in buffer.collect_due(3)] == [1]

    def test_validation(self):
        buffer = InFlightBuffer()
        with pytest.raises(ValueError, match="delivery rounds"):
            buffer.add([self._update(0)], dispatch_round=1, completes_at=[1, 2])
        with pytest.raises(ValueError, match="before its dispatch"):
            buffer.add([self._update(0)], dispatch_round=3, completes_at=[2])


# ----------------------------------------------------------------------
# discounted_update: the stale-fold copy (regression for the in-place
# weight mutation bug)
# ----------------------------------------------------------------------
class TestDiscountedUpdate:
    def _update(self, weight=None):
        return ClientUpdate(
            client_id=0,
            state={},
            n_samples=40,
            mean_loss=0.1,
            n_batches=4,
            flat=np.zeros(3),
            weight=weight,
        )

    def test_folding_twice_does_not_compound(self):
        """The old ``_fold_stale`` wrote the discount into the buffered
        update in place, so observing the same update in two folds
        multiplied the weight by decay^2.  Folding must come back as a
        copy: two age-1 folds of the same original both weigh
        n_samples x decay."""
        update = self._update()
        first = discounted_update(update, 0.5, 1)
        second = discounted_update(update, 0.5, 1)
        assert first.weight == second.weight == pytest.approx(40 * 0.5)
        assert update.weight is None  # original untouched

    def test_budget_weight_is_the_discount_base(self):
        """Compute budgets set ``weight`` to steps taken; the staleness
        discount multiplies that, not the sample count."""
        folded = discounted_update(self._update(weight=4.0), 0.5, 2)
        assert folded.weight == pytest.approx(4.0 * 0.25)

    def test_copy_is_shallow(self):
        update = self._update()
        folded = discounted_update(update, 0.9, 1)
        assert folded is not update
        assert folded.flat is update.flat  # aggregation only reads it
