"""Client local training and the evaluation protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.fl.client import local_train, run_client_update
from repro.fl.config import TrainConfig
from repro.fl.evaluation import evaluate_model, mean_local_accuracy
from repro.nn.models import mlp


@pytest.fixture
def tiny_dataset():
    return make_dataset("fmnist", 120, 3, noise_std=0.2)


@pytest.fixture
def model(rng):
    return mlp((1, 28, 28), 10, rng, hidden=(16,))


class TestLocalTrain:
    def test_reduces_loss(self, model, tiny_dataset, rng):
        cfg = TrainConfig(local_epochs=1, batch_size=32, lr=0.1, momentum=0.0)
        first, _ = local_train(model, tiny_dataset, cfg, np.random.default_rng(0))
        for _ in range(4):
            last, _ = local_train(model, tiny_dataset, cfg, np.random.default_rng(0))
        assert last < first

    def test_batch_count(self, model, tiny_dataset):
        cfg = TrainConfig(local_epochs=2, batch_size=40)
        _, n = local_train(model, tiny_dataset, cfg, np.random.default_rng(0))
        assert n == 2 * 3  # 120 samples / 40 per batch × 2 epochs

    def test_max_steps_cap(self, model, tiny_dataset):
        cfg = TrainConfig(local_epochs=10, batch_size=40, max_steps=5)
        _, n = local_train(model, tiny_dataset, cfg, np.random.default_rng(0))
        assert n == 5

    def test_max_batches_cap(self, model, tiny_dataset):
        cfg = TrainConfig(local_epochs=2, batch_size=10, max_batches=3)
        _, n = local_train(model, tiny_dataset, cfg, np.random.default_rng(0))
        assert n == 6  # 3 per epoch × 2

    def test_batch_size_shrinks_to_dataset(self, model, tiny_dataset):
        small = tiny_dataset.subset(np.arange(5))
        cfg = TrainConfig(local_epochs=1, batch_size=512)
        _, n = local_train(model, small, cfg, np.random.default_rng(0))
        assert n == 1

    def test_empty_dataset_raises(self, model, tiny_dataset):
        cfg = TrainConfig()
        with pytest.raises(ValueError, match="empty"):
            local_train(
                model, tiny_dataset.subset(np.array([], dtype=int)), cfg,
                np.random.default_rng(0),
            )

    def test_prox_pulls_toward_anchor(self, model, tiny_dataset):
        """With a strong (but stable, lr*mu < 1) proximal term, weights
        stay closer to the incoming state than free SGD drifts."""
        cfg = TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.0)
        start = model.state_dict()
        local_train(model, tiny_dataset, cfg, np.random.default_rng(0), prox_mu=0.0)
        free_drift = sum(
            float(np.abs(model.state_dict()[k] - start[k]).sum()) for k in start
        )
        model.load_state_dict(start)
        local_train(model, tiny_dataset, cfg, np.random.default_rng(0), prox_mu=10.0)
        prox_drift = sum(
            float(np.abs(model.state_dict()[k] - start[k]).sum()) for k in start
        )
        assert prox_drift < free_drift


class TestRunClientUpdate:
    def test_returns_new_state(self, model, tiny_dataset):
        cfg = TrainConfig(local_epochs=1, batch_size=32)
        incoming = model.state_dict()
        update = run_client_update(
            model, 3, tiny_dataset, incoming, cfg, np.random.default_rng(0)
        )
        assert update.client_id == 3
        assert update.n_samples == len(tiny_dataset)
        assert update.n_batches > 0
        # State advanced away from the incoming state.
        assert any(
            not np.allclose(update.state[k], incoming[k]) for k in incoming
        )

    def test_deterministic_given_rng(self, model, tiny_dataset):
        cfg = TrainConfig(local_epochs=1, batch_size=32)
        incoming = model.state_dict()
        a = run_client_update(
            model, 0, tiny_dataset, incoming, cfg, np.random.default_rng(42)
        )
        b = run_client_update(
            model, 0, tiny_dataset, incoming, cfg, np.random.default_rng(42)
        )
        for k in a.state:
            np.testing.assert_array_equal(a.state[k], b.state[k])


class TestEvaluation:
    def test_accuracy_bounds(self, model, tiny_dataset):
        result = evaluate_model(model, tiny_dataset)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.n_samples == len(tiny_dataset)
        assert result.n_correct == int(result.accuracy * result.n_samples)

    def test_batched_equals_full(self, model, tiny_dataset):
        full = evaluate_model(model, tiny_dataset, batch_size=4096)
        batched = evaluate_model(model, tiny_dataset, batch_size=7)
        assert full.accuracy == batched.accuracy
        assert full.loss == pytest.approx(batched.loss, rel=1e-6)

    def test_restores_training_mode(self, model, tiny_dataset):
        model.train()
        evaluate_model(model, tiny_dataset)
        assert model.training
        model.eval()
        evaluate_model(model, tiny_dataset)
        assert not model.training

    def test_trained_model_beats_chance(self, model, tiny_dataset):
        cfg = TrainConfig(local_epochs=12, batch_size=32, lr=0.1, momentum=0.9)
        local_train(model, tiny_dataset, cfg, np.random.default_rng(0))
        result = evaluate_model(model, tiny_dataset)
        assert result.accuracy > 0.4  # train accuracy ≫ 10% chance

    def test_mean_local_accuracy(self, model, tiny_dataset, rng):
        half = len(tiny_dataset) // 2
        sets = [
            tiny_dataset.subset(np.arange(half)),
            tiny_dataset.subset(np.arange(half, len(tiny_dataset))),
        ]
        state = model.state_dict()
        mean, per_client = mean_local_accuracy(model, [state, state], sets)
        assert per_client.shape == (2,)
        assert mean == pytest.approx(per_client.mean())

    def test_mean_local_accuracy_validation(self, model, tiny_dataset):
        with pytest.raises(ValueError, match="states"):
            mean_local_accuracy(model, [model.state_dict()], [])
