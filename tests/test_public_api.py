"""Public API surface: imports, __all__ hygiene, version, docstrings."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.utils",
    "repro.nn",
    "repro.nn.layers",
    "repro.data",
    "repro.cluster",
    "repro.fl",
    "repro.algorithms",
    "repro.core",
    "repro.experiments",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_top_level_workflow_symbols(self):
        import repro

        for symbol in (
            "build_federation",
            "FederatedEnv",
            "TrainConfig",
            "FedClust",
            "FedClustConfig",
            "FedAvg",
            "make_algorithm",
        ):
            assert symbol in repro.__all__

    def test_public_callables_documented(self):
        """Every public callable exported at the top level has a docstring."""
        import repro

        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if callable(obj):
                assert obj.__doc__, f"repro.{symbol} lacks a docstring"

    def test_cli_module_importable(self):
        from repro.cli import build_parser, main

        assert callable(main)
        assert build_parser().prog == "repro"
