"""State-dict arithmetic primitives."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro.nn.models import mlp
from repro.nn.state import (
    check_same_keys,
    flatten_state,
    state_add,
    state_allclose,
    state_axpy,
    state_copy,
    state_dot,
    state_norm,
    state_scale,
    state_sub,
    state_zeros_like,
    unflatten_state,
)


def _state(rng) -> OrderedDict:
    return OrderedDict(
        [("a", rng.standard_normal((2, 3))), ("b", rng.standard_normal(4))]
    )


class TestArithmetic:
    def test_add_sub_roundtrip(self, rng):
        a, b = _state(rng), _state(rng)
        assert state_allclose(state_add(state_sub(a, b), b), a)

    def test_scale(self, rng):
        a = _state(rng)
        doubled = state_scale(a, 2.0)
        np.testing.assert_allclose(doubled["a"], 2 * a["a"])

    def test_axpy(self, rng):
        a, b = _state(rng), _state(rng)
        acc = state_copy(a)
        state_axpy(acc, b, 0.5)
        np.testing.assert_allclose(acc["a"], a["a"] + 0.5 * b["a"])

    def test_zeros_like(self, rng):
        z = state_zeros_like(_state(rng))
        assert all(not v.any() for v in z.values())

    def test_copy_is_deep(self, rng):
        a = _state(rng)
        c = state_copy(a)
        c["a"][0, 0] = 1e9
        assert a["a"][0, 0] != 1e9

    def test_norm_matches_flat(self, rng):
        a = _state(rng)
        assert state_norm(a) == pytest.approx(
            float(np.linalg.norm(flatten_state(a)))
        )

    def test_dot_matches_flat(self, rng):
        a, b = _state(rng), _state(rng)
        assert state_dot(a, b) == pytest.approx(
            float(flatten_state(a) @ flatten_state(b))
        )

    def test_key_mismatch_raises(self, rng):
        a = _state(rng)
        b = OrderedDict([("a", a["a"])])
        with pytest.raises(KeyError):
            check_same_keys([a, b])
        with pytest.raises(KeyError):
            state_add(a, b)


class TestFlatten:
    def test_roundtrip(self, rng):
        a = _state(rng)
        flat = flatten_state(a)
        assert flat.shape == (10,)
        back = unflatten_state(flat, a)
        assert state_allclose(back, a)

    def test_key_subset_order(self, rng):
        a = _state(rng)
        flat = flatten_state(a, keys=["b"])
        np.testing.assert_allclose(flat, a["b"].ravel())

    def test_missing_key_raises(self, rng):
        with pytest.raises(KeyError, match="not in state"):
            flatten_state(_state(rng), keys=["zzz"])

    def test_empty_selection_raises(self, rng):
        with pytest.raises(ValueError, match="no keys"):
            flatten_state(_state(rng), keys=[])

    def test_unflatten_wrong_length_raises(self, rng):
        a = _state(rng)
        with pytest.raises(ValueError, match="vector has shape"):
            unflatten_state(np.zeros(3), a)

    def test_model_state_roundtrip(self, rng):
        model = mlp((1, 4, 4), 3, rng, hidden=(5,))
        state = model.state_dict()
        flat = flatten_state(state)
        assert flat.shape == (model.num_parameters(),)
        back = unflatten_state(flat, state)
        model.load_state_dict(back)  # dtype/shape compatible

    def test_allclose_asymmetric_keys(self, rng):
        a = _state(rng)
        assert not state_allclose(a, OrderedDict([("a", a["a"])]))
