"""Flat parameter plane: layout, pack/unpack, and the packed kernels.

The invariants under test are the ones the hot paths rely on (see the
``repro.nn.state_flat`` module docstring): packing is an exact bijection
onto the float64 plane, key subsets are column runs, and the packed
aggregation kernel is bit-identical to the dict API built over it.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.aggregation import (
    packed_weighted_average,
    weighted_average,
    weighted_average_dict,
)
from repro.fl.communication import (
    decode_flat_payload,
    encode_flat_payload,
    flat_payload_nbytes,
    params_in_layout,
)
from repro.nn.models import lenet5
from repro.nn.optim import ProximalSGD
from repro.nn.state import flatten_state
from repro.nn.state_flat import (
    StateLayout,
    pack_state,
    pack_states,
    unpack_keys,
    unpack_state,
)
from repro.core.weights import packed_weight_matrix, weight_matrix


def _mixed_state(rng: np.random.Generator) -> "OrderedDict[str, np.ndarray]":
    """A template with mixed dtypes, shapes and a scalar-free layout."""
    return OrderedDict(
        [
            ("conv.weight", rng.standard_normal((4, 3, 3, 3)).astype(np.float32)),
            ("conv.bias", rng.standard_normal(4).astype(np.float32)),
            ("norm.gamma", rng.standard_normal(4).astype(np.float64)),
            ("fc.weight", rng.standard_normal((5, 16)).astype(np.float32)),
            ("fc.bias", rng.standard_normal(5).astype(np.float64)),
        ]
    )


def _like(template, rng):
    return OrderedDict(
        (k, rng.standard_normal(v.shape).astype(v.dtype))
        for k, v in template.items()
    )


class TestLayout:
    def test_offsets_tile_the_plane(self, rng):
        layout = StateLayout.from_state(_mixed_state(rng))
        assert layout.offsets[0] == 0
        assert layout.n_params == sum(v.size for v in _mixed_state(rng).values())
        for key in layout.keys:
            s = layout.slice_of(key)
            assert s.stop - s.start == layout.size_of(key)
        # ranges are adjacent and exhaustive
        stops = [layout.slice_of(k).stop for k in layout.keys]
        starts = [layout.slice_of(k).start for k in layout.keys]
        assert starts == [0, *stops[:-1]]
        assert stops[-1] == layout.n_params

    def test_unknown_key_raises(self, rng):
        layout = StateLayout.from_state(_mixed_state(rng))
        with pytest.raises(KeyError, match="nope"):
            layout.slice_of("nope")

    def test_columns_contiguous_is_slice(self, rng):
        layout = StateLayout.from_state(_mixed_state(rng))
        cols = layout.columns(["fc.weight", "fc.bias"])
        assert isinstance(cols, slice)
        assert cols.stop == layout.n_params  # final-layer keys sit last

    def test_columns_gap_is_index_array(self, rng):
        layout = StateLayout.from_state(_mixed_state(rng))
        cols = layout.columns(["conv.bias", "fc.bias"])
        assert isinstance(cols, np.ndarray)
        expected = np.concatenate(
            [
                np.arange(s.start, s.stop)
                for s in (layout.slice_of("conv.bias"), layout.slice_of("fc.bias"))
            ]
        )
        np.testing.assert_array_equal(cols, expected)

    def test_wire_dtype_widest(self, rng):
        mixed = StateLayout.from_state(_mixed_state(rng))
        assert mixed.wire_dtype == np.dtype(np.float64)
        f32_only = StateLayout.from_state(
            OrderedDict(a=np.zeros(3, np.float32), b=np.zeros(2, np.float32))
        )
        assert f32_only.wire_dtype == np.dtype(np.float32)

    def test_rejects_non_float(self):
        with pytest.raises(TypeError, match="losslessly"):
            StateLayout.from_state(OrderedDict(a=np.zeros(3, np.int64)))

    def test_from_model_matches_from_state(self, rng):
        model = lenet5((1, 28, 28), 10, rng)
        a = StateLayout.from_model(model)
        b = StateLayout.from_state(model.state_dict())
        assert a == b
        assert a.n_params == model.num_parameters()

    def test_picklable(self, rng):
        import pickle

        layout = StateLayout.from_state(_mixed_state(rng))
        clone = pickle.loads(pickle.dumps(layout))
        assert clone == layout
        assert clone.slice_of("fc.bias") == layout.slice_of("fc.bias")


class TestPackUnpack:
    def test_round_trip_exact(self, rng):
        state = _mixed_state(rng)
        layout = StateLayout.from_state(state)
        back = unpack_state(pack_state(state, layout), layout)
        assert list(back) == list(state)
        for k in state:
            assert back[k].dtype == state[k].dtype
            assert back[k].shape == state[k].shape
            np.testing.assert_array_equal(back[k], state[k])
            assert back[k].flags["C_CONTIGUOUS"]

    def test_non_contiguous_inputs(self, rng):
        base = rng.standard_normal((8, 6)).astype(np.float32)
        state = OrderedDict(
            [
                ("strided", base[::2]),            # row-strided view
                ("transposed", base.T),            # F-ordered view
                ("reversed", base[0, ::-1]),       # negative stride
            ]
        )
        layout = StateLayout.from_state(state)
        back = unpack_state(pack_state(state, layout), layout)
        for k in state:
            np.testing.assert_array_equal(back[k], np.ascontiguousarray(state[k]))

    def test_pack_matches_flatten_state(self, rng):
        # flatten_state is the pre-existing, well-tested oracle.
        state = _mixed_state(rng)
        layout = StateLayout.from_state(state)
        np.testing.assert_array_equal(
            pack_state(state, layout), flatten_state(state)
        )

    def test_key_order_mismatch_raises(self, rng):
        state = _mixed_state(rng)
        layout = StateLayout.from_state(state)
        reordered = OrderedDict(reversed(list(state.items())))
        with pytest.raises(KeyError):
            pack_state(reordered, layout)

    def test_equal_size_shape_mismatch_raises(self, rng):
        """A transposed same-size tensor must be rejected, not scrambled."""
        state = _mixed_state(rng)
        layout = StateLayout.from_state(state)
        bad = OrderedDict(state)
        bad["fc.weight"] = np.ascontiguousarray(state["fc.weight"].T)
        with pytest.raises(ValueError, match="shape"):
            pack_state(bad, layout)
        with pytest.raises(ValueError, match="shape"):
            weighted_average([state, bad], [1, 1])

    def test_pack_states_cohort(self, rng):
        template = _mixed_state(rng)
        states = [_like(template, rng) for _ in range(5)]
        matrix, layout = pack_states(states)
        assert matrix.shape == (5, layout.n_params)
        assert matrix.dtype == np.float64
        assert matrix.flags["C_CONTIGUOUS"]
        for i, s in enumerate(states):
            np.testing.assert_array_equal(matrix[i], flatten_state(s))

    def test_unpack_wrong_length(self, rng):
        layout = StateLayout.from_state(_mixed_state(rng))
        with pytest.raises(ValueError, match="expected"):
            unpack_state(np.zeros(layout.n_params + 1), layout)

    def test_unpack_keys_partial(self, rng):
        state = _mixed_state(rng)
        layout = StateLayout.from_state(state)
        keys = ["fc.weight", "fc.bias"]
        vec = pack_state(state, layout)[layout.columns(keys)]
        part = unpack_keys(vec, layout, keys)
        assert list(part) == keys
        for k in keys:
            assert part[k].dtype == state[k].dtype
            np.testing.assert_array_equal(part[k], state[k])

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=6),
        dtype_bits=st.lists(st.sampled_from([16, 32, 64]), min_size=6, max_size=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_round_trip_property(self, sizes, dtype_bits, seed):
        """pack ∘ unpack is the identity for any float state."""
        rng = np.random.default_rng(seed)
        dtypes = {16: np.float16, 32: np.float32, 64: np.float64}
        state = OrderedDict(
            (
                f"k{i}",
                rng.standard_normal(n).astype(dtypes[dtype_bits[i % 6]]),
            )
            for i, n in enumerate(sizes)
        )
        layout = StateLayout.from_state(state)
        back = unpack_state(pack_state(state, layout), layout)
        assert list(back) == list(state)
        for k in state:
            assert back[k].dtype == state[k].dtype
            np.testing.assert_array_equal(back[k], state[k])


class TestPackedWeightedAverage:
    def test_bit_identical_to_dict_api(self, rng):
        """The dict API is a view over the packed kernel — exact equality."""
        template = _mixed_state(rng)
        for n in (1, 3, 16):
            states = [_like(template, rng) for _ in range(n)]
            weights = rng.integers(1, 50, size=n)
            matrix, layout = pack_states(states)
            packed = unpack_state(
                packed_weighted_average(matrix, weights), layout
            )
            via_dict = weighted_average(states, weights)
            assert list(packed) == list(via_dict)
            for k in packed:
                assert packed[k].dtype == via_dict[k].dtype
                np.testing.assert_array_equal(packed[k], via_dict[k])

    def test_matches_legacy_loop(self, rng):
        """GEMV vs the per-key reference loop: equal to float64 round-off."""
        template = _mixed_state(rng)
        states = [_like(template, rng) for _ in range(8)]
        weights = rng.integers(1, 50, size=8)
        legacy = weighted_average_dict(states, weights)
        packed = weighted_average(states, weights)
        for k in legacy:
            np.testing.assert_allclose(
                packed[k].astype(np.float64),
                legacy[k].astype(np.float64),
                rtol=1e-12,
                atol=1e-12,
            )

    def test_weight_normalisation_identical(self, rng):
        template = _mixed_state(rng)
        states = [_like(template, rng) for _ in range(3)]
        out = weighted_average(states, [2, 2, 2])
        uniform = weighted_average(states, [1, 1, 1])
        for k in out:
            np.testing.assert_array_equal(out[k], uniform[k])

    def test_packed_validation(self, rng):
        X = rng.standard_normal((3, 10))
        with pytest.raises(ValueError, match="weights"):
            packed_weighted_average(X, [1.0])
        with pytest.raises(ValueError, match="non-negative"):
            packed_weighted_average(X, [1.0, -1.0, 1.0])
        with pytest.raises(ValueError, match="positive"):
            packed_weighted_average(X, [0.0, 0.0, 0.0])
        with pytest.raises(ValueError, match="zero states"):
            packed_weighted_average(np.empty((0, 10)), [])
        with pytest.raises(ValueError, match=r"\(n, p\)"):
            packed_weighted_average(np.zeros(10), [1.0])


class TestPackedWeightMatrix:
    def test_matches_dict_weight_matrix(self, rng):
        template = _mixed_state(rng)
        states = [_like(template, rng) for _ in range(6)]
        matrix, layout = pack_states(states)
        for keys in (
            ["fc.weight", "fc.bias"],
            ["conv.weight"],
            ["conv.bias", "fc.bias"],          # non-contiguous selection
            ["fc.bias", "fc.weight"],          # selection order respected
        ):
            np.testing.assert_array_equal(
                packed_weight_matrix(matrix, layout, keys),
                weight_matrix(states, keys),
            )

    def test_contiguous_selection_is_view(self, rng):
        template = _mixed_state(rng)
        states = [_like(template, rng) for _ in range(4)]
        matrix, layout = pack_states(states)
        w = packed_weight_matrix(matrix, layout, ["fc.weight", "fc.bias"])
        assert np.shares_memory(w, matrix)  # zero-copy column slice

    def test_shape_validation(self, rng):
        layout = StateLayout.from_state(_mixed_state(rng))
        with pytest.raises(ValueError, match="packed cohort"):
            packed_weight_matrix(np.zeros((2, 3)), layout, ["fc.bias"])


class TestFlatPayload:
    def test_params_in_layout(self, rng):
        state = _mixed_state(rng)
        layout = StateLayout.from_state(state)
        assert params_in_layout(layout) == layout.n_params
        assert params_in_layout(layout, ["fc.weight", "fc.bias"]) == (
            state["fc.weight"].size + state["fc.bias"].size
        )

    def test_encode_decode_round_trip_float32_model(self, rng):
        model = lenet5((1, 28, 28), 10, rng)
        layout = StateLayout.from_model(model)
        vec = pack_state(model.state_dict(), layout)
        buf = encode_flat_payload(vec, layout)
        assert len(buf) == flat_payload_nbytes(layout)
        assert layout.wire_dtype == np.dtype(np.float32)  # half of float64
        np.testing.assert_array_equal(decode_flat_payload(buf, layout), vec)

    def test_encode_decode_mixed_dtypes_use_float64(self, rng):
        state = _mixed_state(rng)
        layout = StateLayout.from_state(state)
        vec = pack_state(state, layout)
        buf = encode_flat_payload(vec, layout)
        assert layout.wire_dtype == np.dtype(np.float64)
        np.testing.assert_array_equal(decode_flat_payload(buf, layout), vec)

    def test_length_validation(self, rng):
        layout = StateLayout.from_state(_mixed_state(rng))
        with pytest.raises(ValueError, match="expected"):
            encode_flat_payload(np.zeros(3), layout)
        with pytest.raises(ValueError, match="expected"):
            decode_flat_payload(b"\0" * 8, layout)


class TestFlatProxAnchor:
    def test_set_anchor_flat_matches_from_params(self, rng):
        model = lenet5((1, 28, 28), 10, rng)
        layout = StateLayout.from_model(model)
        vec = pack_state(model.state_dict(), layout)

        opt_a = ProximalSGD(model.parameters(), lr=0.1, mu=0.5)
        opt_a.set_anchor_from_params()
        opt_b = ProximalSGD(model.parameters(), lr=0.1, mu=0.5)
        opt_b.set_anchor_flat(vec, layout)

        assert len(opt_a._anchor) == len(opt_b._anchor)
        for a, b, p in zip(opt_a._anchor, opt_b._anchor, model.parameters()):
            assert b.dtype == p.data.dtype
            np.testing.assert_array_equal(a, b)

    def test_set_anchor_flat_validates(self, rng):
        model = lenet5((1, 28, 28), 10, rng)
        layout = StateLayout.from_model(model)
        opt = ProximalSGD(model.parameters()[:2], lr=0.1, mu=0.5)
        with pytest.raises(ValueError, match="entries"):
            opt.set_anchor_flat(np.zeros(layout.n_params), layout)
