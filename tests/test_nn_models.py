"""Model zoo: shapes, layer counts, registry, layer selection helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import (
    available_models,
    build_model,
    cnn_small,
    final_linear_name,
    lenet5,
    minivgg,
    mlp,
    parameterized_layers,
    vgg16_style,
)


class TestLeNet5:
    def test_cifar_shape(self, rng):
        model = lenet5((3, 32, 32), 10, rng)
        out = model.forward(rng.standard_normal((2, 3, 32, 32)).astype(np.float32))
        assert out.shape == (2, 10)

    def test_mnist_shape_uses_padding(self, rng):
        model = lenet5((1, 28, 28), 10, rng)
        out = model.forward(rng.standard_normal((2, 1, 28, 28)).astype(np.float32))
        assert out.shape == (2, 10)

    def test_parameter_count_32(self, rng):
        # Classic LeNet-5 on 3x32x32/10 classes:
        # conv1 3*6*25+6, conv2 6*16*25+16, fc 400*120+120, 120*84+84, 84*10+10
        model = lenet5((3, 32, 32), 10, rng)
        expected = (3 * 6 * 25 + 6) + (6 * 16 * 25 + 16) + (400 * 120 + 120) + (
            120 * 84 + 84
        ) + (84 * 10 + 10)
        assert model.num_parameters() == expected

    def test_five_weighted_layers(self, rng):
        assert len(parameterized_layers(lenet5((1, 28, 28), 10, rng))) == 5

    def test_tanh_avgpool_variant(self, rng):
        model = lenet5((1, 28, 28), 10, rng, activation="tanh", pool="avg")
        out = model.forward(rng.standard_normal((1, 1, 28, 28)).astype(np.float32))
        assert out.shape == (1, 10)

    def test_invalid_pool_raises(self, rng):
        with pytest.raises(ValueError, match="pool"):
            lenet5((1, 28, 28), 10, rng, pool="bogus")


class TestOtherModels:
    def test_mlp_shapes(self, rng):
        model = mlp((1, 8, 8), 5, rng, hidden=(16,))
        out = model.forward(rng.standard_normal((3, 1, 8, 8)).astype(np.float32))
        assert out.shape == (3, 5)

    def test_cnn_small(self, rng):
        model = cnn_small((3, 16, 16), 10, rng, width=4, fc_dim=8)
        out = model.forward(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert out.shape == (2, 10)

    def test_minivgg_custom_stages(self, rng):
        model = minivgg((1, 16, 16), 4, rng, stage_widths=((4,), (8,)), fc_dims=(16,))
        out = model.forward(rng.standard_normal((2, 1, 16, 16)).astype(np.float32))
        assert out.shape == (2, 4)

    def test_minivgg_too_many_pools_raises(self, rng):
        with pytest.raises(ValueError, match="too small"):
            minivgg((1, 4, 4), 4, rng, stage_widths=((4,), (4,), (4,), (4,)))

    def test_vgg16_style_has_16_weighted_layers(self, rng):
        model = vgg16_style((3, 32, 32), 10, rng)
        assert len(parameterized_layers(model)) == 16

    def test_vgg16_style_small_input_raises(self, rng):
        with pytest.raises(ValueError, match="32x32"):
            vgg16_style((3, 16, 16), 10, rng)

    def test_vgg16_forward(self, rng):
        model = vgg16_style((3, 32, 32), 10, rng, base_width=2, fc_width=8)
        out = model.forward(rng.standard_normal((1, 3, 32, 32)).astype(np.float32))
        assert out.shape == (1, 10)


class TestRegistry:
    def test_available(self):
        assert set(available_models()) == {
            "lenet5",
            "mlp",
            "cnn_small",
            "minivgg",
            "vgg16_style",
            "resnet_tiny",
        }

    def test_build_by_name(self, rng):
        model = build_model("lenet5", (1, 28, 28), 10, rng)
        assert model.arch == "lenet5"
        assert model.input_shape == (1, 28, 28)
        assert model.n_classes == 10

    def test_unknown_raises(self, rng):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("resnet", (1, 28, 28), 10, rng)

    def test_deterministic_init(self):
        a = build_model("lenet5", (1, 28, 28), 10, np.random.default_rng(5))
        b = build_model("lenet5", (1, 28, 28), 10, np.random.default_rng(5))
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)


class TestLayerHelpers:
    def test_final_linear_name(self, rng):
        assert final_linear_name(lenet5((1, 28, 28), 10, rng)) == "classifier"
        assert final_linear_name(mlp((1, 4, 4), 3, rng)) == "classifier"

    def test_final_linear_no_linear_raises(self, rng):
        from repro.nn.layers import ReLU
        from repro.nn.module import Sequential

        with pytest.raises(ValueError, match="no Linear"):
            final_linear_name(Sequential(("act", ReLU())))

    def test_parameterized_layer_order(self, rng):
        model = lenet5((1, 28, 28), 10, rng)
        names = [n for n, _ in parameterized_layers(model)]
        assert names == ["conv1", "conv2", "fc1", "fc2", "classifier"]
