"""Synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    SPECS,
    DatasetSpec,
    available_datasets,
    class_templates,
    generate_dataset,
    get_spec,
    make_dataset,
)


class TestSpecs:
    def test_registry_names(self):
        assert available_datasets() == ["cifar10_like", "fmnist_like", "svhn_like"]

    @pytest.mark.parametrize(
        "alias,canonical",
        [("cifar10", "cifar10_like"), ("FMNIST", "fmnist_like"), ("svhn", "svhn_like")],
    )
    def test_aliases(self, alias, canonical):
        assert get_spec(alias).name == canonical

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            get_spec("imagenet")

    def test_shapes_match_real_datasets(self):
        assert SPECS["cifar10_like"].shape == (3, 32, 32)
        assert SPECS["fmnist_like"].shape == (1, 28, 28)
        assert SPECS["svhn_like"].shape == (3, 32, 32)

    def test_grid_must_divide(self):
        with pytest.raises(ValueError, match="divide"):
            DatasetSpec(name="bad", shape=(1, 28, 28), template_grid=5)

    def test_archetype_weight_range(self):
        with pytest.raises(ValueError, match="archetype_weight"):
            DatasetSpec(name="bad", shape=(1, 28, 28), n_archetypes=2, archetype_weight=1.0)


class TestTemplates:
    def test_shape(self):
        spec = SPECS["fmnist_like"]
        t = class_templates(spec)
        assert t.shape == (10, 1, 28, 28)

    def test_deterministic_across_calls(self):
        spec = SPECS["cifar10_like"]
        np.testing.assert_array_equal(class_templates(spec), class_templates(spec))

    def test_archetype_siblings_are_closer(self):
        spec = SPECS["cifar10_like"]  # n_archetypes=5: siblings are (c, c+5)
        t = class_templates(spec).reshape(10, -1)
        sibling = np.linalg.norm(t[0] - t[5])
        cross = np.linalg.norm(t[0] - t[6])
        assert sibling < cross

    def test_no_archetypes_when_disabled(self):
        spec = DatasetSpec(name="plain", shape=(1, 28, 28), n_archetypes=0)
        t = class_templates(spec).reshape(10, -1)
        # Without archetypes, sibling pairs are no closer than others.
        sibling = np.linalg.norm(t[0] - t[5])
        cross = np.linalg.norm(t[0] - t[6])
        assert abs(sibling - cross) < max(sibling, cross)  # same order


class TestGeneration:
    def test_shapes_and_dtypes(self):
        ds = make_dataset("fmnist", 100, 0)
        assert ds.images.shape == (100, 1, 28, 28)
        assert ds.images.dtype == np.float32
        assert ds.labels.dtype == np.int64
        assert ds.n_classes == 10

    def test_standardised(self):
        ds = make_dataset("cifar10", 500, 0)
        assert abs(float(ds.images.mean())) < 1e-5
        assert float(ds.images.std()) == pytest.approx(1.0, abs=1e-4)

    def test_deterministic_in_seed(self):
        a = make_dataset("svhn", 50, 42)
        b = make_dataset("svhn", 50, 42)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_dataset("svhn", 50, 1)
        b = make_dataset("svhn", 50, 2)
        assert not np.array_equal(a.images, b.images)

    def test_pinned_labels(self):
        labels = np.array([0, 1, 2, 3, 4])
        ds = generate_dataset(SPECS["fmnist_like"], 5, 0, labels=labels)
        np.testing.assert_array_equal(ds.labels, labels)

    def test_pinned_labels_validation(self):
        with pytest.raises(ValueError, match="shape"):
            generate_dataset(SPECS["fmnist_like"], 5, 0, labels=np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="out of range"):
            generate_dataset(
                SPECS["fmnist_like"], 2, 0, labels=np.array([0, 99])
            )

    def test_class_signal_present(self):
        """Same-class samples must be more similar than cross-class ones."""
        labels = np.array([3] * 20 + [7] * 20)
        ds = generate_dataset(SPECS["fmnist_like"], 40, 0, labels=labels)
        flat = ds.images.reshape(40, -1)
        mean3 = flat[:20].mean(axis=0)
        mean7 = flat[20:].mean(axis=0)
        # Class means separated by more than their dispersion says the
        # class signal survives noise.
        assert np.linalg.norm(mean3 - mean7) > 0.5 * flat[:20].std(axis=0).mean()

    def test_overrides(self):
        ds = make_dataset("fmnist", 20, 0, noise_std=0.0, shift_max=0, deform_scale=0.0)
        # With all randomness off, same-class samples are identical.
        labels = ds.labels
        for c in np.unique(labels):
            group = ds.images[labels == c]
            if len(group) > 1:
                np.testing.assert_allclose(group[0], group[1], atol=1e-6)

    def test_nonpositive_n_raises(self):
        with pytest.raises(ValueError, match="n_samples"):
            generate_dataset(SPECS["fmnist_like"], 0, 0)
