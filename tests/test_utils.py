"""Utility substrate: RNG discipline, tables, timers, serialization, validation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.utils.logging import RoundLogger, enable_console_logging, get_logger
from repro.utils.rng import (
    batched_permutation,
    check_seed_list,
    make_rng,
    rng_for,
    spawn_rngs,
    spawn_seeds,
)
from repro.utils.serialization import (
    load_arrays,
    load_json,
    save_arrays,
    save_json,
    to_jsonable,
)
from repro.utils.tables import Table, format_mean_std, render_matrix
from repro.utils.timer import StageTimer, Timer, profiled
from repro.utils.validation import (
    check_array,
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
    check_probability_vector,
    check_square_matrix,
)


class TestRng:
    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_rng_for_stateless_and_keyed(self):
        a1 = rng_for(7, 1, 2).standard_normal(4)
        a2 = rng_for(7, 1, 2).standard_normal(4)
        b = rng_for(7, 1, 3).standard_normal(4)
        np.testing.assert_array_equal(a1, a2)
        assert not np.array_equal(a1, b)

    def test_spawn_rngs_independent(self):
        r1, r2 = spawn_rngs(0, 2)
        assert not np.array_equal(r1.standard_normal(8), r2.standard_normal(8))

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(5, 3) == spawn_seeds(5, 3)
        assert len(set(spawn_seeds(5, 10))) == 10

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_batched_permutation_covers(self):
        rng = make_rng(0)
        batches = list(batched_permutation(rng, 10, 3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        np.testing.assert_array_equal(np.sort(np.concatenate(batches)), np.arange(10))

    def test_check_seed_list(self):
        assert check_seed_list([1, 2, 3]) == [1, 2, 3]
        with pytest.raises(ValueError, match="duplicate"):
            check_seed_list([1, 1])


class TestTables:
    def test_render_alignment(self):
        t = Table(title="demo", columns=["Method", "Acc"])
        t.add_row(["fedavg", "38.25 ± 2.98"])
        t.add_row(["fedclust", "60.25 ± 0.58"])
        text = t.render()
        assert "demo" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[1:4]}) <= 2  # aligned rules

    def test_row_width_mismatch_raises(self):
        t = Table(title="x", columns=["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row(["only-one"])

    def test_markdown(self):
        t = Table(title="x", columns=["a", "b"])
        t.add_row(["1", "2"])
        md = t.to_markdown()
        assert md.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in md

    def test_format_mean_std(self):
        assert format_mean_std(60.254, 0.579) == "60.25 ± 0.58"

    def test_render_matrix_values(self):
        text = render_matrix(np.array([[0.0, 1.5], [1.5, 0.0]]), digits=1)
        assert "1.5" in text

    def test_render_matrix_shade(self):
        text = render_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]), shade=True)
        assert "█" in text  # small distances shaded dark

    def test_render_matrix_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            render_matrix(np.zeros(3))
        with pytest.raises(ValueError, match="row_labels"):
            render_matrix(np.zeros((2, 2)), row_labels=["a"])


class TestTimers:
    def test_timer_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.calls == 2
        assert t.total >= 0
        assert t.mean == pytest.approx(t.total / 2)

    def test_stage_timer(self):
        st = StageTimer()
        with st.stage("train"):
            pass
        with st.stage("train"):
            pass
        with st.stage("eval"):
            pass
        summary = st.summary()
        assert set(summary) == {"train", "eval"}
        assert "train" in st.report()

    def test_profiled_captures(self):
        with profiled() as report:
            sum(i * i for i in range(100))
        assert "function calls" in report.getvalue()


class TestSerialization:
    def test_to_jsonable_numpy(self):
        payload = to_jsonable(
            {"a": np.float32(1.5), "b": np.arange(3), "c": [np.int64(2)], "d": None}
        )
        assert json.dumps(payload)  # round-trippable
        assert payload["a"] == 1.5
        assert payload["b"] == [0, 1, 2]

    def test_to_jsonable_rejects_unknown(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_json_roundtrip(self, tmp_path):
        path = save_json(tmp_path / "out" / "r.json", {"x": np.float64(2.5)})
        assert load_json(path) == {"x": 2.5}

    def test_arrays_roundtrip(self, tmp_path):
        a = np.arange(6).reshape(2, 3)
        path = save_arrays(tmp_path / "arrays.npz", curve=a)
        out = load_arrays(path)
        np.testing.assert_array_equal(out["curve"], a)


class TestValidation:
    def test_positive(self):
        assert check_positive("x", 3) == 3
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_fraction(self):
        assert check_fraction("", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction("", 0.0)
        assert check_fraction("", 0.0, inclusive_low=True) == 0.0

    def test_check_in(self):
        assert check_in("m", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError, match="one of"):
            check_in("m", "c", ("a", "b"))

    def test_check_array(self):
        with pytest.raises(ValueError, match="2-D"):
            check_array("x", np.zeros(3), ndim=2)
        with pytest.raises(ValueError, match="empty"):
            check_array("x", np.zeros(0))
        with pytest.raises(ValueError, match="dtype"):
            check_array("x", np.zeros(3, dtype=int), dtype_kind="")

    def test_square_matrix(self):
        with pytest.raises(ValueError, match="square"):
            check_square_matrix("m", np.zeros((2, 3)))

    def test_probability_vector(self):
        check_probability_vector("p", np.array([0.5, 0.5]))
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector("p", np.array([0.5, 0.6]))
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector("p", np.array([-0.5, 1.5]))


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("fl").name == "repro.fl"
        assert get_logger().name == "repro"

    def test_enable_console_idempotent(self):
        logger = enable_console_logging()
        n = len(logger.handlers)
        enable_console_logging()
        assert len(logger.handlers) == n

    def test_round_logger_throttles(self):
        lines = []
        rl = RoundLogger(total_rounds=100, min_interval=3600, emit=lines.append)
        for i in range(1, 100):
            rl.log(i, "x")
        assert len(lines) == 1  # first only; the rest throttled
        rl.log(100, "final")
        assert len(lines) == 2  # final round always emitted
