"""Property tests for the v2 scenario middleware primitives.

Two satellite contracts from the middleware-v2 work:

* **Trace round-trip** — an :class:`repro.fl.trace.AvailabilityTrace`
  survives ``to_dict → JSON → from_dict`` (and ``save → load``) with
  identical per-(client, round) eligibility.
* **Budget masks** — :func:`repro.fl.train_flat.plan_cohort_schedule`
  under per-client step caps: a zero-budget client provably has no
  active step anywhere in the lockstep schedule, every client takes
  exactly ``min(natural steps, budget)`` steps, and the sum of
  per-client steps is the FedNova renormalisation denominator the
  engine's steps-taken weights produce.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.config import TrainConfig
from repro.fl.train_flat import plan_cohort_schedule
from repro.fl.trace import AvailabilityTrace
from repro.utils.rng import rng_for

# ----------------------------------------------------------------------
# Trace round-trip
# ----------------------------------------------------------------------
trace_mappings = st.dictionaries(
    keys=st.integers(min_value=0, max_value=15),
    values=st.sets(st.integers(min_value=1, max_value=12), max_size=8),
    max_size=8,
)


class TestTraceRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(mapping=trace_mappings)
    def test_dict_round_trip_preserves_eligibility(self, mapping):
        trace = AvailabilityTrace(mapping)
        payload = json.loads(json.dumps(trace.to_dict()))
        loaded = AvailabilityTrace.from_dict(payload)
        assert loaded == trace
        for cid in range(16):
            for round_index in range(1, 14):
                assert loaded.available(cid, round_index) == trace.available(
                    cid, round_index
                )

    @settings(max_examples=20, deadline=None)
    @given(mapping=trace_mappings)
    def test_file_round_trip(self, mapping):
        trace = AvailabilityTrace(mapping)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "trace.json"
            trace.save(path)
            assert AvailabilityTrace.load(path) == trace

    def test_unlisted_clients_are_always_available(self):
        trace = AvailabilityTrace({3: [2]})
        assert trace.available(0, 1) and trace.available(0, 99)
        assert trace.available(3, 2) and not trace.available(3, 1)

    def test_format_tag_is_validated(self):
        with pytest.raises(ValueError, match="unsupported trace format"):
            AvailabilityTrace.from_dict({"format": "bogus", "clients": {}})
        with pytest.raises(ValueError, match="'clients' mapping"):
            AvailabilityTrace.from_dict({})

    @settings(max_examples=30, deadline=None)
    @given(
        n_clients=st.integers(min_value=1, max_value=10),
        n_rounds=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_from_events_matches_event_semantics(self, n_clients, n_rounds, data):
        arrivals = data.draw(
            st.dictionaries(
                st.integers(0, n_clients - 1), st.integers(1, n_rounds), max_size=4
            )
        )
        departures = {}
        for cid, dep in data.draw(
            st.dictionaries(
                st.integers(0, n_clients - 1),
                st.integers(2, n_rounds + 1),
                max_size=4,
            )
        ).items():
            if dep > arrivals.get(cid, 1):
                departures[cid] = dep
        trace = AvailabilityTrace.from_events(
            n_clients, n_rounds, arrivals=arrivals, departures=departures
        )
        for cid in range(n_clients):
            first = arrivals.get(cid, 1)
            last = departures.get(cid, n_rounds + 1) - 1
            for r in range(1, n_rounds + 1):
                assert trace.available(cid, r) == (first <= r <= last)


# ----------------------------------------------------------------------
# Budget masks in the lockstep planner
# ----------------------------------------------------------------------
def _natural_steps(n: int, cfg: TrainConfig) -> int:
    """Steps the serial trainer takes for a size-``n`` dataset."""
    b = min(cfg.batch_size, n)
    per_epoch = -(-n // b)  # ceil
    if cfg.max_batches is not None:
        per_epoch = min(per_epoch, cfg.max_batches)
    total = per_epoch * cfg.local_epochs
    if cfg.max_steps is not None:
        total = min(total, cfg.max_steps)
    return total


cohorts = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=70),  # dataset size
        st.one_of(st.none(), st.integers(min_value=0, max_value=9)),  # budget
    ),
    min_size=1,
    max_size=6,
)


class TestBudgetMasks:
    @settings(max_examples=60, deadline=None)
    @given(
        cohort=cohorts,
        local_epochs=st.integers(min_value=1, max_value=3),
        batch_size=st.integers(min_value=1, max_value=32),
    )
    def test_budgets_truncate_schedules_exactly(
        self, cohort, local_epochs, batch_size
    ):
        sizes = [n for n, _ in cohort]
        budgets = [b for _, b in cohort]
        cfg = TrainConfig(local_epochs=local_epochs, batch_size=batch_size)
        rngs = [rng_for(0, 1, 1, cid) for cid in range(len(sizes))]
        steps, _ = plan_cohort_schedule(sizes, cfg, rngs, max_steps=budgets)

        taken = np.zeros(len(sizes), dtype=np.int64)
        for step in steps:
            for i, idx in enumerate(step.indices):
                assert step.active[i] == (idx is not None)
                if idx is not None:
                    taken[i] += 1
        for i, (n, budget) in enumerate(cohort):
            expected = _natural_steps(n, cfg)
            if budget is not None:
                expected = min(expected, budget)
            # Exactly min(natural, budget) steps — and a zero-budget
            # client is provably inactive at every lockstep position.
            assert taken[i] == expected
            if budget == 0:
                assert all(not step.active[i] for step in steps)
        # FedNova denominator: steps-taken weights sum to the cohort's
        # total step count.
        assert taken.sum() == sum(step.active.sum() for step in steps)

    @settings(max_examples=30, deadline=None)
    @given(
        cohort=cohorts,
        local_epochs=st.integers(min_value=1, max_value=2),
    )
    def test_none_budgets_match_unbudgeted_plan(self, cohort, local_epochs):
        """An all-``None`` budget vector is exactly the unbudgeted plan."""
        sizes = [n for n, _ in cohort]
        cfg = TrainConfig(local_epochs=local_epochs, batch_size=16)
        plain_steps, plain_width = plan_cohort_schedule(
            sizes, cfg, [rng_for(0, 1, 1, cid) for cid in range(len(sizes))]
        )
        none_steps, none_width = plan_cohort_schedule(
            sizes,
            cfg,
            [rng_for(0, 1, 1, cid) for cid in range(len(sizes))],
            max_steps=[None] * len(sizes),
        )
        assert plain_width == none_width
        assert len(plain_steps) == len(none_steps)
        for a, b in zip(plain_steps, none_steps):
            np.testing.assert_array_equal(a.active, b.active)
            for ia, ib in zip(a.indices, b.indices):
                if ia is None:
                    assert ib is None
                else:
                    np.testing.assert_array_equal(ia, ib)


# ----------------------------------------------------------------------
# Realized-trace capture and replay
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trace_env_factory():
    from repro.data.federation import build_federation
    from repro.fl.simulation import FederatedEnv

    federation = build_federation(
        "cifar10", n_clients=8, n_samples=800, seed=5, partition="label_cluster"
    )

    def make():
        return FederatedEnv(
            federation,
            model_name="mlp",
            model_kwargs={"hidden": (96,)},
            train_cfg=TrainConfig(
                local_epochs=1, batch_size=32, lr=0.05, momentum=0.9
            ),
            seed=2,
        )

    return make


class TestRealizedTrace:
    def test_capture_lists_every_client(self, trace_env_factory):
        from repro.algorithms.registry import make_algorithm
        from repro.fl.rounds import ScenarioConfig

        env = trace_env_factory()
        result = make_algorithm("fedavg").run(
            env,
            n_rounds=4,
            scenario=ScenarioConfig(client_fraction=0.5, failure_rate=0.3),
        )
        trace = result.extras["realized_trace"]
        assert isinstance(trace, AvailabilityTrace)
        # Every client is listed, never-on-time ones with an empty set,
        # so replay treats absence as "unavailable", not "unrestricted".
        assert trace.clients == frozenset(range(8))
        # Survivors = dispatched minus dropped, per round.
        dropped = {
            (r, cid) for r, ids in result.extras["drop_log"] for cid in ids
        }
        for cid in range(8):
            for r in trace.rounds_for(cid):
                assert (r, cid) not in dropped

    def test_replay_reproduces_survivor_cohorts_bit_for_bit(
        self, trace_env_factory
    ):
        """Replaying a captured schedule under a clean scenario (no
        failure/straggler/sampling dice) must put exactly the original
        survivors in every aggregation — same model, same per-client
        accuracy."""
        from repro.algorithms.registry import make_algorithm
        from repro.fl.rounds import ScenarioConfig

        env = trace_env_factory()
        original = make_algorithm("fedavg").run(
            env,
            n_rounds=4,
            scenario=ScenarioConfig(
                client_fraction=0.5, failure_rate=0.3, straggler_rate=0.2
            ),
        )
        trace = original.extras["realized_trace"]
        replay_env = trace_env_factory()
        replayed = make_algorithm("fedavg").run(
            replay_env, n_rounds=4, scenario=ScenarioConfig(trace=trace)
        )
        np.testing.assert_array_equal(
            original.per_client_accuracy, replayed.per_client_accuracy
        )
        # The replay rolled no dice at all.
        assert replayed.extras["drop_log"] == []
        assert replayed.extras["straggler_log"] == []
        # Replay dispatches only the on-time cohort, so it never pays
        # for a dropped or late client's traffic.
        assert (
            replay_env.tracker.total_uploaded <= env.tracker.total_uploaded
        )
        assert (
            replay_env.tracker.total_downloaded
            <= env.tracker.total_downloaded
        )

    @settings(max_examples=40, deadline=None)
    @given(
        participation=st.dictionaries(
            st.integers(min_value=1, max_value=6),  # round
            st.sets(st.integers(min_value=0, max_value=7), min_size=1),
            max_size=6,
        ),
        data=st.data(),
    )
    def test_capture_arithmetic_round_trips(
        self, trace_env_factory, participation, data
    ):
        """realized = participation minus drops minus deadline misses,
        for arbitrary logs — and the capture survives a JSON round
        trip."""
        from repro.fl.rounds import RoundEngine, ScenarioConfig

        engine = RoundEngine(trace_env_factory(), ScenarioConfig())
        engine.participation_log = [
            (r, sorted(ids)) for r, ids in sorted(participation.items())
        ]
        removed: dict[int, set[int]] = {}
        for log_name in ("drop_log", "straggler_log"):
            log = []
            for r, ids in participation.items():
                gone = data.draw(st.sets(st.sampled_from(sorted(ids))))
                if gone:
                    log.append((r, sorted(gone)))
                    for cid in gone:
                        removed.setdefault(cid, set()).add(r)
            setattr(engine, log_name, log)
        trace = engine.realized_trace()
        assert trace.clients == frozenset(range(8))
        for cid in range(8):
            expected = {
                r for r, ids in participation.items() if cid in ids
            } - removed.get(cid, set())
            assert trace.rounds_for(cid) == frozenset(expected)
        assert AvailabilityTrace.from_dict(
            json.loads(json.dumps(trace.to_dict()))
        ) == trace
