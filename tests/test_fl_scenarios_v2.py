"""Property tests for the v2 scenario middleware primitives.

Two satellite contracts from the middleware-v2 work:

* **Trace round-trip** — an :class:`repro.fl.trace.AvailabilityTrace`
  survives ``to_dict → JSON → from_dict`` (and ``save → load``) with
  identical per-(client, round) eligibility.
* **Budget masks** — :func:`repro.fl.train_flat.plan_cohort_schedule`
  under per-client step caps: a zero-budget client provably has no
  active step anywhere in the lockstep schedule, every client takes
  exactly ``min(natural steps, budget)`` steps, and the sum of
  per-client steps is the FedNova renormalisation denominator the
  engine's steps-taken weights produce.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.config import TrainConfig
from repro.fl.train_flat import plan_cohort_schedule
from repro.fl.trace import AvailabilityTrace
from repro.utils.rng import rng_for

# ----------------------------------------------------------------------
# Trace round-trip
# ----------------------------------------------------------------------
trace_mappings = st.dictionaries(
    keys=st.integers(min_value=0, max_value=15),
    values=st.sets(st.integers(min_value=1, max_value=12), max_size=8),
    max_size=8,
)


class TestTraceRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(mapping=trace_mappings)
    def test_dict_round_trip_preserves_eligibility(self, mapping):
        trace = AvailabilityTrace(mapping)
        payload = json.loads(json.dumps(trace.to_dict()))
        loaded = AvailabilityTrace.from_dict(payload)
        assert loaded == trace
        for cid in range(16):
            for round_index in range(1, 14):
                assert loaded.available(cid, round_index) == trace.available(
                    cid, round_index
                )

    @settings(max_examples=20, deadline=None)
    @given(mapping=trace_mappings)
    def test_file_round_trip(self, mapping):
        trace = AvailabilityTrace(mapping)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "trace.json"
            trace.save(path)
            assert AvailabilityTrace.load(path) == trace

    def test_unlisted_clients_are_always_available(self):
        trace = AvailabilityTrace({3: [2]})
        assert trace.available(0, 1) and trace.available(0, 99)
        assert trace.available(3, 2) and not trace.available(3, 1)

    def test_format_tag_is_validated(self):
        with pytest.raises(ValueError, match="unsupported trace format"):
            AvailabilityTrace.from_dict({"format": "bogus", "clients": {}})
        with pytest.raises(ValueError, match="'clients' mapping"):
            AvailabilityTrace.from_dict({})

    @settings(max_examples=30, deadline=None)
    @given(
        n_clients=st.integers(min_value=1, max_value=10),
        n_rounds=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_from_events_matches_event_semantics(self, n_clients, n_rounds, data):
        arrivals = data.draw(
            st.dictionaries(
                st.integers(0, n_clients - 1), st.integers(1, n_rounds), max_size=4
            )
        )
        departures = {}
        for cid, dep in data.draw(
            st.dictionaries(
                st.integers(0, n_clients - 1),
                st.integers(2, n_rounds + 1),
                max_size=4,
            )
        ).items():
            if dep > arrivals.get(cid, 1):
                departures[cid] = dep
        trace = AvailabilityTrace.from_events(
            n_clients, n_rounds, arrivals=arrivals, departures=departures
        )
        for cid in range(n_clients):
            first = arrivals.get(cid, 1)
            last = departures.get(cid, n_rounds + 1) - 1
            for r in range(1, n_rounds + 1):
                assert trace.available(cid, r) == (first <= r <= last)


# ----------------------------------------------------------------------
# Budget masks in the lockstep planner
# ----------------------------------------------------------------------
def _natural_steps(n: int, cfg: TrainConfig) -> int:
    """Steps the serial trainer takes for a size-``n`` dataset."""
    b = min(cfg.batch_size, n)
    per_epoch = -(-n // b)  # ceil
    if cfg.max_batches is not None:
        per_epoch = min(per_epoch, cfg.max_batches)
    total = per_epoch * cfg.local_epochs
    if cfg.max_steps is not None:
        total = min(total, cfg.max_steps)
    return total


cohorts = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=70),  # dataset size
        st.one_of(st.none(), st.integers(min_value=0, max_value=9)),  # budget
    ),
    min_size=1,
    max_size=6,
)


class TestBudgetMasks:
    @settings(max_examples=60, deadline=None)
    @given(
        cohort=cohorts,
        local_epochs=st.integers(min_value=1, max_value=3),
        batch_size=st.integers(min_value=1, max_value=32),
    )
    def test_budgets_truncate_schedules_exactly(
        self, cohort, local_epochs, batch_size
    ):
        sizes = [n for n, _ in cohort]
        budgets = [b for _, b in cohort]
        cfg = TrainConfig(local_epochs=local_epochs, batch_size=batch_size)
        rngs = [rng_for(0, 1, 1, cid) for cid in range(len(sizes))]
        steps, _ = plan_cohort_schedule(sizes, cfg, rngs, max_steps=budgets)

        taken = np.zeros(len(sizes), dtype=np.int64)
        for step in steps:
            for i, idx in enumerate(step.indices):
                assert step.active[i] == (idx is not None)
                if idx is not None:
                    taken[i] += 1
        for i, (n, budget) in enumerate(cohort):
            expected = _natural_steps(n, cfg)
            if budget is not None:
                expected = min(expected, budget)
            # Exactly min(natural, budget) steps — and a zero-budget
            # client is provably inactive at every lockstep position.
            assert taken[i] == expected
            if budget == 0:
                assert all(not step.active[i] for step in steps)
        # FedNova denominator: steps-taken weights sum to the cohort's
        # total step count.
        assert taken.sum() == sum(step.active.sum() for step in steps)

    @settings(max_examples=30, deadline=None)
    @given(
        cohort=cohorts,
        local_epochs=st.integers(min_value=1, max_value=2),
    )
    def test_none_budgets_match_unbudgeted_plan(self, cohort, local_epochs):
        """An all-``None`` budget vector is exactly the unbudgeted plan."""
        sizes = [n for n, _ in cohort]
        cfg = TrainConfig(local_epochs=local_epochs, batch_size=16)
        plain_steps, plain_width = plan_cohort_schedule(
            sizes, cfg, [rng_for(0, 1, 1, cid) for cid in range(len(sizes))]
        )
        none_steps, none_width = plan_cohort_schedule(
            sizes,
            cfg,
            [rng_for(0, 1, 1, cid) for cid in range(len(sizes))],
            max_steps=[None] * len(sizes),
        )
        assert plain_width == none_width
        assert len(plain_steps) == len(none_steps)
        for a, b in zip(plain_steps, none_steps):
            np.testing.assert_array_equal(a.active, b.active)
            for ia, ib in zip(a.indices, b.indices):
                if ia is None:
                    assert ib is None
                else:
                    np.testing.assert_array_equal(ia, ib)
