"""Failure injection and FedClust's straggler tolerance.

Failure policy lives in the round engine now
(``ScenarioConfig(failure_rate=...)``); the deprecated
:class:`FaultyExecutor` shim draws the same seeded stream, so both
paths drop the same clients — a handful of shim tests pin that.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.fedavg import FedAvg
from repro.cluster.metrics import adjusted_rand_index
from repro.core.fedclust import FedClust, FedClustConfig
from repro.fl.failures import FaultyExecutor
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import RoundEngine, ScenarioConfig
from repro.fl.simulation import FederatedEnv

_FEDCLUST = FedClustConfig(warmup_steps=15, warmup_lr=0.01)


def _env(federation, cfg, seed=0):
    return FederatedEnv(
        federation,
        model_name="cnn_small",
        model_kwargs={"width": 4, "fc_dim": 16},
        train_cfg=cfg,
        seed=seed,
    )


def _engine(env, failure_rate):
    return RoundEngine(env, ScenarioConfig(failure_rate=failure_rate))


def _faulty(rate, inner=None):
    with pytest.warns(DeprecationWarning, match="ScenarioConfig"):
        return FaultyExecutor(rate, inner)


class TestFaultyExecutorShim:
    def test_drops_deterministically(self, planted_federation, fast_train_cfg):
        env = _env(planted_federation, fast_train_cfg)
        executor = _faulty(0.5)
        tasks = [
            UpdateTask(cid, env.init_state())
            for cid in range(planted_federation.n_clients)
        ]
        first = [u.client_id for u in executor.run(env, tasks, 1)]
        second = [u.client_id for u in executor.run(env, tasks, 1)]
        assert first == second  # same round → same survivors
        assert len(first) < planted_federation.n_clients

    def test_matches_engine_failure_stream(self, planted_federation, fast_train_cfg):
        """Shim and scenario middleware share the drop stream, so a
        legacy wrapped run and a ScenarioConfig run lose the same
        clients in the same rounds."""
        env = _env(planted_federation, fast_train_cfg)
        executor = _faulty(0.5)
        engine = _engine(env, 0.5)
        tasks = [
            UpdateTask(cid, env.init_state())
            for cid in range(planted_federation.n_clients)
        ]
        for round_index in (1, 2, 5):
            shim_alive = [
                t.client_id for t in executor.survivors(env, tasks, round_index)
            ]
            engine_alive, _ = engine._apply_failures(tasks, round_index)
            assert [t.client_id for t in engine_alive] == shim_alive

    def test_failure_rate_zero_is_transparent(self, planted_federation, fast_train_cfg):
        env = _env(planted_federation, fast_train_cfg)
        executor = _faulty(0.0)
        tasks = [
            UpdateTask(cid, env.init_state())
            for cid in range(planted_federation.n_clients)
        ]
        got = executor.run(env, tasks, 1)
        assert len(got) == planted_federation.n_clients

    def test_someone_always_survives(self, planted_federation, fast_train_cfg):
        env = _env(planted_federation, fast_train_cfg)
        executor = _faulty(0.95)
        tasks = [
            UpdateTask(cid, env.init_state())
            for cid in range(planted_federation.n_clients)
        ]
        for round_index in range(1, 8):
            got = executor.run(env, tasks, round_index)
            assert len(got) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultyExecutor(1.0)
        with pytest.raises(ValueError):
            FaultyExecutor(-0.1)

    @pytest.mark.slow
    def test_fedavg_survives_failures(self, planted_federation, fast_train_cfg):
        env = _env(planted_federation, fast_train_cfg)
        result = FedAvg().run(
            env,
            n_rounds=3,
            eval_every=3,
            scenario=ScenarioConfig(failure_rate=0.3),
        )
        assert result.final_accuracy > 0.2
        assert result.extras["drop_log"]  # failures actually happened


@pytest.mark.slow
class TestStragglerClustering:
    def test_retries_recover_everyone(self, planted_federation, fast_train_cfg):
        """With moderate failures and 3 attempts, all clients usually
        report; labels must then have no fallback assignments."""
        env = _env(planted_federation, fast_train_cfg)
        fitted = FedClust(_FEDCLUST).clustering_round(
            env, engine=_engine(env, 0.3)
        )
        m = planted_federation.n_clients
        assert len(fitted.responders) + len(fitted.stragglers) == m
        assert (fitted.labels >= 0).all()
        # Responders' recovery should still be perfect on planted groups.
        ari = adjusted_rand_index(
            planted_federation.true_groups[fitted.responders],
            fitted.labels[fitted.responders],
        )
        assert ari == 1.0

    def test_heavy_failures_leave_stragglers_with_fallback(
        self, planted_federation, fast_train_cfg
    ):
        config = FedClustConfig(
            warmup_steps=15, warmup_lr=0.01, max_clustering_attempts=1
        )
        env = _env(planted_federation, fast_train_cfg, seed=1)
        fitted = FedClust(config).clustering_round(env, engine=_engine(env, 0.6))
        assert fitted.stragglers  # with one attempt at 60%, someone is dark
        # Stragglers hold a valid (fallback) cluster id.
        assert all(0 <= fitted.labels[s] < fitted.n_clusters for s in fitted.stragglers)

    def test_straggler_can_be_onboarded_as_newcomer(
        self, planted_federation, fast_train_cfg
    ):
        config = FedClustConfig(
            warmup_steps=15, warmup_lr=0.01, max_clustering_attempts=1
        )
        env = _env(planted_federation, fast_train_cfg, seed=1)
        algo = FedClust(config)
        fitted = algo.clustering_round(env, engine=_engine(env, 0.6))
        assert fitted.stragglers
        straggler = fitted.stragglers[0]
        assignment, _ = algo.incorporate_newcomer(
            env,
            fitted,
            planted_federation.clients[straggler].train,
            newcomer_id=straggler,
        )
        # The straggler's true group's responders live in one cluster; the
        # newcomer path must route it there.
        group = planted_federation.true_groups[straggler]
        peers = [
            int(c)
            for c in fitted.responders
            if planted_federation.true_groups[c] == group
        ]
        expected = int(np.bincount(fitted.labels[peers]).argmax())
        assert assignment.cluster == expected

    def test_no_failures_means_no_stragglers(self, small_env):
        fitted = FedClust(_FEDCLUST).clustering_round(small_env)
        assert fitted.stragglers == []
        assert len(fitted.responders) == small_env.federation.n_clients


class TestDendrogram:
    def test_renders_planted_structure(self, rng):
        from repro.cluster.dendrogram import dendrogram_text, leaf_order
        from repro.cluster.distance import pairwise_euclidean
        from repro.cluster.hierarchy import linkage

        points = np.vstack(
            [rng.standard_normal((3, 2)), rng.standard_normal((3, 2)) + 50]
        )
        z = linkage(pairwise_euclidean(points), "average")
        text = dendrogram_text(z)
        # All leaves appear, brackets drawn, heights annotated.
        for i in range(6):
            assert f"c{i}" in text
        assert "┐" in text and "◄" in text

        order = leaf_order(z)
        assert sorted(order) == list(range(6))
        # Planted halves are contiguous in dendrogram order.
        first_half = set(order[:3])
        assert first_half in ({0, 1, 2}, {3, 4, 5})

    def test_custom_labels_and_validation(self, rng):
        from repro.cluster.dendrogram import dendrogram_text
        from repro.cluster.distance import pairwise_euclidean
        from repro.cluster.hierarchy import linkage

        z = linkage(pairwise_euclidean(rng.standard_normal((3, 2))), "single")
        text = dendrogram_text(z, labels=["alpha", "beta", "gamma"])
        assert "alpha" in text
        with pytest.raises(ValueError, match="labels"):
            dendrogram_text(z, labels=["too", "few"])
        with pytest.raises(ValueError, match="linkage"):
            dendrogram_text(np.zeros((2, 3)))


class TestLocalOnly:
    @pytest.mark.slow
    def test_runs_with_zero_communication(self, small_env):
        from repro.algorithms.local_only import LocalOnly

        result = LocalOnly().run(small_env, n_rounds=3, eval_every=3)
        assert small_env.tracker.total_params == 0
        assert result.final_accuracy > 0.3  # local 5-class tasks are learnable
        assert result.n_clusters == small_env.federation.n_clients

    def test_in_registry(self):
        from repro.algorithms.registry import make_algorithm

        assert make_algorithm("local_only").name == "local_only"
