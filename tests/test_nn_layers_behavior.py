"""Layer behaviours beyond gradients: shapes, modes, running statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
)


class TestShapes:
    def test_conv_output_shape(self, rng):
        layer = Conv2d(3, 8, 5, rng, stride=2, padding=2)
        out = layer.forward(rng.standard_normal((4, 3, 32, 32)).astype(np.float32))
        assert out.shape == (4, 8, 16, 16)
        assert layer.output_shape(32, 32) == (16, 16)

    def test_conv_rejects_wrong_channels(self, rng):
        layer = Conv2d(3, 8, 3, rng)
        with pytest.raises(ValueError, match="expected"):
            layer.forward(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_linear_rejects_wrong_width(self, rng):
        layer = Linear(4, 2, rng)
        with pytest.raises(ValueError, match="expected"):
            layer.forward(np.zeros((1, 5), dtype=np.float32))

    def test_pool_shapes(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        assert MaxPool2d(2).forward(x).shape == (2, 3, 4, 4)
        assert AvgPool2d(4).forward(x).shape == (2, 3, 2, 2)
        assert MaxPool2d(3, stride=1).forward(x).shape == (2, 3, 6, 6)

    def test_pool_rejects_3d(self, rng):
        with pytest.raises(ValueError, match="N, C, H, W"):
            MaxPool2d(2).forward(rng.standard_normal((3, 8, 8)))


class TestPoolSemantics:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = AvgPool2d(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_gradient_routing(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        layer = MaxPool2d(2)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        # Gradient lands exactly on the four maxima.
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(grad[0, 0], expected)


class TestActivations:
    def test_relu_clamps(self):
        out = ReLU().forward(np.array([-2.0, 0.0, 3.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 3.0])

    def test_sigmoid_extreme_stability(self):
        out = Sigmoid().forward(np.array([-1e4, 0.0, 1e4]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)


class TestDropout:
    def test_train_scales_survivors(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((200, 50))
        out = layer.forward(x)
        survivors = out[out > 0]
        np.testing.assert_allclose(survivors, 2.0)  # inverted scaling
        assert 0.3 < (out > 0).mean() < 0.7

    def test_eval_is_identity(self, rng):
        layer = Dropout(0.9, rng).eval()
        x = rng.standard_normal((5, 5))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_p_zero_is_identity(self, rng):
        layer = Dropout(0.0, rng)
        x = rng.standard_normal((5, 5))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestBatchNorm:
    def test_train_normalises_batch(self, rng):
        layer = BatchNorm1d(4)
        x = rng.standard_normal((64, 4)) * 5 + 3
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_track(self, rng):
        layer = BatchNorm1d(3)
        for _ in range(200):
            layer.forward(rng.standard_normal((32, 3)) * 2 + 1)
        np.testing.assert_allclose(layer.running_mean, 1.0, atol=0.2)
        np.testing.assert_allclose(layer.running_var, 4.0, rtol=0.25)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm1d(2)
        for _ in range(50):
            layer.forward(rng.standard_normal((32, 2)))
        layer.eval()
        x = rng.standard_normal((4, 2)) + 100  # wildly off-distribution
        out = layer.forward(x)
        # Eval mode must NOT renormalise with the batch's own stats.
        assert out.mean() > 10

    def test_running_stats_not_in_state_dict(self, rng):
        """FedBN convention: buffers stay local, only gamma/beta federate."""
        layer = BatchNorm2d(3)
        keys = [n for n, _ in layer.named_parameters()]
        assert keys == ["gamma", "beta"]

    def test_bn2d_shape_check(self, rng):
        with pytest.raises(ValueError, match="BatchNorm2d"):
            BatchNorm2d(3).forward(np.zeros((2, 4, 5, 5)))

    def test_eval_backward_raises(self, rng):
        layer = BatchNorm1d(2).eval()
        layer.forward(rng.standard_normal((4, 2)))
        with pytest.raises(RuntimeError, match="training-mode"):
            layer.backward(np.ones((4, 2)))

    def test_momentum_validation(self):
        with pytest.raises(ValueError, match="momentum"):
            BatchNorm1d(2, momentum=0.0)
