"""Parallel client executors: identical results across all backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.aggregation import packed_weighted_average
from repro.fl.parallel import (
    ProcessClientExecutor,
    SerialClientExecutor,
    ThreadClientExecutor,
    UpdateTask,
    make_executor,
)
from repro.fl.simulation import FederatedEnv
from repro.nn.state import state_allclose


def _tasks(env):
    init = env.init_state()
    return [UpdateTask(cid, init) for cid in range(env.federation.n_clients)]


class TestExecutorEquivalence:
    def test_thread_matches_serial(self, small_env):
        serial = SerialClientExecutor().run(small_env, _tasks(small_env), 1)
        thread_exec = ThreadClientExecutor(n_workers=4)
        try:
            threaded = thread_exec.run(small_env, _tasks(small_env), 1)
        finally:
            thread_exec.close()
        assert len(serial) == len(threaded)
        for s, t in zip(serial, threaded):
            assert s.client_id == t.client_id
            assert s.mean_loss == pytest.approx(t.mean_loss, rel=1e-6)
            assert state_allclose(s.state, t.state, rtol=1e-6, atol=1e-7)

    @pytest.mark.slow
    def test_process_matches_serial(self, small_env):
        serial = SerialClientExecutor().run(small_env, _tasks(small_env), 1)
        proc_exec = ProcessClientExecutor(n_workers=2)
        try:
            processed = proc_exec.run(small_env, _tasks(small_env), 1)
        finally:
            proc_exec.close()
        for s, p in zip(serial, processed):
            assert state_allclose(s.state, p.state, rtol=1e-6, atol=1e-7)

    def test_serial_is_deterministic_across_calls(self, small_env):
        a = SerialClientExecutor().run(small_env, _tasks(small_env), 1)
        b = SerialClientExecutor().run(small_env, _tasks(small_env), 1)
        for ua, ub in zip(a, b):
            assert state_allclose(ua.state, ub.state, rtol=0, atol=0)

    def test_round_index_changes_stream(self, small_env):
        a = SerialClientExecutor().run(small_env, _tasks(small_env), 1)
        b = SerialClientExecutor().run(small_env, _tasks(small_env), 2)
        # Different round → different shuffling → (almost surely) different state.
        assert not state_allclose(a[0].state, b[0].state)


class TestFlatTransportParity:
    """The flat transport changes no bits, whatever the executor.

    Each executor ships packed vectors (the process pool additionally
    wire-encodes them), so the guarantee under test is strict: the
    per-client flat updates, the unpacked state dicts AND the aggregated
    round result must be *byte-identical* across executor kinds.
    """

    @staticmethod
    def _round(env, executor, round_index=1):
        try:
            updates = executor.run(env, _tasks(env), round_index)
        finally:
            executor.close()
        vector = packed_weighted_average(
            np.stack([u.flat for u in updates]),
            [u.n_samples for u in updates],
        )
        return updates, vector

    def test_updates_carry_consistent_flat(self, small_env):
        updates, _ = self._round(small_env, SerialClientExecutor())
        for u in updates:
            assert u.flat is not None and u.flat.dtype == np.float64
            np.testing.assert_array_equal(u.flat, small_env.layout.pack(u.state))

    def test_thread_round_byte_identical(self, small_env):
        serial_updates, serial_vec = self._round(small_env, SerialClientExecutor())
        thread_updates, thread_vec = self._round(
            small_env, ThreadClientExecutor(n_workers=4)
        )
        for s, t in zip(serial_updates, thread_updates):
            assert s.client_id == t.client_id
            assert s.mean_loss == t.mean_loss
            np.testing.assert_array_equal(s.flat, t.flat)
            assert state_allclose(s.state, t.state, rtol=0, atol=0)
        np.testing.assert_array_equal(serial_vec, thread_vec)

    @pytest.mark.slow
    def test_process_round_byte_identical(self, small_env):
        serial_updates, serial_vec = self._round(small_env, SerialClientExecutor())
        process_updates, process_vec = self._round(
            small_env, ProcessClientExecutor(n_workers=2)
        )
        for s, p in zip(serial_updates, process_updates):
            assert s.client_id == p.client_id
            assert s.mean_loss == p.mean_loss
            np.testing.assert_array_equal(s.flat, p.flat)
            assert state_allclose(s.state, p.state, rtol=0, atol=0)
        np.testing.assert_array_equal(serial_vec, process_vec)

    @pytest.mark.slow
    def test_process_honors_train_cfg_set_after_fork(self, small_env):
        """Workers must use the round's config, not their forked snapshot.

        Regression test for the FedClust warm-up pattern: the pool forks
        on first use, and the parent later swaps ``env.train_cfg`` for a
        round.  The config now rides with each task, so the override must
        reach the workers (it used to be silently ignored — and worse,
        a pool forked *during* an override kept it forever).
        """
        import dataclasses

        tasks = _tasks(small_env)[:2]
        proc = ProcessClientExecutor(n_workers=2)
        try:
            proc.run(small_env, tasks, 1)  # pool forks with the original cfg
            override = dataclasses.replace(
                small_env.train_cfg, local_epochs=2, momentum=0.0
            )
            original = small_env.train_cfg
            small_env.train_cfg = override
            try:
                got = proc.run(small_env, tasks, 2)
                want = SerialClientExecutor().run(small_env, tasks, 2)
            finally:
                small_env.train_cfg = original
        finally:
            proc.close()
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.flat, w.flat)

    @pytest.mark.slow
    def test_process_prox_round_byte_identical(self, small_env):
        """FedProx's flat anchor must not perturb process-pool results."""
        init = small_env.init_state()
        tasks = [
            UpdateTask(cid, init, prox_mu=0.1)
            for cid in range(small_env.federation.n_clients)
        ]
        serial = SerialClientExecutor().run(small_env, tasks, 1)
        proc = ProcessClientExecutor(n_workers=2)
        try:
            processed = proc.run(small_env, tasks, 1)
        finally:
            proc.close()
        for s, p in zip(serial, processed):
            np.testing.assert_array_equal(s.flat, p.flat)


class TestEnvDispatch:
    def test_run_updates_rejects_duplicates(self, small_env):
        init = small_env.init_state()
        with pytest.raises(ValueError, match="duplicate"):
            small_env.run_updates(
                [UpdateTask(0, init), UpdateTask(0, init)], 1
            )

    def test_run_updates_rejects_bad_ids(self, small_env):
        init = small_env.init_state()
        with pytest.raises(ValueError, match="out of range"):
            small_env.run_updates([UpdateTask(99, init)], 1)

    def test_empty_tasks_ok(self, small_env):
        assert small_env.run_updates([], 1) == []


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_executor("serial"), SerialClientExecutor)
        ex = make_executor("thread", n_workers=2)
        assert isinstance(ex, ThreadClientExecutor)
        ex.close()
        ex = make_executor("process", n_workers=2)
        assert isinstance(ex, ProcessClientExecutor)
        ex.close()

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ThreadClientExecutor(n_workers=0)


class TestEnvBasics:
    def test_init_state_is_copy(self, small_env):
        a = small_env.init_state()
        a_key = next(iter(a))
        a[a_key][...] = 1e9
        b = small_env.init_state()
        assert not np.allclose(b[a_key], 1e9)

    def test_make_model_deterministic(self, small_env):
        m1 = small_env.make_model()
        m2 = small_env.make_model()
        for (_, p1), (_, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_final_layer_keys(self, small_env):
        assert small_env.final_layer == "classifier"
        assert small_env.final_layer_keys == ["classifier.weight", "classifier.bias"]

    def test_context_manager_closes(self, planted_federation, fast_train_cfg):
        with FederatedEnv(
            planted_federation,
            model_name="cnn_small",
            model_kwargs={"width": 4, "fc_dim": 16},
            train_cfg=fast_train_cfg,
            executor=ThreadClientExecutor(n_workers=2),
        ) as env:
            env.run_updates(_tasks(env)[:2], 1)
        # pool shut down without error
