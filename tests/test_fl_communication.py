"""Communication accounting."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro.fl.communication import (
    BYTES_PER_PARAM,
    CommunicationTracker,
    params_in_keys,
    params_in_state,
)


class TestCounting:
    def test_params_in_state(self):
        state = OrderedDict([("a", np.zeros((2, 3))), ("b", np.zeros(5))])
        assert params_in_state(state) == 11
        assert params_in_keys(state, ["b"]) == 5

    def test_totals(self):
        tracker = CommunicationTracker()
        tracker.record_download(100)
        tracker.record_upload(40)
        tracker.record_upload(10, phase="clustering")
        assert tracker.total_downloaded == 100
        assert tracker.total_uploaded == 50
        assert tracker.total_params == 150
        assert tracker.total_bytes == 150 * BYTES_PER_PARAM

    def test_phase_buckets(self):
        tracker = CommunicationTracker()
        tracker.record_upload(7, phase="clustering")
        tracker.record_upload(3, phase="training")
        tracker.record_download(5, phase="training")
        assert tracker.uploaded_in("clustering") == 7
        assert tracker.uploaded_in("training") == 3
        assert tracker.downloaded_in("clustering") == 0
        by_phase = tracker.by_phase()
        assert by_phase["clustering"] == {"uploaded": 7, "downloaded": 0}
        assert by_phase["training"] == {"uploaded": 3, "downloaded": 5}

    def test_snapshot(self):
        tracker = CommunicationTracker()
        tracker.record_upload(2)
        snap = tracker.snapshot()
        tracker.record_upload(2)
        assert snap["uploaded"] == 2  # snapshot is immutable

    def test_negative_raises(self):
        tracker = CommunicationTracker()
        with pytest.raises(ValueError):
            tracker.record_upload(-1)
        with pytest.raises(ValueError):
            tracker.record_download(-5)
