"""The FedClust algorithm end to end (small scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.metrics import adjusted_rand_index
from repro.core.fedclust import FedClust, FedClustConfig, resolve_selection_keys
from repro.fl.config import TrainConfig
from repro.fl.simulation import FederatedEnv


@pytest.fixture
def env(planted_federation, fast_train_cfg):
    return FederatedEnv(
        planted_federation,
        model_name="cnn_small",
        model_kwargs={"width": 4, "fc_dim": 16},
        train_cfg=fast_train_cfg,
        seed=0,
    )


@pytest.fixture
def algo():
    return FedClust(FedClustConfig(warmup_steps=15, warmup_lr=0.01))


class TestSelection:
    def test_resolve_final_layer(self, env):
        keys = resolve_selection_keys(env.scratch_model, "final_layer")
        assert keys == ["classifier.weight", "classifier.bias"]

    def test_resolve_all(self, env):
        keys = resolve_selection_keys(env.scratch_model, "all")
        assert len(keys) == len(list(env.scratch_model.named_parameters()))

    def test_resolve_named_and_indexed(self, env):
        assert resolve_selection_keys(env.scratch_model, "layer:conv1") == [
            "conv1.weight",
            "conv1.bias",
        ]
        assert resolve_selection_keys(env.scratch_model, "index:1") == [
            "conv1.weight",
            "conv1.bias",
        ]

    def test_resolve_unknown_raises(self, env):
        with pytest.raises(ValueError, match="unknown weight selection"):
            resolve_selection_keys(env.scratch_model, "magic")


class TestConfig:
    def test_warmup_cfg_overrides(self):
        base = TrainConfig(local_epochs=3, lr=0.1, momentum=0.9)
        cfg = FedClustConfig(warmup_epochs=2, warmup_lr=0.01, warmup_momentum=0.0)
        warm = cfg.warmup_train_cfg(base)
        assert warm.local_epochs == 2
        assert warm.lr == 0.01
        assert warm.momentum == 0.0

    def test_warmup_steps_sets_cap(self):
        base = TrainConfig(local_epochs=1)
        warm = FedClustConfig(warmup_steps=7).warmup_train_cfg(base)
        assert warm.max_steps == 7
        assert warm.local_epochs == 7

    def test_defaults_inherit(self):
        base = TrainConfig(local_epochs=3, lr=0.1, momentum=0.9)
        warm = FedClustConfig(warmup_momentum=None).warmup_train_cfg(base)
        assert warm is base  # no overrides at all

    def test_validation(self):
        with pytest.raises(ValueError):
            FedClustConfig(metric="manhattan")
        with pytest.raises(ValueError):
            FedClustConfig(warmup_epochs=0)
        with pytest.raises(ValueError):
            FedClustConfig(warmup_momentum=-0.1)


class TestClusteringRound:
    def test_recovers_planted_groups(self, env, algo, planted_federation):
        fitted = algo.clustering_round(env)
        assert fitted.n_clusters == 2
        assert (
            adjusted_rand_index(planted_federation.true_groups, fitted.labels) == 1.0
        )

    def test_uploads_only_partial_weights(self, env, algo):
        algo.clustering_round(env)
        m = env.federation.n_clients
        partial = sum(
            env.init_state()[k].size for k in env.final_layer_keys
        )
        assert env.tracker.uploaded_in("clustering") == partial * m
        assert env.tracker.downloaded_in("clustering") == env.n_params * m
        # The upload is a small fraction of a full model.
        assert partial / env.n_params < 0.25

    def test_weight_matrix_dimensions(self, env, algo):
        fitted = algo.clustering_round(env)
        m = env.federation.n_clients
        partial = sum(env.init_state()[k].size for k in env.final_layer_keys)
        assert fitted.weight_matrix.shape == (m, partial)

    def test_train_cfg_restored_after_round(self, env, algo):
        before = env.train_cfg
        algo.clustering_round(env)
        assert env.train_cfg is before

    def test_warm_start_final_layer(self, env):
        algo = FedClust(
            FedClustConfig(
                warmup_steps=15, warmup_lr=0.01, warm_start_final_layer=True
            )
        )
        fitted = algo.clustering_round(env)
        init = env.init_state()
        for state in fitted.cluster_states:
            # Non-final layers match the init exactly...
            for key in init:
                if key in fitted.selection_keys:
                    continue
                np.testing.assert_array_equal(state[key], init[key])
            # ...while the classifier was warm-started away from it.
            assert any(
                not np.allclose(state[k], init[k]) for k in fitted.selection_keys
            )


@pytest.mark.slow
class TestFullRun:
    def test_run_beats_init_and_records_history(self, env, algo):
        result = algo.run(env, n_rounds=4, eval_every=2)
        assert result.history.n_rounds == 4
        assert result.final_accuracy > 0.5
        assert result.cluster_labels is not None
        assert result.n_clusters == 2
        # comm grows monotonically in history
        comm = result.history.comm_curve()
        assert (np.diff(comm) >= 0).all()

    def test_run_requires_two_rounds(self, env, algo):
        with pytest.raises(ValueError, match=">= 2"):
            algo.run(env, n_rounds=1)

    def test_newcomer_assigned_to_true_cluster(
        self, planted_federation, fast_train_cfg
    ):
        # Hold client 7 out, onboard it after training.
        sub = planted_federation.subset(list(range(7)))
        env = FederatedEnv(
            sub,
            model_name="cnn_small",
            model_kwargs={"width": 4, "fc_dim": 16},
            train_cfg=fast_train_cfg,
            seed=0,
        )
        algo = FedClust(FedClustConfig(warmup_steps=15, warmup_lr=0.01))
        result = algo.run(env, n_rounds=3, eval_every=3)
        fitted = result.extras["fitted"]
        newcomer = planted_federation.clients[7]
        newcomer_group = int(planted_federation.true_groups[7])
        assignment, serving_state = algo.incorporate_newcomer(
            env, fitted, newcomer.train, newcomer_id=7
        )
        peers = np.flatnonzero(sub.true_groups == newcomer_group)
        expected = int(np.bincount(result.cluster_labels[peers]).argmax())
        assert assignment.cluster == expected
        assert env.tracker.uploaded_in("newcomer") > 0
        assert set(serving_state.keys()) == set(env.init_state().keys())
