"""Server-side aggregation arithmetic."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro.fl.aggregation import uniform_average, weighted_average


def _state(rng):
    return OrderedDict(
        [("w", rng.standard_normal((3, 2)).astype(np.float32)),
         ("b", rng.standard_normal(2).astype(np.float32))]
    )


class TestWeightedAverage:
    def test_identity_for_single_state(self, rng):
        s = _state(rng)
        out = weighted_average([s], [5.0])
        np.testing.assert_allclose(out["w"], s["w"])

    def test_identical_states_fixed_point(self, rng):
        s = _state(rng)
        out = weighted_average([s, s, s], [1, 2, 3])
        np.testing.assert_allclose(out["w"], s["w"], rtol=1e-6)

    def test_weighting(self, rng):
        a, b = _state(rng), _state(rng)
        out = weighted_average([a, b], [3, 1])
        np.testing.assert_allclose(
            out["w"], 0.75 * a["w"] + 0.25 * b["w"], rtol=1e-6
        )

    def test_matches_fedavg_formula(self, rng):
        states = [_state(rng) for _ in range(4)]
        weights = [10, 20, 30, 40]
        out = weighted_average(states, weights)
        expected = sum(
            (w / 100.0) * s["b"].astype(np.float64) for s, w in zip(states, weights)
        )
        np.testing.assert_allclose(out["b"], expected, rtol=1e-6)

    def test_preserves_dtype(self, rng):
        out = weighted_average([_state(rng), _state(rng)], [1, 1])
        assert out["w"].dtype == np.float32

    def test_zero_weight_client_ignored(self, rng):
        a, b = _state(rng), _state(rng)
        out = weighted_average([a, b], [1, 0])
        np.testing.assert_allclose(out["w"], a["w"], rtol=1e-6)

    def test_validation(self, rng):
        s = _state(rng)
        with pytest.raises(ValueError, match="weights"):
            weighted_average([s], [1, 2])
        with pytest.raises(ValueError, match="zero states"):
            weighted_average([], [])
        with pytest.raises(ValueError, match="non-negative"):
            weighted_average([s, s], [1, -1])
        with pytest.raises(ValueError, match="positive"):
            weighted_average([s, s], [0, 0])

    def test_key_mismatch_raises(self, rng):
        a = _state(rng)
        b = OrderedDict([("w", a["w"])])
        with pytest.raises(KeyError):
            weighted_average([a, b], [1, 1])

    def test_uniform_average(self, rng):
        a, b = _state(rng), _state(rng)
        out = uniform_average([a, b])
        np.testing.assert_allclose(out["w"], 0.5 * (a["w"] + b["w"]), rtol=1e-6)
