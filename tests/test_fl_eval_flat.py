"""Grouped/fused evaluation on the flat plane vs the reference loop.

The contract under test (see ``repro.fl.eval_flat``): per-client
*accuracies* from the grouped path are bit-identical to the serial
per-client reference loop for every grouping shape; *losses* agree to
float64 round-off (same sum, different order); model training mode is
restored through the fused path; and the packed entry point never
materialises a state dict.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import evaluate_assignment, fedavg_round
from repro.fl.aggregation import weighted_average
from repro.fl.eval_flat import (
    evaluate_grouped,
    evaluate_packed,
    fused_evaluate,
    group_by_identity,
    mean_local_accuracy_grouped,
    members_of_labels,
)
from repro.fl.evaluation import evaluate_model, mean_local_accuracy
from repro.nn.models import mlp
from repro.nn.state_flat import StateLayout, pack_state, pack_states, unpack_state
from repro.data.synthetic import make_dataset


@pytest.fixture
def model(rng):
    return mlp((1, 28, 28), 10, rng, hidden=(16,))


@pytest.fixture
def layout(model):
    return StateLayout.from_model(model)


@pytest.fixture
def datasets():
    """Four small sets with sizes that straddle batch boundaries."""
    pool = make_dataset("fmnist", 120, 3, noise_std=0.2)
    cuts = [(0, 17), (17, 47), (47, 52), (52, 120)]  # sizes 17, 30, 5, 68
    return [pool.subset(np.arange(lo, hi)) for lo, hi in cuts]


def _perturbed_states(model, rng, n):
    base = model.state_dict(copy=True)
    return [
        {
            k: v + rng.standard_normal(v.shape).astype(v.dtype) * 0.1
            for k, v in base.items()
        }
        for _ in range(n)
    ]


# ----------------------------------------------------------------------
# Module.load_flat / StateLayout.load_into
# ----------------------------------------------------------------------
class TestLoadFlat:
    def test_bit_identical_to_dict_load(self, model, layout, rng):
        vector = rng.standard_normal(layout.n_params)
        reference = mlp((1, 28, 28), 10, np.random.default_rng(1), hidden=(16,))
        reference.load_state_dict(unpack_state(vector, layout))
        model.load_flat(vector, layout)
        for (_, a), (_, b) in zip(
            model.named_parameters(), reference.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)
            assert a.data.dtype == b.data.dtype

    def test_round_trip(self, model, layout):
        state = model.state_dict(copy=True)
        model.load_flat(pack_state(state, layout), layout)
        for k, v in model.state_dict().items():
            np.testing.assert_array_equal(v, state[k])

    def test_rejects_wrong_length(self, model, layout):
        with pytest.raises(ValueError, match="shape"):
            model.load_flat(np.zeros(layout.n_params + 1), layout)

    def test_rejects_foreign_layout(self, model, rng):
        other = mlp((1, 28, 28), 10, rng, hidden=(16, 8))
        foreign = StateLayout.from_model(other)
        with pytest.raises(KeyError, match="layout mismatch"):
            model.load_flat(np.zeros(foreign.n_params), foreign)

    def test_layout_load_into_alias(self, model, layout, rng):
        vector = rng.standard_normal(layout.n_params)
        layout.load_into(model, vector)
        np.testing.assert_array_equal(
            pack_state(model.state_dict(copy=False), layout),
            pack_state(unpack_state(vector, layout), layout),
        )


# ----------------------------------------------------------------------
# fused_evaluate: one model, many datasets, shared batches
# ----------------------------------------------------------------------
class TestFusedEvaluate:
    def test_matches_reference_per_dataset(self, model, datasets):
        fused = fused_evaluate(model, datasets, batch_size=512)
        for i, dataset in enumerate(datasets):
            ref = evaluate_model(model, dataset, batch_size=512)
            assert fused.accuracy[i] == ref.accuracy
            assert fused.n_correct[i] == ref.n_correct
            assert fused.n_samples[i] == ref.n_samples
            # Same sum, different order *and* accumulator width (the
            # reference loop averages within a batch in float32).
            assert fused.loss[i] == pytest.approx(ref.loss, rel=1e-6)

    @pytest.mark.parametrize("batch_size", [1, 7, 16, 64, 4096])
    def test_batch_boundaries(self, model, datasets, batch_size):
        """Set sizes (17, 30, 5, 68) are not multiples of any of these;
        batches span client boundaries and truncate at the tail."""
        fused = fused_evaluate(model, datasets, batch_size=batch_size)
        ref = fused_evaluate(model, datasets, batch_size=512)
        np.testing.assert_array_equal(fused.n_correct, ref.n_correct)
        np.testing.assert_allclose(fused.loss, ref.loss, rtol=1e-6)

    def test_single_dataset_matches_evaluate_model(self, model, datasets):
        fused = fused_evaluate(model, [datasets[3]], batch_size=32)
        ref = evaluate_model(model, datasets[3], batch_size=32)
        assert fused.accuracy[0] == ref.accuracy
        assert fused.mean_accuracy == ref.accuracy

    def test_restores_training_mode(self, model, datasets):
        model.train()
        fused_evaluate(model, datasets, batch_size=64)
        assert model.training
        model.eval()
        fused_evaluate(model, datasets, batch_size=64)
        assert not model.training

    def test_empty_dataset_rejected(self, model, datasets):
        empty = datasets[0].subset(np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="empty"):
            fused_evaluate(model, [datasets[0], empty])

    def test_no_datasets_rejected(self, model):
        with pytest.raises(ValueError, match="at least one"):
            fused_evaluate(model, [])

    @pytest.mark.parametrize("batch_size", [0, -1])
    def test_nonpositive_batch_size_rejected(self, model, datasets, batch_size):
        with pytest.raises(ValueError, match="batch_size"):
            fused_evaluate(model, datasets, batch_size=batch_size)


# ----------------------------------------------------------------------
# Grouping
# ----------------------------------------------------------------------
class TestGrouping:
    def test_identity_dedup_shared(self, model):
        state = model.state_dict()
        distinct, labels = group_by_identity([state] * 5)
        assert len(distinct) == 1
        np.testing.assert_array_equal(labels, np.zeros(5, dtype=np.int64))

    def test_identity_dedup_distinct(self, model, rng):
        states = _perturbed_states(model, rng, 3)
        distinct, labels = group_by_identity(states)
        assert len(distinct) == 3
        np.testing.assert_array_equal(labels, np.arange(3))

    def test_identity_dedup_mixed(self, model, rng):
        a, b = _perturbed_states(model, rng, 2)
        distinct, labels = group_by_identity([a, b, a, b, a])
        assert len(distinct) == 2
        np.testing.assert_array_equal(labels, [0, 1, 0, 1, 0])

    def test_members_of_labels_validates_range(self):
        with pytest.raises(ValueError, match="outside"):
            members_of_labels(np.array([0, 2]), 2)
        with pytest.raises(ValueError, match="1-D"):
            members_of_labels(np.zeros((2, 2), dtype=np.int64), 2)


# ----------------------------------------------------------------------
# Grouped evaluation vs the per-client reference loop — every grouping
# shape must be bit-identical on accuracies.
# ----------------------------------------------------------------------
class TestGroupedVsLoop:
    @pytest.fixture
    def setup(self, model, rng, datasets):
        states = _perturbed_states(model, rng, 3)
        return model, states, datasets

    def _reference(self, model, per_client_states, datasets):
        return mean_local_accuracy(model, per_client_states, datasets, batch_size=64)

    def test_all_same_state(self, setup):
        model, states, datasets = setup
        labels = np.zeros(len(datasets), dtype=np.int64)
        mean, accs = evaluate_grouped(model, [states[0]], labels, datasets, 64)
        ref_mean, ref_accs = self._reference(model, [states[0]] * 4, datasets)
        np.testing.assert_array_equal(accs, ref_accs)
        assert mean == ref_mean

    def test_one_state_per_client(self, setup):
        model, states, datasets = setup
        per_client = _perturbed_states(model, np.random.default_rng(9), 4)
        labels = np.arange(4, dtype=np.int64)
        mean, accs = evaluate_grouped(model, per_client, labels, datasets, 64)
        ref_mean, ref_accs = self._reference(model, per_client, datasets)
        np.testing.assert_array_equal(accs, ref_accs)
        assert mean == ref_mean

    def test_cluster_labels_with_empty_cluster(self, setup):
        """Labels use clusters {0, 2} of 3 — cluster 1 is never loaded."""
        model, states, datasets = setup
        labels = np.array([0, 2, 0, 2], dtype=np.int64)
        mean, accs = evaluate_grouped(model, states, labels, datasets, 64)
        ref_mean, ref_accs = self._reference(
            model, [states[g] for g in labels], datasets
        )
        np.testing.assert_array_equal(accs, ref_accs)
        assert mean == ref_mean

    def test_packed_rows_match(self, setup):
        model, states, datasets = setup

        class _Env:  # duck-typed FederatedEnv for evaluate_packed
            pass

        env = _Env()
        env.scratch_model = model
        env.layout = StateLayout.from_model(model)

        class _C:
            def __init__(self, test):
                self.test = test

        class _F:
            pass

        env.federation = _F()
        env.federation.clients = [_C(d) for d in datasets]
        labels = np.array([0, 1, 2, 1], dtype=np.int64)
        matrix, _ = pack_states(states, env.layout)
        mean, accs = evaluate_packed(env, matrix, labels, batch_size=64)
        ref_mean, ref_accs = self._reference(
            model, [states[g] for g in labels], datasets
        )
        np.testing.assert_array_equal(accs, ref_accs)
        assert mean == ref_mean
        # A single packed vector is accepted as shape (n_params,).
        one = pack_state(states[0], env.layout)
        mean1, accs1 = evaluate_packed(
            env, one, np.zeros(4, dtype=np.int64), batch_size=64
        )
        ref1_mean, ref1_accs = self._reference(model, [states[0]] * 4, datasets)
        np.testing.assert_array_equal(accs1, ref1_accs)

    def test_grouped_validation(self, setup):
        model, states, datasets = setup
        with pytest.raises(ValueError, match="labels"):
            evaluate_grouped(model, states, np.zeros(2, dtype=np.int64), datasets, 64)
        with pytest.raises(ValueError, match="outside"):
            evaluate_grouped(
                model, states, np.full(4, 7, dtype=np.int64), datasets, 64
            )

    def test_compat_signature_validation(self, model, datasets):
        with pytest.raises(ValueError, match="states"):
            mean_local_accuracy_grouped(model, [model.state_dict()], datasets)


# ----------------------------------------------------------------------
# Environment wiring: the tier-1 drift gate on a tiny federation.
# ----------------------------------------------------------------------
class TestEnvGroupedEval:
    def test_compat_view_bit_identical(self, small_env, rng):
        """env.mean_local_accuracy (fused) vs the serial reference loop —
        the fast gate that makes perf-path drift fail the suite."""
        states = _perturbed_states(small_env.scratch_model, rng, 3)
        m = small_env.federation.n_clients
        per_client = [states[i % 3] for i in range(m)]
        testsets = [c.test for c in small_env.federation.clients]
        got_mean, got = small_env.mean_local_accuracy(per_client)
        ref_mean, ref = mean_local_accuracy(
            small_env.scratch_model,
            per_client,
            testsets,
            batch_size=small_env.train_cfg.eval_batch_size,
        )
        np.testing.assert_array_equal(got, ref)
        assert got_mean == ref_mean

    def test_evaluate_assignment_bit_identical(self, small_env, rng):
        states = _perturbed_states(small_env.scratch_model, rng, 2)
        m = small_env.federation.n_clients
        labels = np.arange(m, dtype=np.int64) % 2
        testsets = [c.test for c in small_env.federation.clients]
        got_mean, got = evaluate_assignment(small_env, states, labels)
        ref_mean, ref = mean_local_accuracy(
            small_env.scratch_model,
            [states[g] for g in labels],
            testsets,
            batch_size=small_env.train_cfg.eval_batch_size,
        )
        np.testing.assert_array_equal(got, ref)
        assert got_mean == ref_mean

    def test_env_evaluate_packed(self, small_env, rng):
        states = _perturbed_states(small_env.scratch_model, rng, 2)
        m = small_env.federation.n_clients
        labels = np.arange(m, dtype=np.int64) % 2
        matrix, _ = pack_states(states, small_env.layout)
        got_mean, got = small_env.evaluate_packed(matrix, labels)
        ref_mean, ref = small_env.evaluate_assignment(states, labels)
        np.testing.assert_array_equal(got, ref)
        assert got_mean == ref_mean

    def test_packed_validation(self, small_env):
        m = small_env.federation.n_clients
        with pytest.raises(ValueError, match="columns"):
            small_env.evaluate_packed(
                np.zeros((2, 3)), np.zeros(m, dtype=np.int64)
            )


# ----------------------------------------------------------------------
# weighted_average compat view: matrix reuse (the BENCH_kernels fix)
# ----------------------------------------------------------------------
class TestWeightedAverageMatrixReuse:
    def test_matrix_reuse_bit_identical(self, model, rng):
        states = _perturbed_states(model, rng, 5)
        layout = StateLayout.from_model(model)
        weights = rng.integers(1, 20, size=5).astype(np.float64)
        matrix, _ = pack_states(states, layout)
        packed_path = weighted_average(states, weights, layout, matrix=matrix)
        repack_path = weighted_average(states, weights, layout)
        for k in packed_path:
            np.testing.assert_array_equal(packed_path[k], repack_path[k])

    def test_matrix_shape_validated(self, model, rng):
        states = _perturbed_states(model, rng, 3)
        layout = StateLayout.from_model(model)
        with pytest.raises(ValueError, match="matrix"):
            weighted_average(
                states, np.ones(3), layout, matrix=np.zeros((3, 5))
            )


# ----------------------------------------------------------------------
# IFCA fused assignment: parity with the retired per-client probe loop
# ----------------------------------------------------------------------
class TestIFCAFusedAssign:
    def test_assignments_match_per_client_loop(self, small_env, rng):
        """The fused probe sums float64 per-sample NLLs where the old
        loop accumulated float32 per-batch means — losses agree to
        float32 round-off and, on the seeded config we ship, every
        client's argmin cluster comes out identical."""
        from repro.algorithms.ifca import IFCA

        env = small_env
        algo = IFCA(n_clusters=2)
        states = algo._initial_states(env)  # packed rows (flat plane)
        m = env.federation.n_clients
        fused_labels = algo._assign(env, states, np.arange(m))
        cap = algo.assignment_batches * env.train_cfg.batch_size
        losses = np.zeros((m, algo.n_clusters))
        for j, state in enumerate(states):
            env.scratch_model.load_flat(state, env.layout)
            for cid in range(m):
                train = env.federation.clients[cid].train
                probe = train if len(train) <= cap else train.subset(np.arange(cap))
                losses[cid, j] = evaluate_model(
                    env.scratch_model,
                    probe,
                    batch_size=env.train_cfg.eval_batch_size,
                ).loss
        np.testing.assert_array_equal(fused_labels, losses.argmin(axis=1))

        probes = [
            env.federation.clients[cid].train
            if len(env.federation.clients[cid].train) <= cap
            else env.federation.clients[cid].train.subset(np.arange(cap))
            for cid in range(m)
        ]
        for j, state in enumerate(states):
            env.scratch_model.load_flat(state, env.layout)
            fused = fused_evaluate(
                env.scratch_model, probes, batch_size=env.train_cfg.eval_batch_size
            )
            np.testing.assert_allclose(fused.loss, losses[:, j], rtol=1e-6)


# ----------------------------------------------------------------------
# CFL flat-plane deltas: parity with the retired dict path
# ----------------------------------------------------------------------
class TestCFLFlatDeltas:
    def test_split_decisions_match_dict_path(self, small_env):
        """Δ on the flat plane (float64 subtraction over the packed
        cohort) vs the dict path (float32 per-key subtraction, then
        flatten): norms agree to float32 round-off and — on the seeded
        config we ship — the bipartition and both split-criterion
        comparisons come out identical."""
        from repro.algorithms.cfl import CFL
        from repro.nn.state import flatten_state, state_sub

        env = small_env
        members = np.arange(env.federation.n_clients)
        incoming = env.init_state()
        _, _, updates = fedavg_round(env, incoming, members, round_index=1)

        flat_deltas = np.stack([u.flat for u in updates]) - env.layout.pack(incoming)
        dict_deltas = np.stack(
            [flatten_state(state_sub(u.state, incoming)) for u in updates]
        )
        np.testing.assert_allclose(flat_deltas, dict_deltas, rtol=1e-5, atol=1e-6)

        weights = np.array([u.n_samples for u in updates], dtype=np.float64)
        weights /= weights.sum()
        stats = {}
        for name, deltas in [("flat", flat_deltas), ("dict", dict_deltas)]:
            mean_norm = float(np.linalg.norm(weights @ deltas))
            max_norm = float(np.linalg.norm(deltas, axis=1).max())
            left, right = CFL._bipartition(deltas)
            stats[name] = (mean_norm, max_norm, left, right)

        f_mean, f_max, f_left, f_right = stats["flat"]
        d_mean, d_max, d_left, d_right = stats["dict"]
        assert f_mean == pytest.approx(d_mean, rel=1e-5)
        assert f_max == pytest.approx(d_max, rel=1e-5)
        np.testing.assert_array_equal(f_left, d_left)
        np.testing.assert_array_equal(f_right, d_right)
        # The two-threshold criterion itself (relative mode, shipped
        # defaults) decides the same way under either delta dtype.
        algo = CFL()
        for mean_norm, max_norm in [(f_mean, f_max), (d_mean, d_max)]:
            assert (mean_norm / max_norm < algo.eps1) == (
                d_mean / d_max < algo.eps1
            )
            assert (max_norm > algo.eps2 * f_max) == (d_max > algo.eps2 * d_max)
