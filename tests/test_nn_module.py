"""Module system: registration, naming, state dicts, train/eval modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Dropout, Linear, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.parameter import Parameter


class TestParameter:
    def test_grad_starts_zero(self, rng):
        p = Parameter(rng.standard_normal((3, 2)))
        assert p.grad.shape == (3, 2)
        assert not p.grad.any()

    def test_accumulate(self, rng):
        p = Parameter(np.zeros((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        np.testing.assert_allclose(p.grad, 2.0)

    def test_accumulate_shape_mismatch_raises(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="gradient shape"):
            p.accumulate_grad(np.ones((2, 3)))

    def test_copy_casts_dtype(self):
        p = Parameter(np.zeros((2,), dtype=np.float32))
        p.copy_(np.array([1.5, 2.5], dtype=np.float64))
        assert p.data.dtype == np.float32
        np.testing.assert_allclose(p.data, [1.5, 2.5])

    def test_copy_shape_mismatch_raises(self):
        p = Parameter(np.zeros((2,)))
        with pytest.raises(ValueError, match="cannot load"):
            p.copy_(np.zeros((3,)))

    def test_zero_grad_in_place(self):
        p = Parameter(np.zeros(3))
        buffer = p.grad
        p.grad += 5
        p.zero_grad()
        assert p.grad is buffer  # no reallocation
        assert not p.grad.any()


class TestModuleTree:
    def _model(self, rng) -> Sequential:
        return Sequential(
            ("fc1", Linear(4, 3, rng)),
            ("act", ReLU()),
            ("fc2", Linear(3, 2, rng)),
        )

    def test_named_parameters_qualified(self, rng):
        model = self._model(rng)
        names = [n for n, _ in model.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_finalize_names_stamps_parameters(self, rng):
        model = self._model(rng).finalize_names()
        assert model[0].weight.name == "fc1.weight"

    def test_num_parameters(self, rng):
        model = self._model(rng)
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_zero_grad_recursive(self, rng):
        model = self._model(rng)
        for p in model.parameters():
            p.grad += 1.0
        model.zero_grad()
        assert all(not p.grad.any() for p in model.parameters())

    def test_state_dict_roundtrip(self, rng):
        model = self._model(rng)
        state = model.state_dict()
        for p in model.parameters():
            p.data[...] = 0
        model.load_state_dict(state)
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(p.data, state[name])

    def test_state_dict_copy_semantics(self, rng):
        model = self._model(rng)
        state = model.state_dict(copy=True)
        model[0].weight.data += 99.0
        assert not np.allclose(state["fc1.weight"], model[0].weight.data)

    def test_load_state_dict_strict(self, rng):
        model = self._model(rng)
        state = model.state_dict()
        state.pop("fc2.bias")
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state)

    def test_load_state_dict_unexpected_key(self, rng):
        model = self._model(rng)
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        model = Sequential(("drop", Dropout(0.5, rng)), ("fc", Linear(2, 2, rng)))
        model.eval()
        assert not model.training
        assert not model["drop"].training
        model.train()
        assert model["drop"].training

    def test_sequential_indexing(self, rng):
        model = self._model(rng)
        assert isinstance(model[0], Linear)
        assert model["fc2"] is model[2]
        assert len(model) == 3

    def test_sequential_duplicate_name_raises(self, rng):
        with pytest.raises(ValueError, match="duplicate"):
            Sequential(("a", ReLU()), ("a", ReLU()))

    def test_sequential_rejects_non_module(self):
        with pytest.raises(TypeError):
            Sequential(("a", 42))  # type: ignore[arg-type]

    def test_forward_backward_chain(self, rng):
        model = self._model(rng)
        x = rng.standard_normal((5, 4)).astype(np.float32)
        out = model.forward(x)
        assert out.shape == (5, 2)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestCustomModule:
    def test_attribute_registration(self, rng):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones((2, 2)))
                self.inner = Linear(2, 2, rng)

            def forward(self, x):
                return self.inner.forward(x @ self.w.data)

        module = Custom()
        names = [n for n, _ in module.named_parameters()]
        assert names == ["w", "inner.weight", "inner.bias"]
        mods = dict(module.named_modules())
        assert "" in mods and "inner" in mods
