"""Server hardening: corruption injection, admission, robust
aggregation, survivor quorum.

Four contracts:

1. **Corruption is middleware** — seeded per-(dispatch round, client)
   events on their own rng stream, identical across executor kinds and
   deterministic per seed; rate 0 allocates nothing.
2. **Admission guards the choke point** — non-finite and norm-exploded
   rows are quarantined with reason codes, charged their upload, and
   excluded from aggregation *and* the survivor loss statistic exactly
   like zero-step clients.
3. **Robust aggregation** — ``"none"`` is bit-identical to the
   historical weighted average; the robust modes survive poisoned
   cohorts the plain rule cannot.
4. **Quorum + retry** — below ``min_survivors`` the engine redispatches
   on fresh seeded epochs; still short, the round degrades gracefully
   (frozen state, NaN loss, ``quorum_failed``) instead of aggregating
   garbage.

The corruption × quorum × resume smoke cell at the bottom is the CI
matrix cell for this PR: all three defenses composed in one run, with
checkpoint/resume bit-identity on top.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import GlobalModelRounds, survivor_mean_loss
from repro.algorithms.registry import make_algorithm
from repro.data.federation import build_federation
from repro.fl.aggregation import packed_weighted_average
from repro.fl.client import ClientUpdate
from repro.fl.config import TrainConfig
from repro.fl.defense import (
    CORRUPTION_KINDS,
    QUARANTINE_NON_FINITE,
    QUARANTINE_NORM_BOUND,
    CheckpointConfig,
    CorruptionConfig,
    admit_updates,
    maybe_corrupt,
    robust_weighted_average,
)
from repro.fl.history import RunHistory
from repro.fl.parallel import UpdateTask
from repro.fl.rounds import AsyncConfig, RoundEngine, ScenarioConfig
from repro.fl.simulation import FederatedEnv

_KWARGS = {
    "fedavg": {},
    "fedprox": {"mu": 0.1},
    "cfl": {"warmup_rounds": 1},
    "ifca": {"n_clusters": 2},
    "pacfl": {},
    "fedclust": {"warmup_steps": 10, "warmup_lr": 0.01},
    "local_only": {},
}


@pytest.fixture(scope="module")
def federation():
    return build_federation(
        "cifar10", n_clients=8, n_samples=800, seed=5, partition="label_cluster"
    )


@pytest.fixture(scope="module")
def env_factory(federation):
    def make(executor="serial", local_epochs=1, seed=2):
        return FederatedEnv(
            federation,
            model_name="mlp",
            model_kwargs={"hidden": (96,)},
            train_cfg=TrainConfig(
                local_epochs=local_epochs, batch_size=32, lr=0.05, momentum=0.9
            ),
            seed=seed,
            executor=executor,
        )

    return make


def _update(env, cid, flat, n_samples=100):
    return ClientUpdate(
        client_id=cid,
        state=env.layout.unpack(flat),
        n_samples=n_samples,
        mean_loss=1.0,
        n_batches=3,
        flat=np.asarray(flat, dtype=np.float64),
    )


# ----------------------------------------------------------------------
# Corruption fault injection
# ----------------------------------------------------------------------
class TestCorruptionConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -0.1},
            {"rate": 1.5},
            {"kinds": ()},
            {"kinds": ("nan", "bitrot")},
            {"scale": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CorruptionConfig(**kwargs)

    def test_scenario_rejects_bad_mode_and_knobs(self):
        with pytest.raises(ValueError):
            ScenarioConfig(robust_agg="median_of_means")
        with pytest.raises(ValueError):
            ScenarioConfig(trim_fraction=0.5)
        with pytest.raises(ValueError):
            ScenarioConfig(norm_bound=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(min_survivors=-1)
        with pytest.raises(ValueError):
            ScenarioConfig(max_retries=-1)

    def test_async_quorum_is_rejected(self):
        # buffer_size IS the async quorum; a second one is a config error.
        with pytest.raises(ValueError, match="async"):
            ScenarioConfig(
                async_config=AsyncConfig(buffer_size=4), min_survivors=2
            )

    def test_defense_knobs_leave_default(self):
        assert ScenarioConfig(corruption=CorruptionConfig(rate=0.0)).is_default
        assert not ScenarioConfig(corruption=CorruptionConfig(rate=0.1)).is_default
        assert not ScenarioConfig(robust_agg="clip").is_default
        assert not ScenarioConfig(norm_bound=3.0).is_default
        assert not ScenarioConfig(min_survivors=1).is_default
        assert not ScenarioConfig(checkpoint="somewhere").is_default
        # trim_fraction and max_retries are inert without their partners.
        assert ScenarioConfig(trim_fraction=0.2).is_default
        assert ScenarioConfig(max_retries=3).is_default

    def test_bare_directory_coerces_to_checkpoint_config(self, tmp_path):
        scenario = ScenarioConfig(checkpoint=str(tmp_path))
        assert isinstance(scenario.checkpoint, CheckpointConfig)
        assert scenario.checkpoint.path.parent == tmp_path


class TestMaybeCorrupt:
    def _env_update(self, env_factory):
        env = env_factory()
        flat = env.layout.pack(env.init_state())
        return env, _update(env, 3, flat)

    def test_rate_zero_returns_the_same_object(self, env_factory):
        env, update = self._env_update(env_factory)
        out = maybe_corrupt(update, 0, 1, CorruptionConfig(rate=0.0), env.layout)
        assert out is update

    def test_event_is_deterministic_per_seed(self, env_factory):
        env, update = self._env_update(env_factory)
        cfg = CorruptionConfig(rate=1.0, kinds=("noise",))
        a = maybe_corrupt(update, 7, 2, cfg, env.layout)
        b = maybe_corrupt(update, 7, 2, cfg, env.layout)
        np.testing.assert_array_equal(a.flat, b.flat)
        # A different round (or client) rolls different dice.
        c = maybe_corrupt(update, 7, 3, cfg, env.layout)
        assert not np.array_equal(a.flat, c.flat)

    def test_fired_event_copies_never_aliases(self, env_factory):
        env, update = self._env_update(env_factory)
        out = maybe_corrupt(
            update, 0, 1, CorruptionConfig(rate=1.0), env.layout
        )
        assert out is not update
        assert out.flat is not update.flat
        assert np.isfinite(update.flat).all()  # pristine original

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_kinds(self, env_factory, kind):
        env, update = self._env_update(env_factory)
        cfg = CorruptionConfig(rate=1.0, kinds=(kind,), scale=10.0)
        out = maybe_corrupt(update, 0, 1, cfg, env.layout)
        if kind == "nan":
            assert np.isnan(out.flat).any()
        elif kind == "inf":
            assert np.isinf(out.flat).any()
        elif kind == "sign_flip":
            np.testing.assert_array_equal(out.flat, -update.flat)
        else:  # noise: finite but far from the original
            assert np.isfinite(out.flat).all()
            assert np.linalg.norm(out.flat - update.flat) > 1.0
        # The state view is rebuilt from the corrupted row.
        if kind == "nan":
            assert any(
                np.isnan(np.asarray(v)).any() for v in out.state.values()
            )

    def test_corruption_schedule_is_executor_invariant(self, env_factory):
        scenario = ScenarioConfig(
            corruption=CorruptionConfig(rate=0.5, kinds=("nan", "inf")),
            robust_agg="trimmed_mean",
        )
        results = {}
        for executor in ("serial", "batched"):
            env = env_factory(executor)
            try:
                result = make_algorithm("fedavg").run(
                    env, n_rounds=2, scenario=scenario
                )
            finally:
                env.close()
            results[executor] = result
        np.testing.assert_array_equal(
            results["serial"].per_client_accuracy,
            results["batched"].per_client_accuracy,
        )
        assert (
            results["serial"].extras["quarantine_log"]
            == results["batched"].extras["quarantine_log"]
        )
        assert results["serial"].extras["quarantine_log"]


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------
class TestAdmission:
    def test_clean_batch_returns_the_original_list_object(self, env_factory):
        env = env_factory()
        flat = env.layout.pack(env.init_state())
        updates = [_update(env, 0, flat), _update(env, 1, flat + 1.0)]
        admitted, rejected = admit_updates(updates, env.layout)
        assert admitted is updates
        assert rejected == []

    def test_non_finite_rows_are_rejected_with_reason(self, env_factory):
        env = env_factory()
        flat = env.layout.pack(env.init_state())
        bad = flat.copy()
        bad[7] = np.nan
        worse = flat.copy()
        worse[0] = np.inf
        updates = [
            _update(env, 0, flat),
            _update(env, 1, bad),
            _update(env, 2, worse),
        ]
        admitted, rejected = admit_updates(updates, env.layout)
        assert [u.client_id for u in admitted] == [0]
        assert rejected == [
            (1, QUARANTINE_NON_FINITE),
            (2, QUARANTINE_NON_FINITE),
        ]

    def test_norm_bound_rejects_exploded_rows(self, env_factory):
        env = env_factory()
        flat = env.layout.pack(env.init_state())
        updates = [
            _update(env, 0, flat),
            _update(env, 1, flat),
            _update(env, 2, flat * 100.0),
        ]
        admitted, rejected = admit_updates(updates, env.layout, norm_bound=3.0)
        assert [u.client_id for u in admitted] == [0, 1]
        assert rejected == [(2, QUARANTINE_NORM_BOUND)]
        # Without the bound the exploded row sails through (it is finite).
        admitted, rejected = admit_updates(updates, env.layout)
        assert len(admitted) == 3 and not rejected

    def test_zero_median_skips_the_norm_guard(self, env_factory):
        env = env_factory()
        zero = np.zeros(env.n_params)
        updates = [_update(env, 0, zero), _update(env, 1, zero)]
        admitted, rejected = admit_updates(updates, env.layout, norm_bound=2.0)
        assert len(admitted) == 2 and not rejected

    def test_quarantine_is_charged_and_logged(self, env_factory):
        env = env_factory()
        scenario = ScenarioConfig(
            corruption=CorruptionConfig(rate=1.0, kinds=("nan",)),
            min_survivors=0,
        )
        try:
            result = make_algorithm("fedavg").run(
                env, n_rounds=2, scenario=scenario
            )
        finally:
            env.close()
        m = env.federation.n_clients
        # Every client uploaded every round — the bytes crossed the
        # network before admission refused them.
        assert env.tracker.total_uploaded == 2 * m * env.n_params
        assert all(
            reason == QUARANTINE_NON_FINITE
            for _, entries in result.extras["quarantine_log"]
            for _, reason in entries
        )
        assert [r.n_quarantined for r in result.history.records] == [m, m]
        assert result.history.to_dict()["n_quarantined_total"] == 2 * m

    def test_quarantined_rows_never_reach_the_server(self, env_factory):
        env = env_factory()
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        before = strategy.vector.copy()
        engine = RoundEngine(
            env,
            ScenarioConfig(corruption=CorruptionConfig(rate=1.0, kinds=("nan",))),
        )
        try:
            engine.run(strategy, 2, RunHistory("fedavg", "synthetic", env.seed))
        finally:
            env.close()
        # All updates quarantined every round: the model never moved and
        # stayed finite.
        np.testing.assert_array_equal(strategy.vector, before)


# ----------------------------------------------------------------------
# Robust aggregation kernels
# ----------------------------------------------------------------------
class TestRobustKernels:
    def _cohort(self, n=10, p=7, seed=0):
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((n, p))
        weights = rng.integers(50, 200, size=n).astype(float)
        return matrix, weights

    def test_none_is_bitwise_the_plain_rule(self):
        matrix, weights = self._cohort()
        np.testing.assert_array_equal(
            robust_weighted_average(matrix, weights, "none"),
            packed_weighted_average(matrix, weights),
        )

    def test_trimmed_mean_and_median_shrug_off_a_poisoned_row(self):
        matrix, weights = self._cohort()
        clean_median = robust_weighted_average(
            matrix, weights, "coordinate_median"
        )
        clean_trimmed = robust_weighted_average(
            matrix, weights, "trimmed_mean", trim_fraction=0.2
        )
        poisoned = matrix.copy()
        poisoned[3] = 1e9  # one attacker, huge but finite
        assert np.allclose(
            robust_weighted_average(poisoned, weights, "coordinate_median"),
            clean_median,
            atol=1.0,
        )
        assert np.allclose(
            robust_weighted_average(
                poisoned, weights, "trimmed_mean", trim_fraction=0.2
            ),
            clean_trimmed,
            atol=1.0,
        )
        # The plain rule is dragged to the attacker's magnitude.
        plain = robust_weighted_average(poisoned, weights, "none")
        assert np.abs(plain).max() > 1e6

    def test_clip_caps_row_influence_at_the_median_norm(self):
        matrix, weights = self._cohort()
        poisoned = matrix.copy()
        poisoned[0] *= 1e6
        clipped = robust_weighted_average(poisoned, weights, "clip")
        median = float(np.median(np.linalg.norm(matrix, axis=1)))
        # The clipped average can never exceed the largest admissible row.
        assert np.linalg.norm(clipped) <= median + 1e-9

    def test_tiny_cohorts_keep_at_least_one_row(self):
        matrix, weights = self._cohort(n=2)
        out = robust_weighted_average(
            matrix, weights, "trimmed_mean", trim_fraction=0.4
        )
        assert np.isfinite(out).all()

    def test_unknown_mode_raises(self):
        matrix, weights = self._cohort()
        with pytest.raises(ValueError, match="robust_agg"):
            robust_weighted_average(matrix, weights, "krum")


# ----------------------------------------------------------------------
# Loss statistic: quarantined ≡ zero-step exclusion (satellite b)
# ----------------------------------------------------------------------
class TestSurvivorLossExclusion:
    """Quarantined clients and zero-step clients leave the round's loss
    statistic through the same door: they are simply not in the survivor
    list / carry no batches, so ``survivor_mean_loss`` never sees them —
    NaN when nobody contributes, across serial and batched executors."""

    def test_zero_batch_updates_are_excluded(self):
        live = ClientUpdate(1, {}, 10, mean_loss=2.0, n_batches=4)
        idle = ClientUpdate(2, {}, 10, mean_loss=0.0, n_batches=0)
        assert survivor_mean_loss([live, idle]) == 2.0
        assert np.isnan(survivor_mean_loss([idle]))
        assert np.isnan(survivor_mean_loss([]))

    @pytest.mark.parametrize("executor", ["serial", "batched"])
    def test_all_quarantined_logs_nan_like_all_zero_step(
        self, env_factory, executor
    ):
        def final_losses(scenario):
            env = env_factory(executor)
            try:
                result = make_algorithm("fedavg").run(
                    env, n_rounds=2, scenario=scenario
                )
            finally:
                env.close()
            return [r.mean_train_loss for r in result.history.records]

        quarantined = final_losses(
            ScenarioConfig(
                corruption=CorruptionConfig(rate=1.0, kinds=("nan",))
            )
        )
        zero_step = final_losses(ScenarioConfig(compute_budget=(0, 0)))
        assert all(np.isnan(loss) for loss in quarantined)
        assert all(np.isnan(loss) for loss in zero_step)

    @pytest.mark.parametrize("executor", ["serial", "batched"])
    def test_partial_quarantine_averages_the_admitted_only(
        self, env_factory, executor
    ):
        # Rate 0.5 with seed 2 quarantines a strict subset; the round
        # loss must equal the mean over admitted trained updates, which
        # the clean run also produces for those clients (corruption
        # happens after training, so admitted losses match the clean
        # run's losses for the same cohort).
        env = env_factory(executor)
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(
            env,
            ScenarioConfig(
                corruption=CorruptionConfig(rate=0.5, kinds=("nan", "inf"))
            ),
        )
        tasks = strategy.broadcast_for(engine, 1, np.arange(8))
        outcome = engine.dispatch(tasks, 1)
        env.close()
        rejected = {cid for cid, _ in outcome.quarantined}
        assert 0 < len(rejected) < 8
        survivors = {u.client_id for u in outcome.survivors}
        assert survivors.isdisjoint(rejected)
        assert survivors | rejected == set(range(8))
        expected = float(
            np.mean([u.mean_loss for u in outcome.survivors if u.n_batches])
        )
        assert survivor_mean_loss(outcome.survivors) == expected


# ----------------------------------------------------------------------
# Survivor quorum + retry
# ----------------------------------------------------------------------
class TestQuorum:
    def test_min_survivors_above_federation_fails_at_construction(
        self, env_factory
    ):
        env = env_factory()
        with pytest.raises(ValueError, match="min_survivors"):
            RoundEngine(env, ScenarioConfig(min_survivors=9))
        env.close()

    def test_retry_recovers_quorum_on_fresh_epochs(self, env_factory):
        env = env_factory()
        scenario = ScenarioConfig(
            failure_rate=0.5, min_survivors=6, max_retries=4
        )
        try:
            result = make_algorithm("fedavg").run(
                env, n_rounds=2, scenario=scenario
            )
        finally:
            env.close()
        assert not any(r.quorum_failed for r in result.history.records)
        assert all(np.isfinite(r.mean_train_loss) for r in result.history.records)
        # Retries logged their drops under derived epochs (> 1_000_000).
        drop_log = result.extras["drop_log"]
        assert any(r >= 1_000_000 for r, _ in drop_log)

    def test_below_quorum_degrades_gracefully(self, env_factory):
        # Rate-1 NaN corruption defeats every retry: admission rejects
        # the whole cohort each attempt, the round freezes.
        env = env_factory()
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        before = strategy.vector.copy()
        engine = RoundEngine(
            env,
            ScenarioConfig(
                corruption=CorruptionConfig(rate=1.0, kinds=("nan",)),
                min_survivors=2,
                max_retries=2,
            ),
        )
        history = RunHistory("fedavg", "synthetic", env.seed)
        mean_acc, per_client = engine.run(strategy, 2, history)
        env.close()
        assert all(r.quorum_failed for r in history.records)
        assert all(np.isnan(r.mean_train_loss) for r in history.records)
        np.testing.assert_array_equal(strategy.vector, before)
        # Evaluation still ran against the frozen (finite) state.
        assert np.isfinite(mean_acc)
        assert history.to_dict()["quorum_failed_rounds"] == [1, 2]
        # Retries rolled fresh corruption dice: quarantine entries exist
        # under the derived retry epochs too.
        assert any(r >= 1_000_000 for r, _ in engine.quarantine_log)

    def test_quorum_failure_banks_late_work_for_the_future(self, env_factory):
        env = env_factory()
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(
            env,
            ScenarioConfig(
                straggler_rate=0.4,
                staleness_decay=0.5,
                corruption=CorruptionConfig(rate=1.0, kinds=("nan",)),
                min_survivors=1,
                max_retries=0,
            ),
        )
        history = RunHistory("fedavg", "synthetic", env.seed)
        engine.run(strategy, 1, history)
        env.close()
        # Every on-time update was quarantined (corrupted); stragglers
        # are split *after* admission so nothing late survived either —
        # the buffer holds whatever admitted-late work there was.
        assert history.records[0].quorum_failed

    def test_dispatch_with_retry_first_response_wins(self, env_factory):
        env = env_factory()
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(env, ScenarioConfig(failure_rate=0.45))

        def make_tasks(pending):
            return [
                UpdateTask(cid, flat=strategy.vector) for cid in pending
            ]

        collected, pending = engine.dispatch_with_retry(
            make_tasks, list(range(8)), 3, max_attempts=5
        )
        env.close()
        assert not pending
        assert sorted(collected) == list(range(8))
        # Attempt epochs: original at 3, retries at 3 + 1e6 * a.
        rounds_seen = {r for r, _ in engine.drop_log}
        assert all((r - 3) % 1_000_000 == 0 for r in rounds_seen)


# ----------------------------------------------------------------------
# Acceptance: rate-0.2 NaN/Inf corruption across every algorithm
# ----------------------------------------------------------------------
class TestCorruptionAcceptance:
    _SCENARIO = ScenarioConfig(
        corruption=CorruptionConfig(rate=0.2, kinds=("nan", "inf")),
        robust_agg="trimmed_mean",
    )

    @pytest.mark.parametrize("algorithm", sorted(_KWARGS))
    def test_every_algorithm_survives_nan_inf_corruption(
        self, env_factory, algorithm
    ):
        n_rounds = 3 if algorithm in ("pacfl", "fedclust") else 2
        env = env_factory()
        try:
            result = make_algorithm(algorithm, **_KWARGS[algorithm]).run(
                env, n_rounds=n_rounds, scenario=self._SCENARIO
            )
        finally:
            env.close()
        assert result.history.n_rounds == n_rounds
        assert 0.0 <= result.final_accuracy <= 1.0
        assert np.isfinite(result.per_client_accuracy).all()
        assert result.history.to_dict()["n_quarantined_total"] > 0

    def test_trimmed_mean_accuracy_tracks_the_clean_run(self, env_factory):
        env = env_factory()
        try:
            clean = make_algorithm("fedavg").run(env, n_rounds=3)
        finally:
            env.close()
        env = env_factory()
        try:
            hardened = make_algorithm("fedavg").run(
                env, n_rounds=3, scenario=self._SCENARIO
            )
        finally:
            env.close()
        # A fifth of the cohort poisoned every round: trimmed-mean must
        # stay within 15 accuracy points of the clean run (the plain
        # rule would be NaN from round 1 without admission).
        assert abs(hardened.final_accuracy - clean.final_accuracy) < 0.15

    def test_async_engine_survives_corruption(self, env_factory):
        env = env_factory()
        scenario = ScenarioConfig(
            staleness_decay=0.9,
            async_config=AsyncConfig(buffer_size=4, duration_range=(1, 2)),
            corruption=CorruptionConfig(rate=0.2, kinds=("nan", "inf")),
            robust_agg="coordinate_median",
        )
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(env, scenario)
        history = RunHistory("fedavg", "synthetic", env.seed)
        mean_acc, _ = engine.run(strategy, 5, history)
        env.close()
        assert np.isfinite(strategy.vector).all()
        assert np.isfinite(mean_acc)
        assert engine.quarantine_log
        assert sum(r.n_quarantined for r in history.records) == sum(
            len(entries) for _, entries in engine.quarantine_log
        )


# ----------------------------------------------------------------------
# The CI matrix cell: corruption × quorum × resume
# ----------------------------------------------------------------------
class TestCorruptionQuorumResumeSmoke:
    def _scenario(self, directory, resume):
        return ScenarioConfig(
            corruption=CorruptionConfig(rate=0.3, kinds=("nan", "noise")),
            robust_agg="clip",
            norm_bound=5.0,
            min_survivors=2,
            max_retries=2,
            checkpoint=CheckpointConfig(directory=directory, resume=resume),
        )

    def test_composed_defenses_resume_bit_identically(
        self, env_factory, tmp_path
    ):
        # Uninterrupted reference: 4 rounds with all defenses on.
        env = env_factory()
        strategy = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine = RoundEngine(env, self._scenario(tmp_path / "ref", False))
        history = RunHistory("fedavg", "synthetic", env.seed)
        mean_acc, per_client = engine.run(strategy, 4, history)
        env.close()

        # Interrupted run: 2 rounds, then a fresh engine resumes to 4.
        env = env_factory()
        part = GlobalModelRounds(env.layout.pack(env.init_state()))
        RoundEngine(env, self._scenario(tmp_path / "cut", False)).run(
            part, 2, RunHistory("fedavg", "synthetic", env.seed)
        )
        env.close()
        env = env_factory()
        resumed = GlobalModelRounds(env.layout.pack(env.init_state()))
        engine2 = RoundEngine(env, self._scenario(tmp_path / "cut", True))
        history2 = RunHistory("fedavg", "synthetic", env.seed)
        acc2, per2 = engine2.run(resumed, 4, history2)
        env.close()

        assert acc2 == mean_acc
        np.testing.assert_array_equal(per2, per_client)
        np.testing.assert_array_equal(resumed.vector, strategy.vector)
        assert engine2.quarantine_log == engine.quarantine_log
        assert engine2.drop_log == engine.drop_log
        assert [
            (r.round_index, r.mean_train_loss, r.n_quarantined, r.quorum_failed)
            for r in history2.records
        ] == [
            (r.round_index, r.mean_train_loss, r.n_quarantined, r.quorum_failed)
            for r in history.records
        ]
