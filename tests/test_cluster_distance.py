"""Pairwise distance kernels, cross-checked against scipy."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial.distance import cdist, pdist

from repro.cluster.distance import (
    condensed_from_square,
    pairwise_cosine_distance,
    pairwise_cosine_similarity,
    pairwise_distances,
    pairwise_euclidean,
    pairwise_sqeuclidean,
    square_from_condensed,
    validate_distance_matrix,
)


class TestAgainstScipy:
    def test_euclidean(self, rng):
        x = rng.standard_normal((12, 7))
        np.testing.assert_allclose(
            pairwise_euclidean(x), cdist(x, x), rtol=1e-8, atol=1e-10
        )

    def test_sqeuclidean(self, rng):
        x = rng.standard_normal((9, 4))
        np.testing.assert_allclose(
            pairwise_sqeuclidean(x), cdist(x, x, "sqeuclidean"), rtol=1e-8, atol=1e-9
        )

    def test_cosine(self, rng):
        x = rng.standard_normal((10, 6))
        np.testing.assert_allclose(
            pairwise_cosine_distance(x), cdist(x, x, "cosine"), rtol=1e-8, atol=1e-10
        )


class TestInvariants:
    def test_symmetry_and_zero_diagonal(self, rng):
        d = pairwise_euclidean(rng.standard_normal((8, 3)))
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_nonnegative_despite_rounding(self, rng):
        # Nearly-identical rows stress the Gram-expansion cancellation.
        x = np.repeat(rng.standard_normal((1, 5)), 6, axis=0)
        x += 1e-9 * rng.standard_normal(x.shape)
        assert (pairwise_sqeuclidean(x) >= 0).all()

    def test_cosine_zero_rows(self):
        x = np.array([[0.0, 0.0], [1.0, 0.0]])
        sim = pairwise_cosine_similarity(x)
        assert sim[0, 1] == 0.0
        assert np.isfinite(sim).all()

    def test_cosine_bounded(self, rng):
        sim = pairwise_cosine_similarity(rng.standard_normal((10, 3)))
        assert (sim <= 1.0).all() and (sim >= -1.0).all()

    def test_dispatch(self, rng):
        x = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            pairwise_distances(x, "euclidean"), pairwise_euclidean(x)
        )
        with pytest.raises(ValueError, match="unknown metric"):
            pairwise_distances(x, "manhattan")


class TestCondensed:
    def test_roundtrip(self, rng):
        d = pairwise_euclidean(rng.standard_normal((7, 3)))
        condensed = condensed_from_square(d)
        np.testing.assert_allclose(square_from_condensed(condensed, 7), d)

    def test_matches_scipy_pdist(self, rng):
        x = rng.standard_normal((7, 3))
        np.testing.assert_allclose(
            condensed_from_square(pairwise_euclidean(x)), pdist(x), rtol=1e-8
        )

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError, match="condensed length"):
            square_from_condensed(np.zeros(5), 4)


class TestValidation:
    def test_rejects_asymmetric(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            validate_distance_matrix(d)

    def test_rejects_negative(self):
        d = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError, match="negative"):
            validate_distance_matrix(d)

    def test_rejects_nonzero_diagonal(self):
        d = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(ValueError, match="diagonal"):
            validate_distance_matrix(d)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            validate_distance_matrix(np.zeros((2, 3)))

    def test_nan_entry_names_the_offending_pair(self):
        d = np.zeros((4, 4))
        d[1, 3] = d[3, 1] = np.nan
        with pytest.raises(ValueError, match=r"non-finite entry d\[1, 3\]"):
            validate_distance_matrix(d)

    def test_inf_entry_names_the_offending_pair(self):
        d = np.zeros((3, 3))
        d[0, 2] = d[2, 0] = np.inf
        with pytest.raises(ValueError, match=r"non-finite entry d\[0, 2\] = inf"):
            validate_distance_matrix(d)

    def test_finiteness_is_checked_before_symmetry(self):
        # A NaN also breaks the symmetry check; the error must still
        # point at the corrupt entry, not the downstream symptom.
        d = np.zeros((3, 3))
        d[0, 1] = np.nan  # asymmetric AND non-finite
        with pytest.raises(ValueError, match="non-finite entry"):
            validate_distance_matrix(d)

    def test_exactifies_small_violations(self):
        d = np.array([[0.0, 1.0], [1.0 + 1e-12, 0.0]])
        out = validate_distance_matrix(d)
        np.testing.assert_allclose(out, out.T)
