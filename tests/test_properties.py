"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster.distance import (
    pairwise_cosine_similarity,
    pairwise_euclidean,
    validate_distance_matrix,
)
from repro.cluster.hierarchy import cut_by_k, linkage, merge_heights
from repro.cluster.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    purity,
)
from repro.data.partition import check_partition, dirichlet_partition, iid_partition
from repro.fl.aggregation import weighted_average
from repro.nn.functional import one_hot, softmax
from repro.nn.state import flatten_state, state_allclose, unflatten_state

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

finite_matrix = lambda rows, cols: arrays(  # noqa: E731
    np.float64,
    (rows, cols),
    elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
)

label_arrays = st.lists(st.integers(0, 4), min_size=2, max_size=40).map(np.array)


class TestDistanceProperties:
    @given(x=st.integers(3, 12).flatmap(lambda n: finite_matrix(n, 4)))
    @settings(max_examples=40, deadline=None)
    def test_euclidean_is_valid_distance_matrix(self, x):
        d = pairwise_euclidean(x)
        validate_distance_matrix(d)  # symmetric, non-negative, zero diagonal

    @given(x=st.integers(3, 10).flatmap(lambda n: finite_matrix(n, 3)))
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, x):
        d = pairwise_euclidean(x)
        n = d.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-8

    @given(x=st.integers(2, 8).flatmap(lambda n: finite_matrix(n, 5)))
    @settings(max_examples=40, deadline=None)
    def test_cosine_similarity_bounded(self, x):
        sim = pairwise_cosine_similarity(x)
        assert (sim >= -1.0 - 1e-12).all() and (sim <= 1.0 + 1e-12).all()

    @given(
        x=st.integers(3, 10).flatmap(lambda n: finite_matrix(n, 4)),
        scale=st.floats(0.1, 10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_euclidean_homogeneity(self, x, scale):
        np.testing.assert_allclose(
            pairwise_euclidean(x * scale),
            scale * pairwise_euclidean(x),
            rtol=1e-7,
            atol=1e-8,
        )


class TestHierarchyProperties:
    @given(x=st.integers(4, 12).flatmap(lambda n: finite_matrix(n, 3)))
    @settings(max_examples=30, deadline=None)
    def test_average_linkage_monotone_heights(self, x):
        d = pairwise_euclidean(x)
        heights = merge_heights(linkage(d, "average"))
        assert (np.diff(heights) >= -1e-9).all()

    @given(
        x=st.integers(4, 10).flatmap(lambda n: finite_matrix(n, 3)),
        k=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_cut_by_k_gives_k_clusters(self, x, k):
        d = pairwise_euclidean(x)
        n = d.shape[0]
        k = min(k, n)
        labels = cut_by_k(linkage(d, "complete"), k)
        # Duplicate points can merge at height 0 but cut_by_k still honours k.
        assert len(np.unique(labels)) == k
        assert labels.shape == (n,)


class TestMetricProperties:
    @given(labels=label_arrays)
    @settings(max_examples=40, deadline=None)
    def test_ari_nmi_purity_perfect_on_self(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)
        assert purity(labels, labels) == 1.0

    @given(labels=label_arrays, offset=st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_relabelling_invariance(self, labels, offset):
        renamed = (labels + offset) % 11  # injective rename of label ids
        assert adjusted_rand_index(labels, renamed) == pytest.approx(1.0)
        assert normalized_mutual_information(labels, renamed) == pytest.approx(1.0)

    @given(a=label_arrays, b=label_arrays)
    @settings(max_examples=40, deadline=None)
    def test_symmetry_and_bounds(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        ari_ab = adjusted_rand_index(a, b)
        ari_ba = adjusted_rand_index(b, a)
        assert ari_ab == pytest.approx(ari_ba)
        assert -1.0 <= ari_ab <= 1.0
        nmi = normalized_mutual_information(a, b)
        assert 0.0 <= nmi <= 1.0


class TestPartitionProperties:
    @given(
        n=st.integers(40, 200),
        n_clients=st.integers(2, 6),
        alpha=st.floats(0.05, 10.0),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_dirichlet_partition_invariants(self, n, n_clients, alpha, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 5, size=n)
        parts = dirichlet_partition(labels, n_clients, alpha, seed, min_samples=1)
        check_partition(parts, n)
        assert sum(len(p) for p in parts) <= n
        assert all(len(p) >= 1 for p in parts)

    @given(n=st.integers(10, 100), n_clients=st.integers(1, 8), seed=st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_iid_partition_covers(self, n, n_clients, seed):
        labels = np.zeros(n, dtype=int)
        parts = iid_partition(labels, n_clients, seed)
        check_partition(parts, n, require_cover=True)


class TestAggregationProperties:
    @staticmethod
    def _states(values):
        return [
            OrderedDict([("w", np.full(3, float(v)))]) for v in values
        ]

    @given(values=st.lists(st.floats(-10, 10), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_average_within_convex_hull(self, values):
        states = self._states(values)
        out = weighted_average(states, np.ones(len(values)))
        assert min(values) - 1e-9 <= float(out["w"][0]) <= max(values) + 1e-9

    @given(
        value=st.floats(-10, 10),
        n=st.integers(1, 5),
        weights=st.lists(st.floats(0.1, 10), min_size=5, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_states_are_fixed_point(self, value, n, weights):
        states = self._states([value] * n)
        out = weighted_average(states, weights[:n])
        np.testing.assert_allclose(out["w"], value, rtol=1e-9, atol=1e-9)


class TestStateProperties:
    @given(
        data=arrays(
            np.float32,
            (4, 3),
            elements=st.floats(-100, 100, allow_nan=False, width=32),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_flatten_unflatten_roundtrip(self, data):
        state = OrderedDict([("a", data), ("b", data[0])])
        back = unflatten_state(flatten_state(state), state)
        assert state_allclose(back, state, rtol=0, atol=1e-6)


class TestFunctionalProperties:
    @given(
        logits=arrays(
            np.float64,
            (3, 6),
            elements=st.floats(-200, 200, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_softmax_simplex(self, logits):
        s = softmax(logits)
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=1), 1.0, rtol=1e-9)

    @given(labels=st.lists(st.integers(0, 9), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_one_hot_rows(self, labels):
        arr = np.array(labels)
        oh = one_hot(arr, 10)
        np.testing.assert_allclose(oh.sum(axis=1), 1.0)
        assert (oh.argmax(axis=1) == arr).all()
