"""ArrayDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset


def _dataset(n=20, n_classes=4, seed=0) -> ArrayDataset:
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.standard_normal((n, 1, 4, 4)).astype(np.float32),
        rng.integers(0, n_classes, size=n),
        n_classes,
        "toy",
    )


class TestValidation:
    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="N, C, H, W"):
            ArrayDataset(np.zeros((3, 4)), np.zeros(3, dtype=int), 2)

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError, match="labels shape"):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4, dtype=int), 2)

    def test_label_out_of_range(self):
        with pytest.raises(ValueError, match="labels must lie"):
            ArrayDataset(np.zeros((2, 1, 2, 2)), np.array([0, 5]), 2)

    def test_dtype_coercion(self):
        ds = ArrayDataset(
            np.zeros((2, 1, 2, 2), dtype=np.float64), np.array([0, 1]), 2
        )
        assert ds.images.dtype == np.float32
        assert ds.labels.dtype == np.int64


class TestOperations:
    def test_len_and_shape(self):
        ds = _dataset(15)
        assert len(ds) == 15
        assert ds.input_shape == (1, 4, 4)

    def test_subset_copies(self):
        ds = _dataset()
        sub = ds.subset(np.array([0, 2, 4]))
        sub.images[0] = 99.0
        assert ds.images[0, 0, 0, 0] != 99.0
        assert len(sub) == 3
        assert sub.name == "toy"

    def test_split_sizes(self, rng):
        ds = _dataset(10)
        train, test = ds.split(0.3, rng)
        assert len(train) == 7 and len(test) == 3

    def test_split_disjoint_and_complete(self, rng):
        ds = _dataset(10)
        # Stamp a recognisable value per row to track identity.
        for i in range(10):
            ds.images[i, 0, 0, 0] = float(i)
        train, test = ds.split(0.2, rng)
        seen = sorted(
            [int(x) for x in train.images[:, 0, 0, 0]]
            + [int(x) for x in test.images[:, 0, 0, 0]]
        )
        assert seen == list(range(10))

    def test_split_always_leaves_both_sides(self, rng):
        ds = _dataset(2)
        train, test = ds.split(0.01, rng)
        assert len(train) == 1 and len(test) == 1

    def test_split_single_sample_raises(self, rng):
        with pytest.raises(ValueError, match="at least 2"):
            _dataset(1).split(0.5, rng)

    def test_split_fraction_validation(self, rng):
        with pytest.raises(ValueError, match="test_fraction"):
            _dataset().split(0.0, rng)

    def test_class_counts(self):
        ds = ArrayDataset(np.zeros((4, 1, 1, 1)), np.array([0, 0, 2, 1]), 3)
        np.testing.assert_array_equal(ds.class_counts(), [2, 1, 1])

    def test_label_distribution_sums_to_one(self):
        ds = _dataset(30)
        assert ds.label_distribution().sum() == pytest.approx(1.0)
