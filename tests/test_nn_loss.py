"""Loss functions: values and gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.functional import softmax
from repro.nn.loss import CrossEntropyLoss, MSELoss

from helpers import numerical_grad_entries, sample_indices


class TestCrossEntropy:
    def test_uniform_logits_value(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        value = loss.forward(logits, np.array([0, 3, 5, 9]))
        assert value == pytest.approx(np.log(10.0))

    def test_perfect_prediction_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        assert loss.forward(logits, np.array([1, 2])) < 1e-8

    def test_gradient_formula(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.standard_normal((6, 5))
        targets = rng.integers(0, 5, size=6)
        loss.forward(logits, targets)
        grad = loss.backward()
        expected = softmax(logits, axis=1)
        expected[np.arange(6), targets] -= 1.0
        expected /= 6
        np.testing.assert_allclose(grad, expected, rtol=1e-8)

    def test_gradient_numerically(self, rng):
        logits = rng.standard_normal((3, 4))
        targets = np.array([1, 0, 3])

        def f() -> float:
            return CrossEntropyLoss().forward(logits, targets)

        loss = CrossEntropyLoss()
        loss.forward(logits, targets)
        analytic = loss.backward()
        idx = sample_indices(logits.shape, rng, max_entries=12)
        numeric = numerical_grad_entries(f, logits, idx)
        np.testing.assert_allclose(
            np.array([analytic[i] for i in idx]), numeric, rtol=1e-5, atol=1e-8
        )

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.standard_normal((5, 7))
        loss.forward(logits, rng.integers(0, 7, size=5))
        np.testing.assert_allclose(loss.backward().sum(axis=1), 0.0, atol=1e-10)

    def test_shape_validation(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError, match="logits"):
            loss.forward(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="targets"):
            loss.forward(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_extreme_logits_finite(self):
        loss = CrossEntropyLoss()
        logits = np.array([[1e4, -1e4], [-1e4, 1e4]])
        value = loss.forward(logits, np.array([0, 1]))
        assert np.isfinite(value)
        assert np.isfinite(loss.backward()).all()


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        out = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        assert loss.forward(out, target) == pytest.approx(2.5)

    def test_gradient(self, rng):
        loss = MSELoss()
        out = rng.standard_normal((3, 4))
        target = rng.standard_normal((3, 4))
        loss.forward(out, target)
        np.testing.assert_allclose(
            loss.backward(), 2 * (out - target) / out.size, rtol=1e-10
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))
