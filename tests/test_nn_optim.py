"""Optimisers: update rules, momentum, weight decay, proximal term."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.optim import SGD, ProximalSGD
from repro.nn.parameter import Parameter


def _param(value) -> Parameter:
    return Parameter(np.array(value, dtype=np.float64))


class TestSGD:
    def test_vanilla_step(self):
        p = _param([1.0, 2.0])
        p.grad[:] = [0.5, -0.5]
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_weight_decay(self):
        p = _param([2.0])
        p.grad[:] = [0.0]
        SGD([p], lr=0.1, weight_decay=0.5).step()
        # grad_eff = 0 + 0.5*2 = 1; step = -0.1
        np.testing.assert_allclose(p.data, [1.9])

    def test_momentum_accumulates(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad[:] = [1.0]
        opt.step()  # v=1, p=-1
        np.testing.assert_allclose(p.data, [-1.0])
        p.grad[:] = [1.0]
        opt.step()  # v=1.5, p=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_nesterov_lookahead(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.5, nesterov=True)
        p.grad[:] = [1.0]
        opt.step()  # v=1; p -= g + 0.5*v = 1.5
        np.testing.assert_allclose(p.data, [-1.5])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError, match="nesterov"):
            SGD([_param([0.0])], lr=0.1, nesterov=True)

    def test_reset_state(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad[:] = [1.0]
        opt.step()
        opt.reset_state()
        p.grad[:] = [1.0]
        opt.step()
        # After reset the second step must not compound the old velocity:
        # p = -1 (first) - 1 (fresh v) = -2, not -2.9.
        np.testing.assert_allclose(p.data, [-2.0])

    def test_in_place_update(self):
        p = _param([1.0])
        buffer = p.data
        p.grad[:] = [1.0]
        SGD([p], lr=0.1).step()
        assert p.data is buffer

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            SGD([], lr=0.1)
        with pytest.raises(ValueError, match="lr"):
            SGD([_param([0.0])], lr=0.0)
        with pytest.raises(ValueError, match="momentum"):
            SGD([_param([0.0])], lr=0.1, momentum=-1)

    def test_zero_grad(self):
        p = _param([0.0])
        opt = SGD([p], lr=0.1)
        p.grad[:] = [3.0]
        opt.zero_grad()
        assert not p.grad.any()


class TestProximalSGD:
    def test_proximal_pull_toward_anchor(self):
        p = _param([2.0])
        opt = ProximalSGD([p], lr=0.1, mu=1.0)
        opt.set_anchor([np.array([0.0])])
        p.grad[:] = [0.0]
        opt.step()
        # grad_eff = mu*(w - anchor) = 2 → step -0.2
        np.testing.assert_allclose(p.data, [1.8])

    def test_anchor_at_params(self):
        p = _param([3.0])
        opt = ProximalSGD([p], lr=0.1, mu=10.0)
        opt.set_anchor_from_params()
        p.grad[:] = [1.0]
        opt.step()
        # At the anchor the proximal term vanishes: pure gradient step.
        np.testing.assert_allclose(p.data, [2.9])

    def test_mu_zero_equals_sgd(self, rng):
        value = rng.standard_normal(4)
        grad = rng.standard_normal(4)
        p1, p2 = _param(value), _param(value)
        p1.grad[:] = grad
        p2.grad[:] = grad
        SGD([p1], lr=0.05).step()
        opt = ProximalSGD([p2], lr=0.05, mu=0.0)
        opt.step()
        np.testing.assert_allclose(p1.data, p2.data)

    def test_step_without_anchor_raises(self):
        opt = ProximalSGD([_param([0.0])], lr=0.1, mu=0.5)
        with pytest.raises(RuntimeError, match="set_anchor"):
            opt.step()

    def test_anchor_validation(self):
        opt = ProximalSGD([_param([0.0, 1.0])], lr=0.1, mu=0.5)
        with pytest.raises(ValueError, match="anchor"):
            opt.set_anchor([np.zeros(3)])
        with pytest.raises(ValueError, match="anchor"):
            opt.set_anchor([np.zeros(2), np.zeros(2)])

    def test_anchor_is_copied(self):
        p = _param([1.0])
        anchor = np.array([0.5])
        opt = ProximalSGD([p], lr=0.1, mu=1.0)
        opt.set_anchor([anchor])
        anchor[:] = 100.0  # mutating the caller's array must not matter
        p.grad[:] = [0.0]
        opt.step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_with_prox(self):
        p = _param([1.0])
        opt = ProximalSGD([p], lr=0.1, mu=1.0, momentum=0.5)
        opt.set_anchor([np.array([0.0])])
        p.grad[:] = [0.0]
        opt.step()  # g_eff=1, v=1, p=0.9
        np.testing.assert_allclose(p.data, [0.9])
        p.grad[:] = [0.0]
        opt.step()  # g_eff=0.9, v=0.5+0.9=1.4, p=0.76
        np.testing.assert_allclose(p.data, [0.76])
