"""Experiment drivers: presets, Table-I harness plumbing, Fig-1/Fig-2 probes.

These tests run the drivers at a micro scale (not the bench scale) so the
suite stays fast while still executing every driver end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_communication_study,
    run_linkage_ablation,
    run_weight_ablation,
)
from repro.experiments.fig1 import PAPER_LAYERS, format_fig1, run_fig1
from repro.experiments.fig2 import format_fig2, run_fig2
from repro.experiments.presets import (
    SCALES,
    ExperimentScale,
    algorithm_kwargs,
    get_scale,
)
from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1
from repro.fl.config import TrainConfig

#: Micro scale used only by this test module.
MICRO = ExperimentScale(
    name="micro",
    n_clients=6,
    n_samples=900,
    n_rounds=3,
    seeds=(0,),
    train=TrainConfig(local_epochs=1, batch_size=32, lr=0.05, momentum=0.9),
    eval_every=3,
    fig1_local_steps=10,
)


class TestPresets:
    def test_scales_exist(self):
        assert set(SCALES) == {"quick", "bench", "paper"}

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "bench")
        assert get_scale().name == "bench"
        monkeypatch.delenv("REPRO_SCALE")
        assert get_scale().name == "quick"
        with pytest.raises(ValueError, match="unknown scale"):
            get_scale("huge")

    def test_algorithm_kwargs_cover_table1(self):
        for method in ("fedavg", "fedprox", "cfl", "ifca", "pacfl", "fedclust"):
            kwargs = algorithm_kwargs(method, SCALES["quick"])
            assert isinstance(kwargs, dict)

    def test_paper_numbers_complete(self):
        for method in ("fedavg", "fedprox", "cfl", "ifca", "pacfl", "fedclust"):
            for ds in ("cifar10", "fmnist", "svhn"):
                assert (method, ds) in PAPER_TABLE1


@pytest.mark.slow
class TestTable1Driver:
    def test_two_method_run(self):
        result = run_table1(
            datasets=("fmnist",), methods=("fedavg", "fedclust"), scale=MICRO
        )
        cell = result.cell("fedclust", "fmnist")
        assert len(cell.accuracies) == 1
        assert 0.0 <= cell.mean <= 1.0
        assert result.winner("fmnist") in ("fedavg", "fedclust")
        text = format_table1(result)
        assert "fedclust" in text and "fmnist (paper)" in text

    def test_format_without_paper_column(self):
        result = run_table1(datasets=("fmnist",), methods=("fedavg",), scale=MICRO)
        text = format_table1(result, with_paper=False)
        assert "paper" not in text


@pytest.mark.slow
class TestFig1Driver:
    def test_probe_layers_and_separability(self):
        result = run_fig1(
            dataset="fmnist",
            n_clients=6,
            model_name="cnn_small",
            layer_indices=(1, 4),
            scale=MICRO,
        )
        assert set(result.distance_matrices) == {1, 4}
        for matrix in result.distance_matrices.values():
            assert matrix.shape == (6, 6)
        # Classifier layer (index 4 of cnn_small) beats the first conv.
        assert result.separability[4] > result.separability[1]
        assert result.best_layer() == 4
        text = format_fig1(result)
        assert "separability" in text.lower()

    def test_paper_layer_table(self):
        assert [i for i, _ in PAPER_LAYERS] == [1, 7, 14, 16]

    def test_bad_layer_index_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            run_fig1(
                dataset="fmnist",
                n_clients=4,
                model_name="cnn_small",
                layer_indices=(99,),
                scale=MICRO,
            )


@pytest.mark.slow
class TestFig2Driver:
    def test_workflow_trace(self):
        result = run_fig2(dataset="fmnist", scale=MICRO)
        assert [s.number for s in result.steps] == [1, 2, 3, 4, 5, 6]
        assert 0 < result.partial_upload_fraction < 1
        assert result.newcomer_assigned_cluster >= 0
        assert np.isfinite(result.newcomer_acc_with_cluster)
        text = format_fig2(result)
        assert "①" in text and "⑥" in text


@pytest.mark.slow
class TestAblationDrivers:
    def test_linkage_ablation(self):
        result = run_linkage_ablation(scale=MICRO)
        assert {row["linkage"] for row in result.rows} == {
            "single",
            "complete",
            "average",
            "ward",
        }
        assert "A1" in result.format()

    def test_weight_ablation(self):
        result = run_weight_ablation(
            scale=MICRO, selections=("final_layer", "index:1")
        )
        final = result.row_of("final_layer")
        conv = result.row_of("index:1")
        assert final["upload"] > 0 and conv["upload"] > 0
        with pytest.raises(KeyError):
            result.row_of("nope")

    def test_communication_study(self):
        result = run_communication_study(
            methods=("fedavg", "fedclust"), scale=MICRO, target_accuracy=0.2
        )
        fedavg = result.row_of("fedavg")
        fedclust = result.row_of("fedclust")
        assert fedavg["clustering_upload"] == 0
        assert fedclust["clustering_upload"] > 0
        assert "C1" in result.format()
