"""Client-state stores: quantisation contract, sharding, tiered folds.

The invariants under test are the ones the population-scale path rests
on (see the ``repro.fl.store`` module docstring): a stored row reads
back as exactly ``layout.round_trip(row)`` for any float64 input, dense
and sharded stores are bit-interchangeable, checkpoints restore across
kinds, and tiered aggregation with a single edge is bit-identical to
the flat GEMV the seed pins run on.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.aggregation import packed_weighted_average
from repro.fl.store import (
    DenseStore,
    ShardedStore,
    StoreConfig,
    make_store,
    tiered_weighted_average,
)
from repro.nn.state_flat import StateLayout


def _mixed_layout() -> StateLayout:
    """Mixed f32/f64 layout — round_trip is lossy per segment."""
    rng = np.random.default_rng(0)
    state = OrderedDict(
        [
            ("conv.weight", rng.standard_normal((3, 2, 2)).astype(np.float32)),
            ("conv.bias", rng.standard_normal(3).astype(np.float64)),
            ("fc.weight", rng.standard_normal((4, 5)).astype(np.float32)),
            ("fc.bias", rng.standard_normal(4).astype(np.float64)),
        ]
    )
    return StateLayout.from_state(state)


def _f32_layout(p: int = 24) -> StateLayout:
    """Single-dtype float32 layout — wire dtype is float32."""
    state = OrderedDict(
        [("w", np.zeros(p, dtype=np.float32))]
    )
    return StateLayout.from_state(state)


def _base_row(layout: StateLayout, seed: int = 1) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(layout.n_params)


_MIXED_P = _mixed_layout().n_params


def _row_strategy(p: int):
    return st.lists(
        st.floats(
            min_value=-1e6,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=p,
        max_size=p,
    ).map(lambda xs: np.array(xs, dtype=np.float64))


class TestStoreConfig:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown store kind"):
            StoreConfig(kind="mmap")

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError, match="shard_size"):
            StoreConfig(kind="sharded", shard_size=0)

    def test_rejects_negative_edge_size(self):
        with pytest.raises(ValueError, match="edge_size"):
            StoreConfig(edge_size=-1)

    def test_rejects_path_on_dense(self):
        with pytest.raises(ValueError, match="sharded"):
            StoreConfig(kind="dense", path="/tmp/x")

    def test_default_flag(self):
        assert StoreConfig().is_default
        assert not StoreConfig(kind="sharded").is_default
        assert not StoreConfig(edge_size=8).is_default

    def test_describe_round_trips(self):
        cfg = StoreConfig(kind="sharded", shard_size=17, edge_size=4)
        assert StoreConfig(**cfg.describe()) == cfg


class TestQuantisationContract:
    """``get`` must return exactly ``layout.round_trip(row)`` — the
    bit-identity bridge between the store and the historical dict path."""

    @settings(max_examples=30, deadline=None)
    @given(row=_row_strategy(_MIXED_P), kind=st.sampled_from(["dense", "sharded"]))
    def test_get_is_round_trip(self, row, kind):
        layout = _mixed_layout()
        store = make_store(
            StoreConfig(kind=kind, shard_size=3), 5, layout, _base_row(layout)
        )
        store.set(2, row)
        got = store.get(2)
        assert got.dtype == np.float64
        np.testing.assert_array_equal(got, layout.round_trip(row))

    @settings(max_examples=30, deadline=None)
    @given(row=_row_strategy(24))
    def test_f32_wire_quantisation_bound(self, row):
        layout = _f32_layout()
        assert layout.wire_dtype == np.float32
        store = DenseStore(4, layout, np.zeros(24))
        store.set(0, row)
        got = store.get(0)
        np.testing.assert_array_equal(got, row.astype(np.float32))
        # one float32 rounding step, never more
        assert np.allclose(got, row, rtol=2.0**-23, atol=1e-38)

    def test_get_returns_fresh_rows(self):
        layout = _mixed_layout()
        store = ShardedStore(4, layout, _base_row(layout), shard_size=2)
        before = store.get(1)
        store.get(1)[:] = 0.0
        np.testing.assert_array_equal(store.get(1), before)
        # virgin reads alias the shared base internally; mutation of the
        # returned row must never leak back into other clients
        np.testing.assert_array_equal(store.get(0), before)

    def test_rejects_out_of_range_ids(self):
        layout = _f32_layout()
        store = DenseStore(3, layout, np.zeros(24))
        with pytest.raises(IndexError):
            store.get(3)
        with pytest.raises(IndexError):
            store.set(-1, np.zeros(24))


class TestDenseShardedEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 2**31 - 1)),
            max_size=12,
        ),
        shard_size=st.integers(1, 13),
    )
    def test_same_contents_under_any_write_sequence(self, writes, shard_size):
        layout = _mixed_layout()
        base = _base_row(layout)
        dense = DenseStore(11, layout, base)
        sharded = ShardedStore(11, layout, base, shard_size=shard_size)
        for cid, seed in writes:
            row = np.random.default_rng(seed).standard_normal(layout.n_params)
            dense.set(cid, row)
            sharded.set(cid, row)
        ids = np.arange(11)
        np.testing.assert_array_equal(dense.rows(ids), sharded.rows(ids))

    def test_sharded_is_lazy(self):
        layout = _mixed_layout()
        store = ShardedStore(64, layout, _base_row(layout), shard_size=8)
        base_only = store.resident_bytes()
        # reads never materialise
        store.get(17)
        store.rows(range(20))
        assert store.n_resident_shards == 0
        assert store.resident_bytes() == base_only
        # one write materialises exactly one shard
        store.set(17, np.ones(layout.n_params))
        assert store.n_resident_shards == 1
        assert store.resident_bytes() > base_only


class TestTieredAggregation:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 9),
        seed=st.integers(0, 2**31 - 1),
        edge_size=st.integers(0, 12),
    )
    def test_single_edge_is_bit_identical_to_flat(self, n, seed, edge_size):
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((n, 7))
        weights = rng.uniform(0.5, 4.0, n)
        flat = packed_weighted_average(matrix, weights)
        if edge_size <= 0 or edge_size >= n:
            np.testing.assert_array_equal(
                tiered_weighted_average(matrix, weights, edge_size), flat
            )
        else:
            np.testing.assert_allclose(
                tiered_weighted_average(matrix, weights, edge_size),
                flat,
                rtol=1e-12,
                atol=1e-12,
            )

    def test_multi_edge_fold_order_is_deterministic(self):
        rng = np.random.default_rng(5)
        matrix = rng.standard_normal((10, 6))
        weights = rng.uniform(0.1, 2.0, 10)
        a = tiered_weighted_average(matrix, weights, 3)
        b = tiered_weighted_average(matrix, weights, 3)
        np.testing.assert_array_equal(a, b)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError, match="packed cohort"):
            tiered_weighted_average(np.zeros(4), [1.0], 0)


class TestCheckpointRestore:
    def _filled(self, store, seeds):
        for cid, seed in seeds:
            store.set(
                cid,
                np.random.default_rng(seed).standard_normal(
                    store.layout.n_params
                ),
            )
        return store

    @pytest.mark.parametrize("src_kind", ["dense", "sharded"])
    @pytest.mark.parametrize("dst_kind", ["dense", "sharded"])
    def test_cross_kind_round_trip(self, src_kind, dst_kind):
        layout = _mixed_layout()
        base = _base_row(layout)
        src = self._filled(
            make_store(StoreConfig(kind=src_kind, shard_size=3), 10, layout, base),
            [(0, 7), (4, 8), (9, 9)],
        )
        meta, arrays = src.checkpoint_payload()
        dst = make_store(StoreConfig(kind=dst_kind, shard_size=4), 10, layout, base)
        dst.restore_from(meta, arrays)
        ids = np.arange(10)
        np.testing.assert_array_equal(dst.rows(ids), src.rows(ids))

    def test_same_geometry_restore_preserves_sparsity(self):
        layout = _mixed_layout()
        base = _base_row(layout)
        src = self._filled(
            ShardedStore(40, layout, base, shard_size=8), [(3, 1), (30, 2)]
        )
        meta, arrays = src.checkpoint_payload()
        dst = ShardedStore(40, layout, base, shard_size=8)
        dst.restore_from(meta, arrays)
        assert dst.n_resident_shards == src.n_resident_shards == 2
        np.testing.assert_array_equal(
            dst.rows(np.arange(40)), src.rows(np.arange(40))
        )

    def test_legacy_payload_restores_like_dense(self):
        # checkpoints written before the store carried a bare matrix
        layout = _f32_layout()
        matrix = np.random.default_rng(3).standard_normal((6, 24))
        wire = matrix.astype(np.float32)
        store = ShardedStore(6, layout, np.zeros(24), shard_size=2)
        store.restore_from({}, {"states": wire})
        np.testing.assert_array_equal(
            store.rows(np.arange(6)), wire.astype(np.float64)
        )

    def test_restore_rejects_wrong_population(self):
        layout = _f32_layout()
        store = DenseStore(4, layout, np.zeros(24))
        with pytest.raises(ValueError, match="shape"):
            store.restore_from(
                {"kind": "dense"}, {"states": np.zeros((5, 24), np.float32)}
            )

    def test_restore_rejects_population_mismatch_sharded(self):
        layout = _f32_layout()
        store = ShardedStore(4, layout, np.zeros(24), shard_size=2)
        with pytest.raises(ValueError, match="population"):
            store.restore_from(
                {
                    "kind": "sharded",
                    "shard_size": 2,
                    "n_clients": 8,
                    "shards": [],
                },
                {"base": np.zeros(24, np.float32)},
            )


class TestMemmapShards:
    def test_memmap_round_trip(self, tmp_path):
        layout = _mixed_layout()
        base = _base_row(layout)
        store = ShardedStore(
            20, layout, base, shard_size=4, path=str(tmp_path / "shards")
        )
        row = np.random.default_rng(11).standard_normal(layout.n_params)
        store.set(13, row)
        np.testing.assert_array_equal(store.get(13), layout.round_trip(row))
        # exactly the touched shard exists on disk
        files = sorted(f.name for f in (tmp_path / "shards").iterdir())
        assert files == ["shard_000003.npy"]
        # untouched neighbours in the same shard still read as base
        np.testing.assert_array_equal(store.get(12), layout.round_trip(base))

    def test_memmap_checkpoint_restore(self, tmp_path):
        layout = _f32_layout()
        src = ShardedStore(9, layout, np.zeros(24), shard_size=3)
        src.set(7, np.full(24, 2.5))
        meta, arrays = src.checkpoint_payload()
        dst = ShardedStore(
            9, layout, np.zeros(24), shard_size=3, path=str(tmp_path)
        )
        dst.restore_from(meta, arrays)
        np.testing.assert_array_equal(dst.rows(np.arange(9)), src.rows(np.arange(9)))
