"""Extensions beyond the paper's needs: Adam, schedulers, GroupNorm,
residual blocks and the tiny ResNet."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    ConstantLR,
    CosineAnnealingLR,
    ExponentialLR,
    GroupNorm,
    Residual,
    StepLR,
    resnet_tiny,
)
from repro.nn.layers import Conv2d, Linear, ReLU
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Sequential
from repro.nn.parameter import Parameter

from helpers import check_module_gradients, to_float64


def _param(value) -> Parameter:
    return Parameter(np.array(value, dtype=np.float64))


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # Adam's bias correction makes |step 1| == lr for any gradient.
        p = _param([1.0])
        p.grad[:] = [123.0]
        Adam([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.9], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = _param([5.0])
        opt = Adam([p], lr=0.2)
        for _ in range(400):
            p.grad[:] = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_adamw_decay_decoupled(self):
        p = _param([1.0])
        p.grad[:] = [0.0]
        opt = Adam([p], lr=0.1, weight_decay=0.1, decoupled_weight_decay=True)
        opt.step()
        # Zero gradient: only the decoupled decay moves the weight.
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.1 * 1.0], atol=1e-9)

    def test_reset_state(self):
        p = _param([1.0])
        opt = Adam([p], lr=0.1)
        p.grad[:] = [1.0]
        opt.step()
        opt.reset_state()
        assert opt._t == 0
        assert not opt._m[0].any()

    def test_validation(self):
        with pytest.raises(ValueError, match="betas"):
            Adam([_param([0.0])], betas=(1.0, 0.9))
        with pytest.raises(ValueError, match="eps"):
            Adam([_param([0.0])], eps=0.0)

    def test_trains_a_model(self, rng):
        model = Sequential(("fc", Linear(4, 3, rng)))
        loss = CrossEntropyLoss()
        opt = Adam(model.parameters(), lr=0.05)
        x = rng.standard_normal((16, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=16)
        first = None
        for _ in range(60):
            model.zero_grad()
            value = loss.forward(model.forward(x), y)
            first = first if first is not None else value
            model.backward(loss.backward())
            opt.step()
        assert value < first * 0.5


class TestSchedulers:
    def _opt(self):
        return SGD([_param([0.0])], lr=1.0)

    def test_constant(self):
        sched = ConstantLR(self._opt())
        for _ in range(5):
            assert sched.step() == 1.0

    def test_step_lr(self):
        sched = StepLR(self._opt(), step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01])

    def test_exponential(self):
        sched = ExponentialLR(self._opt(), gamma=0.5)
        lrs = [sched.step() for _ in range(3)]
        np.testing.assert_allclose(lrs, [0.5, 0.25, 0.125])

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.01)
        first = sched.lr_at(0)
        last = sched.lr_at(10)
        assert first == pytest.approx(1.0)
        assert last == pytest.approx(0.01)
        # Monotone decreasing over the horizon.
        lrs = [sched.lr_at(t) for t in range(11)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_cosine_clamps_past_horizon(self):
        sched = CosineAnnealingLR(self._opt(), t_max=5, eta_min=0.01)
        assert sched.lr_at(50) == pytest.approx(0.01)

    def test_scheduler_writes_optimizer(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.lr == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._opt(), t_max=0)


class TestGroupNorm:
    def test_gradcheck(self, rng):
        layer = to_float64(GroupNorm(2, 4))
        check_module_gradients(
            layer, rng.standard_normal((3, 4, 3, 3)), rng, rtol=5e-4, atol=1e-5
        )

    def test_normalises_per_sample(self, rng):
        layer = GroupNorm(2, 6)
        x = rng.standard_normal((4, 6, 5, 5)) * 7 + 3
        out = layer.forward(x)
        grouped = out.reshape(4, 2, 3, 5, 5)
        np.testing.assert_allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-5)
        np.testing.assert_allclose(grouped.std(axis=(2, 3, 4)), 1.0, atol=1e-2)

    def test_no_batch_coupling(self, rng):
        """A sample's output is independent of its batch mates — the
        property that makes GroupNorm safe for non-IID FL."""
        layer = GroupNorm(1, 3)
        a = rng.standard_normal((1, 3, 4, 4))
        solo = layer.forward(a.copy())
        noisy_batch = np.concatenate([a, 100 * rng.standard_normal((5, 3, 4, 4))])
        together = layer.forward(noisy_batch)[:1]
        np.testing.assert_allclose(solo, together, rtol=1e-6)

    def test_all_params_federate(self):
        layer = GroupNorm(2, 4)
        assert [n for n, _ in layer.named_parameters()] == ["gamma", "beta"]
        # No running buffers exist at all.
        assert not hasattr(layer, "running_mean")

    def test_validation(self):
        with pytest.raises(ValueError, match="divide"):
            GroupNorm(3, 4)
        with pytest.raises(ValueError, match="positive"):
            GroupNorm(0, 4)
        with pytest.raises(ValueError, match="expected"):
            GroupNorm(2, 4).forward(np.zeros((1, 3, 2, 2)))


class TestResidual:
    def test_gradcheck(self, rng):
        body = Sequential(
            ("conv", Conv2d(2, 2, 3, rng, padding=1)),
            ("act", ReLU()),
        )
        block = to_float64(Residual(body))
        x = rng.standard_normal((2, 2, 4, 4))
        x[np.abs(x) < 0.05] += 0.2  # keep away from the ReLU kink
        check_module_gradients(block, x, rng)

    def test_identity_contribution(self, rng):
        """With a zeroed body the block is the identity."""
        body = Sequential(("conv", Conv2d(1, 1, 3, rng, padding=1)))
        body["conv"].weight.data[...] = 0
        body["conv"].bias.data[...] = 0
        block = Residual(body)
        x = rng.standard_normal((1, 1, 4, 4))
        np.testing.assert_allclose(block.forward(x), x)

    def test_shape_change_rejected(self, rng):
        block = Residual(Sequential(("conv", Conv2d(1, 2, 3, rng, padding=1))))
        with pytest.raises(ValueError, match="changed shape"):
            block.forward(rng.standard_normal((1, 1, 4, 4)))

    def test_train_eval_propagates(self, rng):
        block = Residual(Sequential(("act", ReLU())))
        block.eval()
        assert not block.body.training
        block.train()
        assert block.body.training


class TestResnetTiny:
    def test_forward_backward(self, rng):
        model = resnet_tiny((3, 16, 16), 10, rng, width=4, n_blocks=2, groups=2)
        x = rng.standard_normal((2, 3, 16, 16)).astype(np.float32)
        out = model.forward(x)
        assert out.shape == (2, 10)
        grad = model.backward(np.ones_like(out) / out.size)
        assert grad.shape == x.shape

    def test_learns(self, rng):
        model = resnet_tiny((1, 8, 8), 4, rng, width=4, n_blocks=1, groups=2)
        loss = CrossEntropyLoss()
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        x = rng.standard_normal((16, 1, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, size=16)
        for _ in range(40):
            model.zero_grad()
            value = loss.forward(model.forward(x), y)
            model.backward(loss.backward())
            opt.step()
        assert value < 0.2

    def test_in_registry_and_federates(self, planted_federation, fast_train_cfg):
        from repro.algorithms.fedavg import FedAvg
        from repro.fl.simulation import FederatedEnv

        env = FederatedEnv(
            planted_federation,
            model_name="resnet_tiny",
            model_kwargs={"width": 4, "n_blocks": 1, "groups": 2},
            train_cfg=fast_train_cfg,
            seed=0,
        )
        result = FedAvg().run(env, n_rounds=2, eval_every=2)
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_width_groups_validation(self, rng):
        with pytest.raises(ValueError, match="divide"):
            resnet_tiny((1, 8, 8), 4, rng, width=5, groups=2)
