"""CLI plumbing and the centralised training utility."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.synthetic import make_dataset
from repro.nn import SGD, StepLR, mlp
from repro.nn.training import accuracy, fit


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "fig1", "fig2", "sweep", "comm", "run"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "fedclust"
        assert args.partition == "dirichlet"
        assert args.executor == "serial"
        assert args.client_fraction == 1.0
        assert args.failure_rate == 0.0
        assert args.straggler_rate == 0.0

    def test_scenario_flags_parse(self):
        args = build_parser().parse_args(
            [
                "run",
                "--client-fraction", "0.5",
                "--failure-rate", "0.2",
                "--straggler-rate", "0.1",
            ]
        )
        assert args.client_fraction == 0.5
        assert args.failure_rate == 0.2
        assert args.straggler_rate == 0.1

    def test_middleware_v2_flags_parse(self):
        args = build_parser().parse_args(
            [
                "run",
                "--staleness-decay", "0.5",
                "--compute-budget", "2", "8",
                "--trace", "schedule.json",
            ]
        )
        assert args.staleness_decay == 0.5
        assert args.compute_budget == [2, 8]
        assert args.trace == "schedule.json"
        # Defaults leave the scenario at paper scale.
        defaults = build_parser().parse_args(["run"])
        assert defaults.staleness_decay == 0.0
        assert defaults.compute_budget is None
        assert defaults.trace is None

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scale", "galactic"])


@pytest.mark.slow
class TestCliExecution:
    def test_run_command_writes_json(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "result.json"
        code = main(
            [
                "run",
                "--algorithm", "fedavg",
                "--dataset", "fmnist",
                "--clients", "4",
                "--rounds", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "run"
        assert 0.0 <= payload["final_accuracy"] <= 1.0
        printed = capsys.readouterr().out
        assert "final accuracy" in printed

    def test_run_command_scenario_flags_route_to_engine(self, tmp_path, capsys):
        """End-to-end seeded smoke: scenario flags reach every algorithm
        through ScenarioConfig, and the run is reproducible."""
        out = tmp_path / "scenario.json"

        def run_once():
            code = main(
                [
                    "run",
                    "--algorithm", "ifca",
                    "--dataset", "fmnist",
                    "--clients", "6",
                    "--rounds", "2",
                    "--model", "mlp",
                    "--client-fraction", "0.67",
                    "--failure-rate", "0.25",
                    "--straggler-rate", "0.25",
                    "--out", str(out),
                ]
            )
            assert code == 0
            return json.loads(out.read_text())

        payload = run_once()
        assert payload["scenario"] == {
            "client_fraction": 0.67,
            "failure_rate": 0.25,
            "straggler_rate": 0.25,
            "staleness_decay": 0.0,
            "compute_budget": None,
            "trace": None,
            "async": None,
            "defense": {
                "corruption": None,
                "robust_agg": "none",
                "norm_bound": None,
                "min_survivors": 0,
                "max_retries": 0,
                "checkpoint": None,
                "resumed": False,
            },
        }
        assert 0.0 <= payload["final_accuracy"] <= 1.0
        # IFCA has no constructor fraction — participation must have
        # come through the engine scenario (4 of 6 clients per round).
        repeat = run_once()
        assert repeat["final_accuracy"] == payload["final_accuracy"]
        assert repeat["history"] == payload["history"]
        capsys.readouterr()

    def test_run_command_replays_trace_file(self, tmp_path, capsys):
        """--trace FILE loads an availability schedule and drives
        participation with it (client 3 only ever appears in round 2)."""
        from repro.fl.trace import AvailabilityTrace

        trace_path = tmp_path / "schedule.json"
        AvailabilityTrace({3: [2]}).save(trace_path)
        out = tmp_path / "result.json"
        code = main(
            [
                "run",
                "--algorithm", "fedavg",
                "--dataset", "fmnist",
                "--clients", "4",
                "--rounds", "2",
                "--model", "mlp",
                "--staleness-decay", "0.5",
                "--compute-budget", "3",
                "--trace", str(trace_path),
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["scenario"]["trace"] == str(trace_path)
        assert payload["scenario"]["compute_budget"] == [3, 3]
        # Round 1 misses client 3, round 2 has everyone.
        curve = payload["history"]
        assert curve["n_rounds"] == 2
        capsys.readouterr()

    def test_fig2_command(self, capsys, monkeypatch):
        # Micro-ify via env scale: quick is smallest preset; accept runtime.
        monkeypatch.setenv("REPRO_SCALE", "quick")
        code = main(["fig2", "--dataset", "fmnist"])
        assert code == 0
        assert "⑥" in capsys.readouterr().out


class TestFit:
    @pytest.fixture
    def data(self):
        ds = make_dataset("fmnist", 160, 5, noise_std=0.25)
        return ds.subset(np.arange(120)), ds.subset(np.arange(120, 160))

    def test_loss_decreases_and_val_tracked(self, data, rng):
        train, val = data
        model = mlp((1, 28, 28), 10, rng, hidden=(16,))
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        result = fit(model, train, opt, epochs=5, batch_size=32, val=val)
        assert result.n_epochs == 5
        assert result.train_loss[-1] < result.train_loss[0]
        assert len(result.val_accuracy) == 5
        assert result.final_val_accuracy > 0.3

    def test_scheduler_steps_per_epoch(self, data, rng):
        train, _ = data
        model = mlp((1, 28, 28), 10, rng, hidden=(8,))
        opt = SGD(model.parameters(), lr=1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        fit(model, train, opt, epochs=3, scheduler=sched)
        assert opt.lr == pytest.approx(0.125)

    def test_accuracy_helper(self, data, rng):
        train, _ = data
        model = mlp((1, 28, 28), 10, rng, hidden=(8,))
        value = accuracy(model, train)
        assert 0.0 <= value <= 1.0

    def test_validation(self, data, rng):
        train, _ = data
        model = mlp((1, 28, 28), 10, rng, hidden=(8,))
        opt = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError, match="epochs"):
            fit(model, train, opt, epochs=0)
