"""FedClust's partial-weight extraction and proximity construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.proximity import proximity_matrix
from repro.core.weights import (
    final_layer_keys,
    final_layer_matrix,
    layer_index_keys,
    layer_keys,
    weight_matrix,
)
from repro.nn.models import lenet5, mlp


@pytest.fixture
def model(rng):
    return lenet5((1, 28, 28), 10, rng)


class TestKeySelection:
    def test_final_layer_keys(self, model):
        assert final_layer_keys(model) == ["classifier.weight", "classifier.bias"]

    def test_layer_keys(self, model):
        assert layer_keys(model, "conv1") == ["conv1.weight", "conv1.bias"]

    def test_layer_keys_unknown_raises(self, model):
        with pytest.raises(ValueError, match="not found"):
            layer_keys(model, "conv99")

    def test_layer_index_keys_match_paper_numbering(self, model):
        name1, keys1 = layer_index_keys(model, 1)
        assert name1 == "conv1"
        name5, keys5 = layer_index_keys(model, 5)
        assert name5 == "classifier"
        assert keys5 == final_layer_keys(model)

    def test_layer_index_out_of_range(self, model):
        with pytest.raises(ValueError, match="layer_index"):
            layer_index_keys(model, 6)
        with pytest.raises(ValueError, match="layer_index"):
            layer_index_keys(model, 0)


class TestWeightMatrix:
    def test_shape_and_content(self, model, rng):
        states = [model.state_dict() for _ in range(3)]
        states[1]["classifier.bias"] = states[1]["classifier.bias"] + 1.0
        w = weight_matrix(states, final_layer_keys(model))
        assert w.shape == (3, 84 * 10 + 10)
        # Row 1 differs from row 0 by exactly the bias bump.
        assert np.abs(w[1] - w[0]).sum() == pytest.approx(10.0, rel=1e-5)

    def test_final_layer_matrix_helper(self, model):
        states = [model.state_dict()] * 2
        w = final_layer_matrix(model, states)
        assert w.shape == (2, 850)

    def test_empty_states_raise(self, model):
        with pytest.raises(ValueError, match="at least one"):
            weight_matrix([], final_layer_keys(model))

    def test_inconsistent_widths_raise(self, model, rng):
        other = mlp((1, 28, 28), 10, rng, hidden=(7,))
        with pytest.raises((ValueError, KeyError)):
            weight_matrix(
                [model.state_dict(), other.state_dict()],
                final_layer_keys(model),
            )


class TestProximity:
    def test_block_structure_survives(self, rng):
        w = np.vstack([rng.standard_normal((3, 8)) * 0.01,
                       rng.standard_normal((3, 8)) * 0.01 + 5.0])
        result = proximity_matrix(w)
        assert result.n_clients == 6
        within = result.matrix[:3, :3][np.triu_indices(3, 1)]
        between = result.matrix[:3, 3:]
        assert between.min() > within.max()

    def test_metric_dispatch(self, rng):
        w = rng.standard_normal((4, 5))
        for metric in ("euclidean", "sqeuclidean", "cosine"):
            assert proximity_matrix(w, metric).metric == metric

    def test_normalized_range(self, rng):
        result = proximity_matrix(rng.standard_normal((5, 4)))
        norm = result.normalized()
        assert norm.max() == pytest.approx(1.0)
        assert norm.min() >= 0.0

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="at least 2"):
            proximity_matrix(rng.standard_normal((1, 4)))
        with pytest.raises(ValueError, match="\\(m, d\\)"):
            proximity_matrix(rng.standard_normal(4))
